//! The distributed step simulator: single-GPU step traces composed with an
//! analytic communication roofline over a [`Topology`].
//!
//! The paper's model stops at one GPU ("extending this model to multi-GPU
//! systems is left for future exploration", §VII). This module generalizes
//! it from first principles, one term per parallelism strategy:
//!
//! * **Data parallelism** — every rank runs the full model on its slice of
//!   the global batch, then gradients of the trainable parameters are
//!   ring-all-reduced: `t_comm = λ + 2(n−1)/n · G/B` (a ring moves each of
//!   the `G` gradient bytes out of and back into every rank except one, so
//!   `2(n−1)/n · G` bytes cross each link at bandwidth `B`).
//! * **Tensor parallelism** — every layer's weights are partitioned `1/n`;
//!   each layer boundary all-gathers the partial activations, once forward
//!   and once backward: `t_comm = 2L · (λ + (n−1)/n · A/B)` where `A` is
//!   the activation tensor (`batch · seq · hidden · 4` bytes).
//! * **Expert parallelism** — experts are partitioned across ranks; every
//!   MoE layer all-to-alls tokens to their experts (dispatch) and back
//!   (combine), forward and backward: `t_comm = 4L · (λ + (n−1)/n ·
//!   k·A/B)` with `k` the experts activated per token (top-k, or all of
//!   them in the dense configuration).
//!
//! Compute time is the **slowest rank's** — collectives are synchronous —
//! and on a mixed fleet the faster ranks idle until the straggler arrives.
//! That idle time is the *pipeline bubble* this module accounts:
//! `bubble = t_max − mean(t_rank)`, exactly zero on homogeneous fleets.
//!
//! Memory is partitioned LLMem-style: each strategy splits the single-GPU
//! [`MemoryBreakdown`] into a *sharded* portion (divided `1/n`) and a
//! *replicated* portion (copied per rank), and the Eq. 1 max-batch solver
//! runs against every device's capacity — see [`DistributedPlan::max_batch`].
//!
//! **Degeneracy guarantee.** A 1-GPU topology takes a dedicated branch that
//! returns the single-GPU simulator's numbers unchanged: step time is
//! bit-identical to [`StepSimulator::simulate_step`] and max batch to
//! [`MemoryModel::max_batch_size_for_mem`], with communication and bubble
//! exactly `0.0`. Property tests pin this.
//!
//! **Trace memoization.** The plan pools one [`StepSimulator`] per distinct
//! device spec, and each simulator memoizes per `(stage, layer-kind,
//! batch, seq_len)` — so the effective cache key of a distributed sweep is
//! `(stage, shape, placement)` and a grid over world sizes, links, and
//! strategies prices each unique trace exactly once.
//!
//! [`MemoryBreakdown`]: ftsim_model::MemoryBreakdown

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ftsim_gpu::CostModel;
use ftsim_model::{FineTuneConfig, MemoryModel, ModelConfig, Sparsity};
use ftsim_sim::{Section, StepSimulator};
use serde::{Deserialize, Serialize};

use crate::topology::Topology;

/// How the model and batch are spread across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Parallelism {
    /// Replicate the model, split the batch, all-reduce gradients.
    Data,
    /// Partition every layer's weights, all-gather activations.
    Tensor,
    /// Partition the experts, all-to-all tokens to them and back.
    Expert,
}

impl Parallelism {
    /// All strategies, in canonical order.
    pub fn all() -> [Parallelism; 3] {
        [Parallelism::Data, Parallelism::Tensor, Parallelism::Expert]
    }

    /// Lower-case wire name.
    pub fn key(&self) -> &'static str {
        match self {
            Parallelism::Data => "data",
            Parallelism::Tensor => "tensor",
            Parallelism::Expert => "expert",
        }
    }

    /// Parses the wire name (case-insensitive, `"dp"`/`"tp"`/`"ep"`
    /// accepted).
    pub fn parse(s: &str) -> Result<Parallelism, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "data" | "dp" => Ok(Parallelism::Data),
            "tensor" | "tp" => Ok(Parallelism::Tensor),
            "expert" | "ep" => Ok(Parallelism::Expert),
            other => Err(format!(
                "unknown parallelism {other:?} (want data, tensor, or expert)"
            )),
        }
    }
}

/// One distributed training step, split into its cost components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedStep {
    /// Devices participating.
    pub world_size: usize,
    /// Strategy that produced this estimate.
    pub parallelism: Parallelism,
    /// Queries processed by the whole fleet per step.
    pub global_batch: usize,
    /// Queries each rank computes (equals `global_batch` except for data
    /// parallelism, which splits the batch).
    pub per_device_batch: usize,
    /// Sequence length in tokens.
    pub seq_len: usize,
    /// Slowest rank's compute time in seconds.
    pub compute_seconds: f64,
    /// Communication roofline time in seconds (exactly `0.0` at world 1).
    pub comm_seconds: f64,
    /// Mean idle time per rank waiting on the straggler, in seconds
    /// (exactly `0.0` on homogeneous fleets).
    pub bubble_seconds: f64,
}

impl DistributedStep {
    /// Wall time of the step: slowest compute plus communication.
    pub fn total_seconds(&self) -> f64 {
        self.compute_seconds + self.comm_seconds
    }

    /// Aggregate fleet throughput in queries per second.
    pub fn queries_per_second(&self) -> f64 {
        self.global_batch as f64 / self.total_seconds()
    }

    /// Fraction of the step spent communicating, in `[0, 1)`.
    pub fn comm_fraction(&self) -> f64 {
        self.comm_seconds / self.total_seconds()
    }

    /// Fraction of the step spent computing — the synchronization
    /// efficiency (`1.0` at world 1, where no collective runs).
    pub fn compute_fraction(&self) -> f64 {
        self.compute_seconds / self.total_seconds()
    }
}

/// One rank's share of the fleet memory footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePartition {
    /// Device catalog name.
    pub device: String,
    /// Device memory capacity in GB.
    pub mem_gb: f64,
    /// This rank's `1/n` slice of the sharded components, in GB.
    pub sharded_gb: f64,
    /// Components every rank holds in full, in GB.
    pub replicated_gb: f64,
}

impl DevicePartition {
    /// This rank's total footprint in GB.
    pub fn total_gb(&self) -> f64 {
        self.sharded_gb + self.replicated_gb
    }

    /// Whether the rank's share fits its device.
    pub fn fits(&self) -> bool {
        self.total_gb() <= self.mem_gb
    }
}

/// An LLMem-style partition of the single-GPU memory footprint: which
/// components shard `1/n` across ranks and which replicate, per strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryPartition {
    /// Strategy that produced the split.
    pub parallelism: Parallelism,
    /// One entry per rank.
    pub per_device: Vec<DevicePartition>,
    /// The sharded portion of the single-GPU footprint — per-rank
    /// `sharded_gb` values sum back to this (within float rounding).
    pub sharded_single_gb: f64,
    /// The replicated portion — every rank carries this in full.
    pub replicated_single_gb: f64,
}

impl MemoryPartition {
    /// The single-GPU footprint this partition divides.
    pub fn single_total_gb(&self) -> f64 {
        self.sharded_single_gb + self.replicated_single_gb
    }

    /// Whether every rank's share fits its device.
    pub fn fits(&self) -> bool {
        self.per_device.iter().all(DevicePartition::fits)
    }
}

/// Obs gauges for the comm/compute/bubble split; registered on first use.
fn dist_obs() -> &'static [ftsim_obs::Gauge; 4] {
    use std::sync::OnceLock;
    static GAUGES: OnceLock<[ftsim_obs::Gauge; 4]> = OnceLock::new();
    GAUGES.get_or_init(|| {
        let registry = ftsim_obs::registry();
        [
            registry.gauge("dist.step.compute_s"),
            registry.gauge("dist.step.comm_s"),
            registry.gauge("dist.step.bubble_s"),
            registry.gauge("dist.step.comm_pct"),
        ]
    })
}

/// A distributed planning context for one (model, recipe) pair: the
/// single-GPU [`StepSimulator`]s it pools (one per distinct device spec,
/// each memoizing its own traces) plus the communication and memory
/// models. Methods take the [`Topology`] per call, so one plan serves a
/// whole sweep over world sizes, links, and strategies at O(unique traces).
///
/// ```
/// use ftsim_cost::{DistributedPlan, Interconnect, Parallelism, Topology};
/// use ftsim_gpu::GpuSpec;
/// use ftsim_model::{presets, FineTuneConfig};
///
/// let plan = DistributedPlan::new(presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse());
/// let topo = Topology::homogeneous(GpuSpec::a40(), 4, Interconnect::pcie4());
///
/// // 4-way data parallelism: compute shrinks, an all-reduce appears.
/// let step = plan.simulate_step(&topo, Parallelism::Data, 8, 79);
/// assert_eq!(step.per_device_batch, 2);
/// assert!(step.comm_seconds > 0.0);
/// assert!(step.queries_per_second() > 0.0);
/// ```
///
/// The degenerate single-GPU placement is bit-identical to the plain
/// [`StepSimulator`] path:
///
/// ```
/// use ftsim_cost::{DistributedPlan, Parallelism, Topology};
/// use ftsim_gpu::{CostModel, GpuSpec};
/// use ftsim_model::{presets, FineTuneConfig};
/// use ftsim_sim::StepSimulator;
///
/// let model = presets::mixtral_8x7b();
/// let ft = FineTuneConfig::qlora_sparse();
/// let plan = DistributedPlan::new(model.clone(), ft);
/// let single = StepSimulator::new(model, ft, CostModel::new(GpuSpec::a40()));
///
/// let step = plan.simulate_step(&Topology::single(GpuSpec::a40()), Parallelism::Expert, 4, 79);
/// assert_eq!(step.total_seconds(), single.simulate_step(4, 79).total_seconds());
/// assert_eq!((step.comm_seconds, step.bubble_seconds), (0.0, 0.0));
/// ```
pub struct DistributedPlan {
    model: ModelConfig,
    ft: FineTuneConfig,
    mem: MemoryModel,
    /// Single-GPU simulators pooled by device name — the *placement* axis
    /// of the `(stage, shape, placement)` trace-cache key.
    sims: Mutex<HashMap<String, Arc<StepSimulator>>>,
}

impl DistributedPlan {
    /// A plan for fine-tuning `model` with recipe `ft`, with an empty
    /// simulator pool.
    pub fn new(model: ModelConfig, ft: FineTuneConfig) -> Self {
        let mem = MemoryModel::new(&model, &ft);
        DistributedPlan {
            model,
            ft,
            mem,
            sims: Mutex::new(HashMap::new()),
        }
    }

    /// The model architecture this plan fine-tunes.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The fine-tuning recipe this plan uses.
    pub fn finetune(&self) -> &FineTuneConfig {
        &self.ft
    }

    /// The single-GPU memory model the partitions divide.
    pub fn memory(&self) -> &MemoryModel {
        &self.mem
    }

    /// The pooled single-GPU simulator for one device spec (the placement
    /// leg of the trace-cache key).
    fn simulator(&self, gpu: &ftsim_gpu::GpuSpec) -> Arc<StepSimulator> {
        let mut sims = self.sims.lock().expect("simulator pool");
        Arc::clone(sims.entry(gpu.name.to_string()).or_insert_with(|| {
            Arc::new(StepSimulator::new(
                self.model.clone(),
                self.ft,
                CostModel::new(gpu.clone()),
            ))
        }))
    }

    /// Number of pooled simulators (distinct device specs seen so far).
    pub fn simulator_count(&self) -> usize {
        self.sims.lock().expect("simulator pool").len()
    }

    /// Experts each token activates under the recipe's sparsity.
    fn active_experts(&self) -> usize {
        match self.ft.sparsity {
            Sparsity::Dense => self.model.moe.num_experts,
            Sparsity::TopK(k) => k.min(self.model.moe.num_experts),
        }
    }

    /// Gradient bytes all-reduced per step under data parallelism: the
    /// trainable parameters at fp32 (LoRA/QLoRA adapters) or bf16 (full
    /// fine-tuning), matching [`crate::scale_out`].
    fn grad_gb(&self) -> f64 {
        let bytes = if self.ft.method.lora_rank().is_some() {
            4.0
        } else {
            2.0
        };
        self.ft.trainable_params(&self.model) as f64 * bytes / 1e9
    }

    /// The fp32 activation tensor crossing a layer boundary, in GB.
    fn activation_gb(&self, global_batch: usize, seq_len: usize) -> f64 {
        (global_batch * seq_len * self.model.hidden) as f64 * 4.0 / 1e9
    }

    /// Per-step communication time for `parallelism` over `topology`, in
    /// seconds — the analytic roofline alone, no simulation. Exactly `0.0`
    /// at world size 1; strictly increasing in world size and strictly
    /// decreasing in link bandwidth above it.
    pub fn comm_seconds(
        &self,
        topology: &Topology,
        parallelism: Parallelism,
        global_batch: usize,
        seq_len: usize,
    ) -> f64 {
        let n = topology.world_size() as f64;
        if topology.is_single() {
            return 0.0;
        }
        let link = topology.link();
        let lat = link.latency_us * 1e-6;
        let bw = link.bandwidth_gbps;
        let remote = (n - 1.0) / n;
        let layers = self.model.num_layers as f64;
        match parallelism {
            // One ring all-reduce of the gradients per step.
            Parallelism::Data => lat + 2.0 * remote * self.grad_gb() / bw,
            // One activation all-gather per layer, forward and backward.
            Parallelism::Tensor => {
                let act = self.activation_gb(global_batch, seq_len);
                2.0 * layers * (lat + remote * act / bw)
            }
            // Dispatch + combine all-to-alls per MoE layer, forward and
            // backward; each token's activation travels to its k experts.
            Parallelism::Expert => {
                let act = self.activation_gb(global_batch, seq_len) * self.active_experts() as f64;
                4.0 * layers * (lat + remote * act / bw)
            }
        }
    }

    /// Simulates one distributed step of `global_batch` queries.
    ///
    /// Compute comes from the pooled single-GPU simulators (the slowest
    /// rank gates the step; a mixed fleet's mean idle time is the bubble),
    /// communication from [`DistributedPlan::comm_seconds`]. The 1-GPU
    /// topology short-circuits to the plain single-GPU step, bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `global_batch` or `seq_len` is zero (same contract as
    /// [`StepSimulator::simulate_step`]).
    pub fn simulate_step(
        &self,
        topology: &Topology,
        parallelism: Parallelism,
        global_batch: usize,
        seq_len: usize,
    ) -> DistributedStep {
        assert!(global_batch >= 1, "global batch must be at least 1");
        let n = topology.world_size();
        if n == 1 {
            // Degenerate placement: the single-GPU path, unchanged.
            let sim = self.simulator(&topology.devices()[0]);
            let step = DistributedStep {
                world_size: 1,
                parallelism,
                global_batch,
                per_device_batch: global_batch,
                seq_len,
                compute_seconds: sim.simulate_step(global_batch, seq_len).total_seconds(),
                comm_seconds: 0.0,
                bubble_seconds: 0.0,
            };
            self.publish_gauges(&step);
            return step;
        }
        let per_device_batch = match parallelism {
            Parallelism::Data => global_batch.div_ceil(n),
            Parallelism::Tensor | Parallelism::Expert => global_batch,
        };
        // One compute time per *distinct* device spec; ranks sharing a
        // spec share the priced trace (the memoized-placement leg).
        let mut per_spec: HashMap<&str, f64> = HashMap::new();
        for gpu in topology.devices() {
            if per_spec.contains_key(gpu.name.as_str()) {
                continue;
            }
            let sim = self.simulator(gpu);
            let seconds = match parallelism {
                Parallelism::Data => sim.simulate_step(per_device_batch, seq_len).total_seconds(),
                Parallelism::Tensor => {
                    // Every layer's weights shard 1/n; each rank performs
                    // 1/n of the step's arithmetic on the full batch.
                    sim.simulate_step(global_batch, seq_len).total_seconds() / n as f64
                }
                Parallelism::Expert => {
                    // Expert FFN work shards across ranks; the shared
                    // layers (mixer, norms, router, head) replicate.
                    let trace = sim.simulate_step(global_batch, seq_len);
                    let moe: f64 = trace
                        .records()
                        .filter(|r| r.section == Section::Moe)
                        .map(|r| r.cost.latency_s)
                        .sum();
                    (trace.total_seconds() - moe) + moe / n as f64
                }
            };
            per_spec.insert(gpu.name.as_str(), seconds);
        }
        let compute_seconds = per_spec.values().fold(0.0f64, |a, &b| a.max(b));
        // Pipeline bubble: synchronous collectives drain at the slowest
        // rank; faster ranks idle for (t_max - t_rank). Exactly zero on a
        // homogeneous fleet (one distinct spec), by construction.
        let bubble_seconds = if per_spec.len() <= 1 {
            0.0
        } else {
            let mean: f64 = topology
                .devices()
                .iter()
                .map(|gpu| per_spec[gpu.name.as_str()])
                .sum::<f64>()
                / n as f64;
            compute_seconds - mean
        };
        let step = DistributedStep {
            world_size: n,
            parallelism,
            global_batch,
            per_device_batch,
            seq_len,
            compute_seconds,
            comm_seconds: self.comm_seconds(topology, parallelism, global_batch, seq_len),
            bubble_seconds,
        };
        self.publish_gauges(&step);
        step
    }

    /// Mirrors the comm/compute/bubble split into the obs registry so a
    /// live follower (or the cluster experiment's snapshot) sees it.
    fn publish_gauges(&self, step: &DistributedStep) {
        if ftsim_obs::enabled() {
            let [compute, comm, bubble, comm_pct] = dist_obs();
            compute.set(step.compute_seconds);
            comm.set(step.comm_seconds);
            bubble.set(step.bubble_seconds);
            comm_pct.set(100.0 * step.comm_fraction());
        }
    }

    /// Splits the single-GPU footprint of `global_batch` queries across
    /// the fleet, LLMem-style. Per strategy:
    ///
    /// * **Data** — activations shard with the batch; weights, adapters,
    ///   gradients, and optimizer state replicate on every rank.
    /// * **Tensor** — weights, adapters, gradients, and optimizer state
    ///   shard `1/n`; activations and overhead replicate.
    /// * **Expert** — the expert slice of the static state (the experts'
    ///   share of the parameter count) shards; the rest replicates.
    pub fn partition(
        &self,
        topology: &Topology,
        parallelism: Parallelism,
        global_batch: usize,
        seq_len: usize,
    ) -> MemoryPartition {
        let bd = self.mem.breakdown(global_batch, seq_len);
        let state_gb = bd.adapters_gb + bd.gradients_gb + bd.optimizer_gb + bd.weights_gb;
        let (sharded_single_gb, replicated_single_gb) = match parallelism {
            Parallelism::Data => (bd.activations_gb, state_gb + bd.overhead_gb),
            Parallelism::Tensor => (state_gb, bd.activations_gb + bd.overhead_gb),
            Parallelism::Expert => {
                let counts = self.model.param_counts();
                let expert_frac = counts.experts as f64 / counts.total() as f64;
                (
                    expert_frac * state_gb,
                    (1.0 - expert_frac) * state_gb + bd.activations_gb + bd.overhead_gb,
                )
            }
        };
        let n = topology.world_size() as f64;
        let per_device = topology
            .devices()
            .iter()
            .map(|gpu| DevicePartition {
                device: gpu.name.to_string(),
                mem_gb: gpu.mem_gb,
                sharded_gb: sharded_single_gb / n,
                replicated_gb: replicated_single_gb,
            })
            .collect();
        MemoryPartition {
            parallelism,
            per_device,
            sharded_single_gb,
            replicated_single_gb,
        }
    }

    /// The largest global batch whose partition fits **every** rank — the
    /// paper's Eq. 1 generalized to N devices. At world size 1 this is
    /// exactly [`MemoryModel::max_batch_size_for_mem`] on the lone device.
    pub fn max_batch(
        &self,
        topology: &Topology,
        parallelism: Parallelism,
        seq_len: usize,
    ) -> usize {
        if topology.is_single() {
            // Degenerate placement: the paper's Eq. 1, unchanged.
            return self
                .mem
                .max_batch_size_for_mem(topology.devices()[0].mem_gb, seq_len);
        }
        let per_query = self.mem.activation_gb_per_query(seq_len);
        if per_query <= 0.0 {
            return 0;
        }
        let n = topology.world_size() as f64;
        let stat = self.partition(topology, parallelism, 0, 0);
        let static_per_device = stat.sharded_single_gb / n + stat.replicated_single_gb;
        // Activations shard with the batch under data parallelism and
        // replicate under tensor/expert (each rank sees the full batch).
        let per_query_per_device = match parallelism {
            Parallelism::Data => per_query / n,
            Parallelism::Tensor | Parallelism::Expert => per_query,
        };
        topology
            .devices()
            .iter()
            .map(|gpu| {
                let avail = (gpu.mem_gb - static_per_device).max(0.0);
                (avail / per_query_per_device).floor() as usize
            })
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale_out::Interconnect;
    use ftsim_gpu::GpuSpec;
    use ftsim_model::presets;
    use proptest::prelude::*;

    fn mixtral_plan() -> DistributedPlan {
        DistributedPlan::new(presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse())
    }

    fn mamba_plan() -> DistributedPlan {
        DistributedPlan::new(presets::blackmamba_2p8b(), FineTuneConfig::full_sparse())
    }

    #[test]
    fn parallelism_round_trips_its_wire_names() {
        for p in Parallelism::all() {
            assert_eq!(Parallelism::parse(p.key()), Ok(p));
        }
        assert_eq!(Parallelism::parse("TP"), Ok(Parallelism::Tensor));
        assert!(Parallelism::parse("pipeline").is_err());
    }

    #[test]
    fn expert_alltoall_outweighs_tensor_allgather_per_token() {
        // Top-2 routing moves 2 activation copies through 4 collectives
        // per layer vs tensor's 1 copy through 2 — expert comm must cost
        // more at equal shape.
        let plan = mixtral_plan();
        let topo = Topology::homogeneous(GpuSpec::a40(), 4, Interconnect::pcie4());
        let tensor = plan.comm_seconds(&topo, Parallelism::Tensor, 8, 128);
        let expert = plan.comm_seconds(&topo, Parallelism::Expert, 8, 128);
        assert!(expert > tensor, "{expert} <= {tensor}");
    }

    #[test]
    fn data_parallel_splits_the_batch() {
        let plan = mamba_plan();
        let topo = Topology::homogeneous(GpuSpec::a100_80(), 4, Interconnect::nvlink3());
        let step = plan.simulate_step(&topo, Parallelism::Data, 8, 64);
        assert_eq!(step.per_device_batch, 2);
        let tp = plan.simulate_step(&topo, Parallelism::Tensor, 8, 64);
        assert_eq!(tp.per_device_batch, 8);
    }

    #[test]
    fn heterogeneous_fleet_has_a_bubble_and_the_straggler_gates() {
        let plan = mixtral_plan();
        let mixed = Topology::mixed(
            vec![GpuSpec::h100_80(), GpuSpec::h100_80(), GpuSpec::a40()],
            Interconnect::ethernet100g(),
        );
        let step = plan.simulate_step(&mixed, Parallelism::Data, 6, 64);
        assert!(step.bubble_seconds > 0.0, "mixed fleet must idle");
        let a40_only = Topology::homogeneous(GpuSpec::a40(), 3, Interconnect::ethernet100g());
        let homo = plan.simulate_step(&a40_only, Parallelism::Data, 6, 64);
        assert_eq!(homo.bubble_seconds, 0.0, "homogeneous fleet never idles");
        assert_eq!(
            step.compute_seconds, homo.compute_seconds,
            "the A40 is the straggler in both fleets"
        );
    }

    #[test]
    fn tensor_parallelism_raises_max_batch_by_freeing_static_state() {
        let plan = mixtral_plan();
        let single = plan.max_batch(&Topology::single(GpuSpec::a40()), Parallelism::Tensor, 79);
        let topo = Topology::homogeneous(GpuSpec::a40(), 8, Interconnect::pcie4());
        let sharded = plan.max_batch(&topo, Parallelism::Tensor, 79);
        assert!(
            sharded > single,
            "sharding 23GB of NF4 weights must free activation room: {sharded} <= {single}"
        );
    }

    #[test]
    fn partition_fits_iff_every_rank_fits() {
        let plan = mamba_plan();
        let topo = Topology::homogeneous(GpuSpec::a40(), 2, Interconnect::pcie4());
        let max = plan.max_batch(&topo, Parallelism::Data, 128);
        assert!(max >= 1);
        assert!(plan.partition(&topo, Parallelism::Data, max, 128).fits());
        assert!(!plan
            .partition(&topo, Parallelism::Data, 10 * (max + 1), 128)
            .fits());
    }

    #[test]
    fn simulator_pool_is_keyed_by_placement() {
        let plan = mixtral_plan();
        let nv = Interconnect::nvlink3();
        plan.simulate_step(
            &Topology::homogeneous(GpuSpec::a40(), 2, nv),
            Parallelism::Data,
            2,
            32,
        );
        plan.simulate_step(
            &Topology::homogeneous(GpuSpec::a40(), 4, nv),
            Parallelism::Tensor,
            2,
            32,
        );
        assert_eq!(plan.simulator_count(), 1, "one placement, one simulator");
        plan.simulate_step(
            &Topology::mixed(vec![GpuSpec::a40(), GpuSpec::h100_80()], nv),
            Parallelism::Data,
            2,
            32,
        );
        assert_eq!(plan.simulator_count(), 2);
    }

    proptest! {
        /// Satellite (a): the degenerate 1-GPU placement is bit-identical
        /// to the existing single-GPU path, for every strategy.
        #[test]
        fn prop_single_gpu_placement_is_bit_identical(
            batch in 1usize..6,
            seq in 16usize..96,
            pi in 0usize..3,
        ) {
            let plan = mixtral_plan();
            let gpu = GpuSpec::a40();
            let reference = StepSimulator::new(
                presets::mixtral_8x7b(),
                FineTuneConfig::qlora_sparse(),
                CostModel::new(gpu.clone()),
            );
            let step = plan.simulate_step(
                &Topology::single(gpu.clone()),
                Parallelism::all()[pi],
                batch,
                seq,
            );
            let expected = reference.simulate_step(batch, seq).total_seconds();
            prop_assert_eq!(step.total_seconds().to_bits(), expected.to_bits());
            prop_assert_eq!(step.comm_seconds.to_bits(), 0.0f64.to_bits());
            prop_assert_eq!(step.bubble_seconds.to_bits(), 0.0f64.to_bits());
            // Eq. 1 generalization degenerates the same way.
            let mem = MemoryModel::new(&presets::mixtral_8x7b(), &FineTuneConfig::qlora_sparse());
            prop_assert_eq!(
                plan.max_batch(&Topology::single(gpu.clone()), Parallelism::all()[pi], seq),
                mem.max_batch_size_for_mem(gpu.mem_gb, seq)
            );
        }

        /// Satellite (b), half 1: communication time is monotone
        /// non-decreasing in world size, for every strategy.
        #[test]
        fn prop_comm_monotone_in_world_size(
            n1 in 1usize..16,
            n2 in 1usize..16,
            batch in 1usize..8,
            seq in 16usize..256,
            pi in 0usize..3,
        ) {
            let plan = mixtral_plan();
            let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
            let par = Parallelism::all()[pi];
            let link = Interconnect::pcie4();
            let c_lo = plan.comm_seconds(
                &Topology::homogeneous(GpuSpec::a40(), lo, link), par, batch, seq);
            let c_hi = plan.comm_seconds(
                &Topology::homogeneous(GpuSpec::a40(), hi, link), par, batch, seq);
            prop_assert!(c_lo <= c_hi + 1e-15, "comm({lo})={c_lo} > comm({hi})={c_hi}");
        }

        /// Satellite (b), half 2: communication time is inversely monotone
        /// in link bandwidth (faster link, never slower step).
        #[test]
        fn prop_comm_inverse_monotone_in_bandwidth(
            n in 2usize..16,
            batch in 1usize..8,
            seq in 16usize..256,
            pi in 0usize..3,
            bw1 in 5.0f64..900.0,
            bw2 in 5.0f64..900.0,
        ) {
            let plan = mamba_plan();
            let par = Parallelism::all()[pi];
            let (slow, fast) = if bw1 <= bw2 { (bw1, bw2) } else { (bw2, bw1) };
            let link_at = |bw| Interconnect { name: "custom", bandwidth_gbps: bw, latency_us: 20.0 };
            let c_slow = plan.comm_seconds(
                &Topology::homogeneous(GpuSpec::a40(), n, link_at(slow)), par, batch, seq);
            let c_fast = plan.comm_seconds(
                &Topology::homogeneous(GpuSpec::a40(), n, link_at(fast)), par, batch, seq);
            prop_assert!(c_fast <= c_slow + 1e-15, "bw {fast} cost {c_fast} > bw {slow} cost {c_slow}");
        }

        /// Satellite (c): per-device partitions sum back to the
        /// single-device footprint within rounding — sharded components
        /// across ranks plus one replica's share of the replicated ones.
        #[test]
        fn prop_partitions_sum_to_the_single_device_total(
            n in 1usize..16,
            batch in 1usize..12,
            seq in 16usize..256,
            pi in 0usize..3,
            which_model in 0usize..2,
        ) {
            let plan = if which_model == 0 { mixtral_plan() } else { mamba_plan() };
            let par = Parallelism::all()[pi];
            let topo = Topology::homogeneous(GpuSpec::a100_80(), n, Interconnect::nvlink3());
            let part = plan.partition(&topo, par, batch, seq);
            let single = plan.memory().breakdown(batch, seq).total_gb();

            // The split itself covers the whole single-GPU footprint.
            let covered = part.sharded_single_gb + part.replicated_single_gb;
            prop_assert!((covered - single).abs() <= 1e-9 * single.max(1.0),
                "split covers {covered} of {single}");

            // The shards reassemble: sum of per-rank sharded slices equals
            // the sharded portion, and every rank replicates the rest.
            let shard_sum: f64 = part.per_device.iter().map(|d| d.sharded_gb).sum();
            prop_assert!((shard_sum - part.sharded_single_gb).abs()
                <= 1e-9 * part.sharded_single_gb.max(1.0));
            for d in &part.per_device {
                prop_assert_eq!(d.replicated_gb.to_bits(), part.replicated_single_gb.to_bits());
            }
        }
    }
}
