//! The maximum-batch-size model (paper Eq. 1).
//!
//! ```text
//! Max_BSZ = ⌊ C₀ · (GPU_mem − model_mem) / (seq_len · ((1−C₁) + C₁·sparsity)) ⌋
//! ```
//!
//! `C₀` (the *scaling coefficient*) captures how much intermediate data the
//! model generates per token; `C₁` (the *MoE coefficient*) captures what
//! fraction of that data scales with expert sparsity. With memory in GB and
//! sequence length in tokens our fitted Mixtral coefficients land near
//! `C₀ ≈ 8`, `C₁ ≈ 0.95`; the paper reports `C₀ = 82` for Mixtral with
//! unstated units (its own Table III numbers imply ≈8 under GB/token units —
//! see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// One ground-truth observation for fitting Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSample {
    /// Device memory in GB.
    pub gpu_mem_gb: f64,
    /// Model (weights) memory in GB, as in the paper's Eq. 1.
    pub model_mem_gb: f64,
    /// Query sequence length in tokens.
    pub seq_len: usize,
    /// Sparsity ratio `active experts / total experts` (1.0 = dense).
    pub sparsity: f64,
    /// Measured maximum batch size.
    pub max_batch: usize,
}

/// The fitted Eq. 1 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxBatchModel {
    /// Scaling coefficient C₀.
    pub c0: f64,
    /// MoE coefficient C₁ ∈ [0, 1].
    pub c1: f64,
}

impl MaxBatchModel {
    /// The pre-floor (continuous) prediction.
    pub fn predict_f(
        &self,
        gpu_mem_gb: f64,
        model_mem_gb: f64,
        seq_len: usize,
        sparsity: f64,
    ) -> f64 {
        let avail = (gpu_mem_gb - model_mem_gb).max(0.0);
        let denom = seq_len as f64 * ((1.0 - self.c1) + self.c1 * sparsity);
        if denom <= 0.0 {
            return 0.0;
        }
        self.c0 * avail / denom
    }

    /// The Eq. 1 prediction (floored to an integer batch size).
    pub fn predict(
        &self,
        gpu_mem_gb: f64,
        model_mem_gb: f64,
        seq_len: usize,
        sparsity: f64,
    ) -> usize {
        self.predict_f(gpu_mem_gb, model_mem_gb, seq_len, sparsity)
            .floor() as usize
    }

    /// Fits `(C₀, C₁)` to `samples`: a grid over `C₁ ∈ [0, 1)` with the
    /// least-squares-optimal `C₀` in closed form at each grid point
    /// (the model is linear in `C₀` once `C₁` is fixed).
    ///
    /// Returns the fitted model and its RMSE on the (continuous)
    /// predictions.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[BatchSample]) -> (Self, f64) {
        assert!(!samples.is_empty(), "need at least one sample to fit");
        let mut best: Option<(MaxBatchModel, f64)> = None;
        for i in 0..=999 {
            let c1 = i as f64 / 1000.0;
            // g_i = (mem_avail)/(seq·((1−c1)+c1·s));  y ≈ c0·g  ⇒
            // c0* = Σ g·y / Σ g².
            let mut num = 0.0;
            let mut den = 0.0;
            for s in samples {
                let g = MaxBatchModel { c0: 1.0, c1 }.predict_f(
                    s.gpu_mem_gb,
                    s.model_mem_gb,
                    s.seq_len,
                    s.sparsity,
                );
                num += g * s.max_batch as f64;
                den += g * g;
            }
            if den == 0.0 {
                continue;
            }
            let model = MaxBatchModel { c0: num / den, c1 };
            let err = model.rmse(samples);
            if best.is_none_or(|(_, e)| err < e) {
                best = Some((model, err));
            }
        }
        let (ls, _) = best.expect("grid always produces a candidate");
        // The least-squares fit optimizes the continuous prediction, but the
        // model is used *floored*. Refine C₀ locally for the best exact-match
        // rate (tie-broken by RMSE), which counteracts the floor bias.
        let mut refined = (ls, ls.exact_match_rate(samples), ls.rmse(samples));
        for i in 0..=80 {
            let c0 = ls.c0 * (0.90 + 0.005 * i as f64);
            let cand = MaxBatchModel { c0, c1: ls.c1 };
            let key = (cand.exact_match_rate(samples), -cand.rmse(samples));
            if key > (refined.1, -refined.2) {
                refined = (cand, key.0, -key.1);
            }
        }
        (refined.0, refined.2)
    }

    /// RMSE of the continuous predictions against the measured batch sizes.
    pub fn rmse(&self, samples: &[BatchSample]) -> f64 {
        let pred: Vec<f64> = samples
            .iter()
            .map(|s| self.predict_f(s.gpu_mem_gb, s.model_mem_gb, s.seq_len, s.sparsity))
            .collect();
        let truth: Vec<f64> = samples.iter().map(|s| s.max_batch as f64).collect();
        crate::fit::rmse(&pred, &truth)
    }

    /// Fraction of samples whose floored prediction matches exactly.
    pub fn exact_match_rate(&self, samples: &[BatchSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let hits = samples
            .iter()
            .filter(|s| {
                self.predict(s.gpu_mem_gb, s.model_mem_gb, s.seq_len, s.sparsity) == s.max_batch
            })
            .count();
        hits as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Samples generated from a known (C₀, C₁) should be recovered.
    fn synthetic_samples(c0: f64, c1: f64) -> Vec<BatchSample> {
        let truth = MaxBatchModel { c0, c1 };
        let mut out = Vec::new();
        for &(gpu, model) in &[(48.0, 23.35), (80.0, 23.35), (40.0, 5.6)] {
            for &seq in &[79usize, 148, 174] {
                for &s in &[0.25, 1.0] {
                    out.push(BatchSample {
                        gpu_mem_gb: gpu,
                        model_mem_gb: model,
                        seq_len: seq,
                        sparsity: s,
                        max_batch: truth.predict(gpu, model, seq, s),
                    });
                }
            }
        }
        out
    }

    #[test]
    fn fit_recovers_known_coefficients() {
        let samples = synthetic_samples(8.0, 0.95);
        let (fitted, err) = MaxBatchModel::fit(&samples);
        // Flooring in the ground truth biases the continuous fit slightly
        // low, so judge by predictive quality rather than raw coefficients.
        assert!(err < 0.6, "rmse {err}");
        assert!((fitted.c0 - 8.0).abs() < 1.6, "c0 = {}", fitted.c0);
        assert!((fitted.c1 - 0.95).abs() < 0.10, "c1 = {}", fitted.c1);
        assert!(fitted.exact_match_rate(&samples) >= 0.75);
    }

    #[test]
    fn prediction_matches_paper_eq1_structure() {
        // With C0=8, C1=0.95 and the paper's A40/Mixtral numbers, Eq. 1
        // reproduces the Table III Mixtral row.
        let m = MaxBatchModel { c0: 8.0, c1: 0.95 };
        assert_eq!(m.predict(48.0, 23.35, 79, 1.0), 2); // CS dense
        assert_eq!(m.predict(48.0, 23.35, 79, 0.25), 8); // CS sparse
        assert_eq!(m.predict(48.0, 23.35, 174, 1.0), 1); // MATH dense
        assert_eq!(m.predict(48.0, 23.35, 174, 0.25), 3); // MATH sparse
    }

    #[test]
    fn no_memory_left_means_zero_batch() {
        let m = MaxBatchModel { c0: 8.0, c1: 0.95 };
        assert_eq!(m.predict(20.0, 23.35, 79, 1.0), 0);
    }

    #[test]
    fn more_memory_more_batch() {
        let m = MaxBatchModel { c0: 8.0, c1: 0.95 };
        let b80 = m.predict(80.0, 23.35, 148, 0.25);
        let b48 = m.predict(48.0, 23.35, 148, 0.25);
        assert!(b80 > b48);
    }

    proptest! {
        #[test]
        fn prop_sparser_fits_more(seq in 32usize..512, s in 0.1f64..0.9) {
            let m = MaxBatchModel { c0: 8.0, c1: 0.95 };
            let sparse = m.predict_f(48.0, 23.35, seq, s);
            let dense = m.predict_f(48.0, 23.35, seq, 1.0);
            prop_assert!(sparse >= dense);
        }

        #[test]
        fn prop_fit_never_worse_than_naive(c0 in 2.0f64..20.0, c1 in 0.5f64..0.99) {
            let samples = synthetic_samples(c0, c1);
            let (fitted, err) = MaxBatchModel::fit(&samples);
            // A sparsity-blind model (C₁ = 0) must not reproduce the table
            // better than the fitted one.
            let naive = {
                let (m, _) = MaxBatchModel::fit(&samples[..1]);
                MaxBatchModel { c0: m.c0, c1: 0.0 }
            };
            prop_assert!(fitted.exact_match_rate(&samples) >= naive.exact_match_rate(&samples));
            prop_assert!(err.is_finite());
            prop_assert!(fitted.c0 > 0.0);
        }
    }
}
