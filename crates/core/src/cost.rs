//! Fine-tuning cost estimation (paper §V-C, Table IV).
//!
//! `cost = epochs × queries / throughput(max batch) × $/hour`, evaluated
//! per GPU, then ranked to find the most cost-efficient device.

use crate::throughput_model::ThroughputModel;
use ftsim_gpu::{GpuSpec, PriceTable};
use ftsim_model::MemoryModel;
use ftsim_workload::DatasetSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fine-tuning job to be priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FineTuneJob {
    /// Queries in the fine-tuning dataset.
    pub queries: usize,
    /// Training epochs (the paper budgets 10).
    pub epochs: usize,
}

impl FineTuneJob {
    /// A 10-epoch job over `dataset` (the paper's setup).
    pub fn ten_epochs(dataset: &DatasetSpec) -> Self {
        FineTuneJob {
            queries: dataset.num_queries,
            epochs: 10,
        }
    }

    /// Total queries processed over all epochs.
    pub fn total_queries(&self) -> f64 {
        self.queries as f64 * self.epochs as f64
    }
}

/// The cost estimate for one GPU — one row of the paper's Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// GPU name.
    pub gpu: String,
    /// Device memory in GB.
    pub mem_gb: f64,
    /// Maximum batch size used (Table IV "MBS").
    pub max_batch: usize,
    /// Estimated throughput at that batch in queries/second.
    pub throughput_qps: f64,
    /// Rental rate in USD/hour.
    pub usd_per_hour: f64,
    /// Wall-clock hours for the job.
    pub hours: f64,
    /// Total cost in USD.
    pub usd: f64,
}

impl fmt::Display for CostEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>4.0}GB  MBS={:<3} {:>6.2} q/s  ${:<5.2}/hr  {:>8.1} hr  ${:.1}",
            self.gpu,
            self.mem_gb,
            self.max_batch,
            self.throughput_qps,
            self.usd_per_hour,
            self.hours,
            self.usd
        )
    }
}

/// A ranked cost comparison across GPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTable {
    /// Per-GPU estimates, cheapest first.
    pub rows: Vec<CostEstimate>,
}

impl CostTable {
    /// Prices `job` on each GPU.
    ///
    /// For each device: the memory model gives the maximum batch size, the
    /// fitted Eq. 2 model (for that device) gives throughput at that batch,
    /// and the price table supplies the hourly rate. GPUs that cannot fit a
    /// single query or have no listed price are skipped.
    pub fn build(
        gpus_with_models: &[(GpuSpec, ThroughputModel)],
        memory: &MemoryModel,
        sparsity: f64,
        seq_len: usize,
        job: FineTuneJob,
        prices: &PriceTable,
    ) -> Self {
        let mut rows: Vec<CostEstimate> = gpus_with_models
            .iter()
            .filter_map(|(gpu, tput)| {
                let max_batch = memory.max_batch_size(gpu, seq_len);
                if max_batch == 0 {
                    return None;
                }
                let usd_per_hour = prices.usd_per_hour(&gpu.name)?;
                let qps = tput.predict(max_batch as f64, sparsity);
                let hours = job.total_queries() / qps / 3600.0;
                Some(CostEstimate {
                    gpu: gpu.name.clone(),
                    mem_gb: gpu.mem_gb,
                    max_batch,
                    throughput_qps: qps,
                    usd_per_hour,
                    hours,
                    usd: hours * usd_per_hour,
                })
            })
            .collect();
        rows.sort_by(|a, b| {
            a.usd
                .partial_cmp(&b.usd)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        CostTable { rows }
    }

    /// The most cost-efficient estimate, if any GPU qualified.
    pub fn cheapest(&self) -> Option<&CostEstimate> {
        self.rows.first()
    }

    /// Scales every row's cost to a different dataset size (the paper's
    /// OpenOrca projection "by scaling the cost by number of queries").
    pub fn scaled_to_queries(&self, from: FineTuneJob, to: FineTuneJob) -> CostTable {
        let factor = to.total_queries() / from.total_queries();
        CostTable {
            rows: self
                .rows
                .iter()
                .map(|r| CostEstimate {
                    hours: r.hours * factor,
                    usd: r.usd * factor,
                    ..r.clone()
                })
                .collect(),
        }
    }
}

impl fmt::Display for CostTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_gpu::CloudProvider;
    use ftsim_model::{presets, FineTuneConfig};
    use ftsim_workload::presets as data;

    fn table() -> CostTable {
        // Throughput models shaped like the paper's Table IV column: A40
        // ~1 qps, A100-80 ~2.7, H100 ~4.9 at their max batches.
        let combos = vec![
            (
                GpuSpec::a40(),
                ThroughputModel {
                    c2: 0.35,
                    c3: 1.0,
                    c4: 0.05,
                },
            ),
            (
                GpuSpec::a100_80(),
                ThroughputModel {
                    c2: 0.70,
                    c3: 1.0,
                    c4: 0.30,
                },
            ),
            (
                GpuSpec::h100_80(),
                ThroughputModel {
                    c2: 1.30,
                    c3: 1.0,
                    c4: 0.50,
                },
            ),
        ];
        let mem = MemoryModel::new(&presets::mixtral_8x7b(), &FineTuneConfig::qlora_sparse());
        CostTable::build(
            &combos,
            &mem,
            0.25,
            data::gsm8k().median_seq_len,
            FineTuneJob::ten_epochs(&data::math_14k()),
            &PriceTable::for_provider(CloudProvider::Cudo),
        )
    }

    #[test]
    fn h100_is_most_cost_effective() {
        // The paper's Table IV conclusion: despite the highest hourly rate,
        // the H100 is the cheapest overall.
        let t = table();
        assert_eq!(t.cheapest().unwrap().gpu, "H100-80GB");
        // And the A40 — the cheapest per hour — is the most expensive total.
        assert_eq!(t.rows.last().unwrap().gpu, "A40");
    }

    #[test]
    fn a40_batch_matches_table_iv() {
        let t = table();
        let a40 = t.rows.iter().find(|r| r.gpu == "A40").unwrap();
        assert_eq!(a40.max_batch, 4); // Table IV MBS column
    }

    #[test]
    fn costs_are_tens_of_dollars() {
        // Table IV: $17.9–$32.7 for 10 epochs of MATH-scale fine-tuning.
        for row in &table().rows {
            assert!(
                (5.0..120.0).contains(&row.usd),
                "{}: ${:.1}",
                row.gpu,
                row.usd
            );
        }
    }

    #[test]
    fn openorca_scaling() {
        // §V-C: scaling to 2M queries lands in the thousands of dollars.
        let t = table();
        let small = FineTuneJob::ten_epochs(&data::math_14k());
        let big = FineTuneJob::ten_epochs(&data::openorca());
        let scaled = t.scaled_to_queries(small, big);
        let cheapest = scaled.cheapest().unwrap();
        assert_eq!(cheapest.gpu, "H100-80GB");
        assert!(
            (1000.0..12_000.0).contains(&cheapest.usd),
            "OpenOrca cost ${:.0}",
            cheapest.usd
        );
    }

    #[test]
    fn display_renders_all_rows() {
        let s = table().to_string();
        assert!(s.contains("A40") && s.contains("H100"));
        assert!(s.contains("MBS="));
    }

    #[test]
    fn unpriced_gpus_are_skipped() {
        let combos = vec![(
            GpuSpec::a40(),
            ThroughputModel {
                c2: 0.5,
                c3: 1.0,
                c4: 0.2,
            },
        )];
        let mem = MemoryModel::new(&presets::mixtral_8x7b(), &FineTuneConfig::qlora_sparse());
        let t = CostTable::build(
            &combos,
            &mem,
            0.25,
            148,
            FineTuneJob {
                queries: 1000,
                epochs: 1,
            },
            &PriceTable::custom(), // empty price book
        );
        assert!(t.rows.is_empty());
        assert!(t.cheapest().is_none());
    }
}
