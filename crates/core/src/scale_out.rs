//! Multi-GPU scale-out estimation — the extension the paper explicitly
//! leaves open ("extending this model to multi-GPU systems is left for
//! future exploration", §VII).
//!
//! The model covers synchronous data parallelism: each of `n` replicas runs
//! the single-GPU step the rest of this crate already prices, then
//! gradients of the trainable parameters are all-reduced over an
//! interconnect. Per-step time becomes
//!
//! ```text
//! t_n = t_1 + t_allreduce(n),   t_allreduce = 2·(n−1)/n · G / B
//! ```
//!
//! (ring all-reduce moving `2(n−1)/n` of the gradient bytes `G` at bus
//! bandwidth `B`), giving throughput `n·batch / t_n` and scaling efficiency
//! `t_1 / t_n`. QLoRA's tiny trainable set makes it scale almost linearly,
//! while full fine-tuning pays a real synchronization tax — a direct
//! consequence of the paper's Fig. 4 optimizer analysis.

use serde::{Deserialize, Serialize};

/// Interconnect between replicas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-GPU bus bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Per-step collective launch latency in microseconds.
    pub latency_us: f64,
}

impl Interconnect {
    /// NVLink 3 (A100-class): 600 GB/s aggregate.
    pub fn nvlink3() -> Self {
        Interconnect {
            name: "NVLink3",
            bandwidth_gbps: 600.0,
            latency_us: 20.0,
        }
    }

    /// PCIe 4.0 x16: ~32 GB/s — the realistic budget option for A40 boxes.
    pub fn pcie4() -> Self {
        Interconnect {
            name: "PCIe4x16",
            bandwidth_gbps: 32.0,
            latency_us: 50.0,
        }
    }

    /// 100 GbE (~12.5 GB/s, RDMA-class latency): the cross-node tier for
    /// commodity clusters — what heterogeneous non-premium MoE fleets
    /// actually train over.
    pub fn ethernet100g() -> Self {
        Interconnect {
            name: "Ethernet100G",
            bandwidth_gbps: 12.5,
            latency_us: 150.0,
        }
    }

    /// Every built-in link tier, fastest first.
    pub fn catalog() -> Vec<Interconnect> {
        vec![
            Interconnect::nvlink3(),
            Interconnect::pcie4(),
            Interconnect::ethernet100g(),
        ]
    }

    /// Looks a tier up by name, case-insensitively, accepting the common
    /// short spellings (`"nvlink"`, `"pcie"`, `"ethernet"`/`"100gbe"`).
    pub fn by_name(name: &str) -> Option<Interconnect> {
        match name.trim().to_ascii_lowercase().as_str() {
            "nvlink" | "nvlink3" => Some(Interconnect::nvlink3()),
            "pcie" | "pcie4" | "pcie4x16" => Some(Interconnect::pcie4()),
            "ethernet" | "ethernet100g" | "100gbe" | "eth" => Some(Interconnect::ethernet100g()),
            _ => None,
        }
    }
}

/// A multi-GPU throughput/cost estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutPoint {
    /// Number of data-parallel replicas.
    pub gpus: usize,
    /// Per-step wall time in seconds (compute + all-reduce).
    pub step_seconds: f64,
    /// Aggregate queries/second.
    pub queries_per_second: f64,
    /// Scaling efficiency vs. `gpus × single-GPU throughput` in `(0, 1]`.
    pub efficiency: f64,
}

/// Estimates data-parallel scaling from a single-GPU operating point.
///
/// * `step_seconds`: single-GPU step latency at `batch`.
/// * `trainable_params`: parameters whose gradients are synchronized.
/// * `grad_bytes_per_param`: 2 for bf16 grads (full FT), 4 for fp32 (LoRA).
///
/// # Panics
///
/// Panics if `step_seconds` or `batch` is not positive, or `gpus` is empty.
pub fn scale_out(
    step_seconds: f64,
    batch: usize,
    trainable_params: f64,
    grad_bytes_per_param: f64,
    link: Interconnect,
    gpus: &[usize],
) -> Vec<ScaleOutPoint> {
    assert!(step_seconds > 0.0, "step time must be positive");
    assert!(batch >= 1, "batch must be at least 1");
    assert!(!gpus.is_empty(), "need at least one replica count");
    let grad_gb = trainable_params * grad_bytes_per_param / 1e9;
    gpus.iter()
        .map(|&n| {
            assert!(n >= 1, "replica count must be at least 1");
            let allreduce = if n == 1 {
                0.0
            } else {
                link.latency_us * 1e-6
                    + 2.0 * (n as f64 - 1.0) / n as f64 * grad_gb / link.bandwidth_gbps
            };
            let t_n = step_seconds + allreduce;
            ScaleOutPoint {
                gpus: n,
                step_seconds: t_n,
                queries_per_second: (n * batch) as f64 / t_n,
                efficiency: step_seconds / t_n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const QLORA_TRAINABLE: f64 = 228.6e6; // Mixtral rank-16 adapters
    const FULL_TRAINABLE: f64 = 2.82e9; // BlackMamba

    #[test]
    fn single_gpu_is_identity() {
        let pts = scale_out(2.0, 4, QLORA_TRAINABLE, 4.0, Interconnect::nvlink3(), &[1]);
        assert_eq!(pts[0].gpus, 1);
        assert_eq!(pts[0].step_seconds, 2.0);
        assert_eq!(pts[0].efficiency, 1.0);
        assert!((pts[0].queries_per_second - 2.0).abs() < 1e-12);
    }

    #[test]
    fn qlora_scales_nearly_linearly() {
        // 0.9 GB of gradients over NVLink is negligible next to a 2 s step.
        let pts = scale_out(
            2.0,
            4,
            QLORA_TRAINABLE,
            4.0,
            Interconnect::nvlink3(),
            &[2, 4, 8],
        );
        for p in pts {
            assert!(
                p.efficiency > 0.99,
                "{} GPUs: eff {:.3}",
                p.gpus,
                p.efficiency
            );
        }
    }

    #[test]
    fn full_finetune_pays_on_pcie() {
        // 5.6 GB of bf16 gradients over PCIe against a ~0.3 s BlackMamba
        // step is a real tax.
        let pts = scale_out(0.3, 12, FULL_TRAINABLE, 2.0, Interconnect::pcie4(), &[8]);
        assert!(
            pts[0].efficiency < 0.60,
            "expected heavy sync tax, got {:.3}",
            pts[0].efficiency
        );
        // But NVLink recovers most of it.
        let nv = scale_out(0.3, 12, FULL_TRAINABLE, 2.0, Interconnect::nvlink3(), &[8]);
        assert!(nv[0].efficiency > pts[0].efficiency + 0.2);
    }

    #[test]
    fn throughput_still_grows_with_gpus() {
        let pts = scale_out(
            0.3,
            12,
            FULL_TRAINABLE,
            2.0,
            Interconnect::pcie4(),
            &[1, 2, 4, 8],
        );
        for w in pts.windows(2) {
            assert!(w[1].queries_per_second > w[0].queries_per_second);
        }
    }

    proptest! {
        #[test]
        fn prop_efficiency_monotone_decreasing(
            step in 0.05f64..5.0, grads in 1e6f64..1e10, n1 in 1usize..16, n2 in 1usize..16
        ) {
            let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
            let pts = scale_out(step, 4, grads, 2.0, Interconnect::pcie4(), &[lo, hi]);
            prop_assert!(pts[0].efficiency >= pts[1].efficiency - 1e-12);
            prop_assert!(pts.iter().all(|p| p.efficiency > 0.0 && p.efficiency <= 1.0));
        }
    }
}
