//! Throughput-model validation against the execution simulator
//! (paper Figs. 14–15: dots = ground truth, line = Eq. 2 fit, report RMSE).

use crate::throughput_model::{ThroughputModel, ThroughputSample};
use ftsim_gpu::CostModel;
use ftsim_model::{FineTuneConfig, MemoryModel, ModelConfig, Sparsity};
use ftsim_sim::{StepSimulator, ThroughputSweep};
use serde::{Deserialize, Serialize};

/// The validation record for one (model, dataset, GPU) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputValidation {
    /// Combination label, e.g. `"Mixtral/CS @ A40"`.
    pub label: String,
    /// Fitted Eq. 2 coefficients.
    pub model: ThroughputModel,
    /// RMSE of the fit over all (dense + sparse) points.
    pub rmse: f64,
    /// Ground-truth samples the fit was made on.
    pub samples: Vec<ThroughputSample>,
    /// Dense sweep for plotting.
    pub dense: ThroughputSweep,
    /// Sparse sweep for plotting.
    pub sparse: ThroughputSweep,
}

impl ThroughputValidation {
    /// Mean ground-truth throughput over all samples.
    pub fn mean_qps(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.qps).sum::<f64>() / self.samples.len() as f64
    }

    /// RMSE normalized by the mean throughput — comparable across
    /// configurations whose absolute throughput differs by orders of
    /// magnitude (the simulator's BlackMamba runs far faster than Mixtral,
    /// so its absolute RMSE is not comparable to the paper's ~1 qps scale).
    pub fn relative_rmse(&self) -> f64 {
        let mean = self.mean_qps();
        if mean == 0.0 {
            0.0
        } else {
            self.rmse / mean
        }
    }
}

/// Runs the paper's validation protocol for one combination:
/// sweep batch sizes 1..=max for dense and sparse on the simulator,
/// fit Eq. 2 jointly, and report the RMSE.
pub fn validate_combo(
    label: impl Into<String>,
    model: &ModelConfig,
    cost: &CostModel,
    seq_len: usize,
    sparse_top_k: usize,
) -> ThroughputValidation {
    let label = label.into();
    let dense_ft = FineTuneConfig::for_model(model, Sparsity::Dense);
    let sparse_ft = FineTuneConfig::for_model(model, Sparsity::TopK(sparse_top_k));

    let gpu = cost.spec().clone();
    let dense_max = MemoryModel::new(model, &dense_ft)
        .max_batch_size(&gpu, seq_len)
        .max(1);
    let sparse_max = MemoryModel::new(model, &sparse_ft)
        .max_batch_size(&gpu, seq_len)
        .max(1);

    let dense_sim = StepSimulator::new(model.clone(), dense_ft, cost.clone());
    let sparse_sim = StepSimulator::new(model.clone(), sparse_ft, cost.clone());

    let batches = |max: usize| -> Vec<usize> { (1..=max).collect() };
    let dense = ThroughputSweep::run(
        &dense_sim,
        format!("{label} dense"),
        seq_len,
        &batches(dense_max),
    )
    .expect("valid batch list");
    let sparse = ThroughputSweep::run(
        &sparse_sim,
        format!("{label} sparse"),
        seq_len,
        &batches(sparse_max),
    )
    .expect("valid batch list");

    let mut samples = Vec::new();
    for (sweep, sparsity) in [
        (&dense, 1.0),
        (&sparse, sparse_ft.sparsity.ratio(model.moe.num_experts)),
    ] {
        for (batch, qps) in sweep.samples() {
            samples.push(ThroughputSample {
                batch,
                sparsity,
                qps,
            });
        }
    }
    let (fitted, rmse) = ThroughputModel::fit(&samples);
    ThroughputValidation {
        label,
        model: fitted,
        rmse,
        samples,
        dense,
        sparse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_gpu::GpuSpec;
    use ftsim_model::presets;

    fn a40() -> CostModel {
        CostModel::new(GpuSpec::a40())
    }

    #[test]
    fn mixtral_cs_fit_is_accurate_on_a40() {
        // Paper Fig. 14: RMSE < 0.8 on the A40 (abstract claims < 0.55).
        let v = validate_combo("Mixtral/CS @ A40", &presets::mixtral_8x7b(), &a40(), 79, 2);
        assert!(v.rmse < 0.55, "RMSE {:.3}", v.rmse);
        assert!(v.samples.len() >= 6);
    }

    #[test]
    fn blackmamba_cs_fit_is_accurate_on_a40() {
        // The simulated BlackMamba runs at tens of qps (vs the paper's ~1),
        // so the comparable bound is the *relative* RMSE.
        let v = validate_combo(
            "BlackMamba/CS @ A40",
            &presets::blackmamba_2p8b(),
            &a40(),
            79,
            2,
        );
        assert!(
            v.relative_rmse() < 0.20,
            "relative RMSE {:.3}",
            v.relative_rmse()
        );
    }

    #[test]
    fn mixtral_gs_fits_other_gpus() {
        // Paper Fig. 15: A100/H100 RMSE < 0.6 at ~2–5 qps; the comparable
        // normalized bound is ~0.2 relative.
        for gpu in [GpuSpec::a100_40(), GpuSpec::a100_80(), GpuSpec::h100_80()] {
            let name = gpu.name.clone();
            let v = validate_combo(
                format!("Mixtral/GS @ {name}"),
                &presets::mixtral_8x7b(),
                &CostModel::new(gpu),
                148,
                2,
            );
            assert!(
                v.rmse < 0.6 || v.relative_rmse() < 0.25,
                "{name}: RMSE {:.3} (relative {:.3})",
                v.rmse,
                v.relative_rmse()
            );
        }
    }

    #[test]
    fn fitted_curve_predicts_peak_reasonably() {
        let v = validate_combo("Mixtral/CS @ A40", &presets::mixtral_8x7b(), &a40(), 79, 2);
        let truth = v.sparse.peak_qps();
        let batch = v.sparse.points.last().unwrap().batch as f64;
        let pred = v.model.predict(batch, 0.25);
        assert!(
            (pred - truth).abs() / truth < 0.35,
            "peak pred {pred:.2} vs truth {truth:.2}"
        );
    }

    #[test]
    fn sweeps_cover_dense_and_sparse() {
        let v = validate_combo("Mixtral/CS @ A40", &presets::mixtral_8x7b(), &a40(), 79, 2);
        assert!(v.sparse.points.len() > v.dense.points.len());
        assert!(v.samples.iter().any(|s| s.sparsity == 1.0));
        assert!(v.samples.iter().any(|s| s.sparsity == 0.25));
    }
}
