//! Maximum-batch-size projection across GPU memory capacities
//! (paper Fig. 13), including hypothetical future 100 GB / 120 GB devices.

use crate::batch_model::{BatchSample, MaxBatchModel};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 13 projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectionPoint {
    /// Device label (existing GPU name or `"future-100GB"` style).
    pub label: String,
    /// Device memory in GB.
    pub mem_gb: f64,
    /// Model-predicted maximum batch size.
    pub predicted: usize,
    /// Measured ground truth, when the device exists.
    pub ground_truth: Option<usize>,
}

/// A fitted Eq. 1 model applied across a memory sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryProjection {
    /// The fitted model.
    pub model: MaxBatchModel,
    /// Fit RMSE on the ground-truth devices.
    pub fit_rmse: f64,
    /// Projection points (measured devices first, then futures).
    pub points: Vec<ProjectionPoint>,
}

impl MemoryProjection {
    /// Fits Eq. 1 to `measured` and projects to `future_mem_gb` capacities.
    ///
    /// All samples must share `model_mem_gb`, `seq_len`, and `sparsity` with
    /// the provided values (the projection varies memory only).
    ///
    /// # Panics
    ///
    /// Panics if `measured` is empty.
    pub fn build(
        measured: &[(String, BatchSample)],
        future_mem_gb: &[f64],
        model_mem_gb: f64,
        seq_len: usize,
        sparsity: f64,
    ) -> Self {
        assert!(!measured.is_empty(), "need measured devices to fit");
        let samples: Vec<BatchSample> = measured.iter().map(|(_, s)| *s).collect();
        let (model, fit_rmse) = MaxBatchModel::fit(&samples);
        let mut points: Vec<ProjectionPoint> = measured
            .iter()
            .map(|(label, s)| ProjectionPoint {
                label: label.clone(),
                mem_gb: s.gpu_mem_gb,
                predicted: model.predict(s.gpu_mem_gb, s.model_mem_gb, s.seq_len, s.sparsity),
                ground_truth: Some(s.max_batch),
            })
            .collect();
        for &mem in future_mem_gb {
            points.push(ProjectionPoint {
                label: format!("future-{mem:.0}GB"),
                mem_gb: mem,
                predicted: model.predict(mem, model_mem_gb, seq_len, sparsity),
                ground_truth: None,
            });
        }
        MemoryProjection {
            model,
            fit_rmse,
            points,
        }
    }

    /// Largest absolute error on the measured devices.
    pub fn max_abs_error(&self) -> usize {
        self.points
            .iter()
            .filter_map(|p| p.ground_truth.map(|t| p.predicted.abs_diff(t)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured() -> Vec<(String, BatchSample)> {
        // Ground truth shaped like our simulator's Mixtral sparse GS runs.
        let mk = |gpu_mem_gb: f64, max_batch: usize| BatchSample {
            gpu_mem_gb,
            model_mem_gb: 23.35,
            seq_len: 148,
            sparsity: 0.25,
            max_batch,
        };
        vec![
            ("A40".into(), mk(48.0, 4)),
            ("A100-40GB".into(), mk(40.0, 3)),
            ("A100-80GB".into(), mk(80.0, 11)),
            ("H100-80GB".into(), mk(80.0, 11)),
        ]
    }

    #[test]
    fn projection_grows_with_memory() {
        let p = MemoryProjection::build(&measured(), &[100.0, 120.0], 23.35, 148, 0.25);
        let by_mem: Vec<(f64, usize)> = p
            .points
            .iter()
            .map(|pt| (pt.mem_gb, pt.predicted))
            .collect();
        for w in by_mem.windows(2) {
            if w[0].0 <= w[1].0 {
                assert!(w[0].1 <= w[1].1, "{by_mem:?}");
            }
        }
        let f120 = p
            .points
            .iter()
            .find(|pt| pt.label == "future-120GB")
            .unwrap();
        let f100 = p
            .points
            .iter()
            .find(|pt| pt.label == "future-100GB")
            .unwrap();
        assert!(f120.predicted > f100.predicted);
        assert!(f100.ground_truth.is_none());
    }

    #[test]
    fn fit_tracks_measured_devices() {
        let p = MemoryProjection::build(&measured(), &[], 23.35, 148, 0.25);
        assert!(p.fit_rmse < 1.0, "rmse {}", p.fit_rmse);
        assert!(p.max_abs_error() <= 1, "max error {}", p.max_abs_error());
    }

    #[test]
    fn future_labels_present() {
        let p = MemoryProjection::build(&measured(), &[100.0], 23.35, 148, 0.25);
        assert_eq!(p.points.len(), 5);
        assert!(p.points.iter().any(|pt| pt.label.starts_with("future-100")));
    }
}
