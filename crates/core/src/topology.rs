//! Device-fleet topologies for the distributed step simulator.
//!
//! A [`Topology`] is the placement half of a distributed scenario: which
//! GPUs participate (a homogeneous fleet or a mixed A40/A100/H100 one,
//! drawn from the `ftsim-gpu` catalog) and what link connects them (an
//! [`Interconnect`] tier — NVLink, PCIe, or Ethernet — each a bandwidth +
//! latency pair). The compute half lives in [`crate::distributed`], which
//! composes a topology with the single-GPU [`StepSimulator`] and an
//! analytic communication roofline.
//!
//! [`StepSimulator`]: ftsim_sim::StepSimulator

use ftsim_gpu::GpuSpec;
use serde::{Deserialize, Serialize};

use crate::scale_out::Interconnect;

/// A fleet of GPUs joined by one interconnect tier.
///
/// The device list is ordered (device 0, device 1, …) but the cost model is
/// placement-symmetric: only the multiset of device specs and the link
/// matter. A single-device topology is the degenerate case every
/// distributed estimate must collapse to — see
/// [`DistributedPlan`](crate::distributed::DistributedPlan).
///
/// ```
/// use ftsim_cost::Topology;
/// use ftsim_gpu::GpuSpec;
///
/// // Four A40s on PCIe — the budget box the paper prices per-GPU.
/// let topo = Topology::homogeneous(GpuSpec::a40(), 4, ftsim_cost::Interconnect::pcie4());
/// assert_eq!(topo.world_size(), 4);
/// assert_eq!(topo.min_mem_gb(), 48.0);
/// assert!(!topo.is_single());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Participating devices, one entry per rank.
    devices: Vec<GpuSpec>,
    /// The link every collective crosses.
    link: Interconnect,
}

impl Topology {
    /// A fleet of `world_size` identical `gpu` devices joined by `link`.
    ///
    /// # Panics
    ///
    /// Panics if `world_size` is zero.
    pub fn homogeneous(gpu: GpuSpec, world_size: usize, link: Interconnect) -> Self {
        assert!(world_size >= 1, "world size must be at least 1");
        Topology {
            devices: vec![gpu; world_size],
            link,
        }
    }

    /// A mixed fleet — e.g. A40s and H100s side by side, as in
    /// heterogeneous-cluster MoE training ("Every FLOP Counts").
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn mixed(devices: Vec<GpuSpec>, link: Interconnect) -> Self {
        assert!(!devices.is_empty(), "need at least one device");
        Topology { devices, link }
    }

    /// A one-device topology: the degenerate case with no communication.
    /// The link is irrelevant (no collective ever crosses it) but kept so
    /// the type stays uniform; PCIe is recorded as a placeholder.
    pub fn single(gpu: GpuSpec) -> Self {
        Topology::homogeneous(gpu, 1, Interconnect::pcie4())
    }

    /// Number of participating devices.
    pub fn world_size(&self) -> usize {
        self.devices.len()
    }

    /// `true` iff exactly one device participates.
    pub fn is_single(&self) -> bool {
        self.devices.len() == 1
    }

    /// The participating devices, one per rank.
    pub fn devices(&self) -> &[GpuSpec] {
        &self.devices
    }

    /// The interconnect every collective crosses.
    pub fn link(&self) -> Interconnect {
        self.link
    }

    /// Memory of the smallest device — the per-rank capacity bound for any
    /// placement that gives every rank the same shard sizes.
    pub fn min_mem_gb(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.mem_gb)
            .fold(f64::INFINITY, f64::min)
    }

    /// The realistic default link for a device class: PCIe for the A40
    /// (no NVLink bridge in the paper's testbed), NVLink for the
    /// datacenter A100/H100 parts. Matches the planner service's choice.
    pub fn default_link_for(gpu: &GpuSpec) -> Interconnect {
        if gpu.name == "A40" {
            Interconnect::pcie4()
        } else {
            Interconnect::nvlink3()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_replicates_the_device() {
        let topo = Topology::homogeneous(GpuSpec::a100_80(), 8, Interconnect::nvlink3());
        assert_eq!(topo.world_size(), 8);
        assert!(topo.devices().iter().all(|d| d.name == "A100-80GB"));
        assert_eq!(topo.min_mem_gb(), 80.0);
    }

    #[test]
    fn mixed_fleet_capacity_is_bounded_by_the_smallest_device() {
        let topo = Topology::mixed(
            vec![GpuSpec::h100_80(), GpuSpec::a40(), GpuSpec::a100_80()],
            Interconnect::ethernet100g(),
        );
        assert_eq!(topo.world_size(), 3);
        assert_eq!(topo.min_mem_gb(), 48.0, "A40 bounds the fleet");
    }

    #[test]
    fn single_is_degenerate() {
        let topo = Topology::single(GpuSpec::a40());
        assert!(topo.is_single());
        assert_eq!(topo.world_size(), 1);
    }

    #[test]
    fn default_link_matches_the_device_class() {
        assert_eq!(Topology::default_link_for(&GpuSpec::a40()).name, "PCIe4x16");
        assert_eq!(
            Topology::default_link_for(&GpuSpec::h100_80()).name,
            "NVLink3"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_world_size_panics() {
        Topology::homogeneous(GpuSpec::a40(), 0, Interconnect::pcie4());
    }
}
