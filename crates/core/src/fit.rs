//! Numerical fitting: Nelder–Mead simplex minimization (standing in for the
//! paper's scipy `curve_fit`) and error metrics.

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub tolerance: f64,
    /// Initial simplex step per dimension, relative to the start point
    /// (absolute floor of 0.1).
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_iters: 2000,
            tolerance: 1e-10,
            initial_step: 0.25,
        }
    }
}

/// Minimizes `f` starting from `x0` with the Nelder–Mead simplex method.
/// Returns the best point found.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn nelder_mead(f: impl Fn(&[f64]) -> f64, x0: &[f64], opts: NelderMeadOptions) -> Vec<f64> {
    assert!(!x0.is_empty(), "need at least one dimension");
    let n = x0.len();
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    // Initial simplex: x0 plus a perturbation along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((x0.to_vec(), f(x0)));
    for i in 0..n {
        let mut p = x0.to_vec();
        let step = (p[i].abs() * opts.initial_step).max(0.1);
        p[i] += step;
        let fp = f(&p);
        simplex.push((p, fp));
    }

    for _ in 0..opts.max_iters {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        // Converged only when both the objective spread AND the simplex
        // extent are tiny (f-spread alone stalls on points symmetric about
        // the minimum).
        let spread = simplex[n].1 - simplex[0].1;
        let extent: f64 = simplex[1..]
            .iter()
            .map(|(p, _)| {
                p.iter()
                    .zip(&simplex[0].0)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        if spread.abs() < opts.tolerance && extent < 1e-8 {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (p, _) in &simplex[..n] {
            for (c, &pi) in centroid.iter_mut().zip(p) {
                *c += pi / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let at = |coef: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&worst.0)
                .map(|(&c, &w)| c + coef * (c - w))
                .collect()
        };

        let reflected = at(alpha);
        let fr = f(&reflected);
        if fr < simplex[0].1 {
            // Try expanding.
            let expanded = at(gamma);
            let fe = f(&expanded);
            simplex[n] = if fe < fr {
                (expanded, fe)
            } else {
                (reflected, fr)
            };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflected, fr);
        } else {
            // Contract.
            let contracted = at(-rho);
            let fc = f(&contracted);
            if fc < simplex[n].1 {
                simplex[n] = (contracted, fc);
            } else {
                // Shrink toward the best point.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    for (pi, &bi) in entry.0.iter_mut().zip(&best) {
                        *pi = bi + sigma * (*pi - bi);
                    }
                    entry.1 = f(&entry.0);
                }
            }
        }
    }
    simplex
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("simplex non-empty")
        .0
}

/// Runs [`nelder_mead`] from several starts and keeps the best result.
///
/// # Panics
///
/// Panics if `starts` is empty.
pub fn multi_start(
    f: impl Fn(&[f64]) -> f64,
    starts: &[Vec<f64>],
    opts: NelderMeadOptions,
) -> Vec<f64> {
    assert!(!starts.is_empty(), "need at least one start point");
    starts
        .iter()
        .map(|s| nelder_mead(&f, s, opts))
        .min_by(|a, b| f(a).partial_cmp(&f(b)).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one start")
}

/// Root-mean-square error between predictions and ground truth.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "rmse of empty slices");
    let sum: f64 = pred.iter().zip(truth).map(|(&p, &t)| (p - t).powi(2)).sum();
    (sum / pred.len() as f64).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "mae of empty slices");
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let best = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.5).powi(2),
            &[0.0, 0.0],
            NelderMeadOptions::default(),
        );
        assert!((best[0] - 3.0).abs() < 1e-3, "{best:?}");
        assert!((best[1] + 1.5).abs() < 1e-3, "{best:?}");
    }

    #[test]
    fn minimizes_rosenbrock() {
        // The classic banana function; minimum at (1, 1).
        let best = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_iters: 10_000,
                ..Default::default()
            },
        );
        assert!((best[0] - 1.0).abs() < 1e-2, "{best:?}");
        assert!((best[1] - 1.0).abs() < 1e-2, "{best:?}");
    }

    #[test]
    fn one_dimensional_works() {
        let best = nelder_mead(
            |x| (x[0] - 7.0).powi(2),
            &[0.0],
            NelderMeadOptions::default(),
        );
        assert!((best[0] - 7.0).abs() < 1e-3);
    }

    #[test]
    fn multi_start_escapes_bad_basins() {
        // f has a local minimum near 0 and a global one near 5.
        let f = |x: &[f64]| {
            let v = x[0];
            0.5 * (v + 0.5).powi(2).min(2.0) + (v - 5.0).powi(2) * 0.1
        };
        let best = multi_start(
            f,
            &[vec![-2.0], vec![0.0], vec![6.0]],
            NelderMeadOptions::default(),
        );
        assert!(best[0] > 3.0, "stuck at {best:?}");
    }

    #[test]
    fn recovers_curve_coefficients_via_least_squares() {
        // Generate y = 2.5 ln(x) + 0.7 and recover the coefficients.
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * x.ln() + 0.7).collect();
        let objective = |p: &[f64]| -> f64 {
            xs.iter()
                .zip(&ys)
                .map(|(&x, &y)| (p[0] * x.ln() + p[1] - y).powi(2))
                .sum()
        };
        let best = nelder_mead(objective, &[1.0, 0.0], NelderMeadOptions::default());
        assert!((best[0] - 2.5).abs() < 1e-3, "{best:?}");
        assert!((best[1] - 0.7).abs() < 1e-3, "{best:?}");
    }

    #[test]
    fn rmse_and_mae_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert!((mae(&[0.0, 0.0], &[3.0, 4.0]) - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_rejects_mismatched() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
