//! The throughput model (paper Eq. 2).
//!
//! ```text
//! Throughput = C₂ · log( batch / (sparsity · C₃) ) + C₄
//! ```
//!
//! `C₂` is the *scaling coefficient* (GPU/model/dataset-dependent), `C₃` the
//! *MoE attenuation coefficient* (model-dependent — tunes how much sparsity
//! shifts the curve), and `C₄` the *intercept* (conceptually the throughput
//! at batch size 1 for a dense model with C₃ = 1). One (C₂, C₃, C₄) set is
//! fitted per (model, dataset, GPU) combination over both the dense and
//! sparse sweeps, exactly as the paper fits with scipy.

use crate::fit::{multi_start, rmse, NelderMeadOptions};
use serde::{Deserialize, Serialize};

/// One ground-truth throughput observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSample {
    /// Batch size.
    pub batch: f64,
    /// Sparsity ratio (1.0 dense, 0.25 top-2-of-8).
    pub sparsity: f64,
    /// Measured queries/second.
    pub qps: f64,
}

/// The fitted Eq. 2 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputModel {
    /// Scaling coefficient C₂.
    pub c2: f64,
    /// MoE attenuation coefficient C₃ (> 0).
    pub c3: f64,
    /// Intercept C₄.
    pub c4: f64,
}

impl ThroughputModel {
    /// Predicted queries/second at `batch` and `sparsity`.
    ///
    /// Predictions are clamped at a small positive floor: a negative
    /// throughput is never meaningful.
    pub fn predict(&self, batch: f64, sparsity: f64) -> f64 {
        let arg = (batch / (sparsity * self.c3)).max(1e-9);
        (self.c2 * arg.ln() + self.c4).max(1e-6)
    }

    /// Fits (C₂, C₃, C₄) to `samples` by least squares with multi-start
    /// Nelder–Mead. Returns the model and its RMSE.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 samples are given (the model has 3 degrees of
    /// freedom).
    pub fn fit(samples: &[ThroughputSample]) -> (Self, f64) {
        assert!(
            samples.len() >= 3,
            "need at least 3 samples, got {}",
            samples.len()
        );
        let objective = |p: &[f64]| -> f64 {
            let model = ThroughputModel {
                c2: p[0],
                c3: p[1].abs().max(1e-6),
                c4: p[2],
            };
            samples
                .iter()
                .map(|s| (model.predict(s.batch, s.sparsity) - s.qps).powi(2))
                .sum()
        };
        let qps_max = samples.iter().map(|s| s.qps).fold(0.0, f64::max);
        let starts = vec![
            vec![qps_max / 3.0, 1.0, samples[0].qps],
            vec![qps_max / 3.0, 0.3, 0.0],
            vec![qps_max, 2.0, 0.1],
            vec![0.5, 0.8, 0.5],
        ];
        let best = multi_start(
            objective,
            &starts,
            NelderMeadOptions {
                max_iters: 5000,
                ..Default::default()
            },
        );
        let model = ThroughputModel {
            c2: best[0],
            c3: best[1].abs().max(1e-6),
            c4: best[2],
        };
        (model, model.rmse(samples))
    }

    /// RMSE of predictions against `samples`.
    pub fn rmse(&self, samples: &[ThroughputSample]) -> f64 {
        let pred: Vec<f64> = samples
            .iter()
            .map(|s| self.predict(s.batch, s.sparsity))
            .collect();
        let truth: Vec<f64> = samples.iter().map(|s| s.qps).collect();
        rmse(&pred, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn synthetic(c2: f64, c3: f64, c4: f64) -> Vec<ThroughputSample> {
        let truth = ThroughputModel { c2, c3, c4 };
        let mut out = Vec::new();
        for &s in &[0.25, 1.0] {
            for b in 1..=10 {
                out.push(ThroughputSample {
                    batch: b as f64,
                    sparsity: s,
                    qps: truth.predict(b as f64, s),
                });
            }
        }
        out
    }

    #[test]
    fn fit_recovers_known_curve() {
        let samples = synthetic(0.55, 0.8, 0.4);
        let (fitted, err) = ThroughputModel::fit(&samples);
        assert!(err < 1e-3, "rmse {err}");
        // The curve is what matters; check predictions, not raw
        // coefficients (C₃ and C₄ trade off through the log).
        for s in &samples {
            let p = fitted.predict(s.batch, s.sparsity);
            assert!(
                (p - s.qps).abs() < 0.02,
                "batch {}: {p} vs {}",
                s.batch,
                s.qps
            );
        }
    }

    #[test]
    fn throughput_increases_with_batch() {
        let m = ThroughputModel {
            c2: 0.6,
            c3: 0.8,
            c4: 0.4,
        };
        let mut prev = 0.0;
        for b in 1..=20 {
            let q = m.predict(b as f64, 0.25);
            assert!(q > prev);
            prev = q;
        }
    }

    #[test]
    fn log_saturation_shape() {
        // Marginal gain shrinks with batch: q(2)-q(1) > q(10)-q(9).
        let m = ThroughputModel {
            c2: 0.6,
            c3: 0.8,
            c4: 0.4,
        };
        let g_low = m.predict(2.0, 1.0) - m.predict(1.0, 1.0);
        let g_high = m.predict(10.0, 1.0) - m.predict(9.0, 1.0);
        assert!(g_low > g_high);
    }

    #[test]
    fn sparsity_shifts_curve_up() {
        // At equal batch, lower sparsity ratio (fewer active experts) gives
        // higher predicted throughput — matching Fig. 8.
        let m = ThroughputModel {
            c2: 0.6,
            c3: 0.8,
            c4: 0.4,
        };
        assert!(m.predict(2.0, 0.25) > m.predict(2.0, 1.0));
    }

    #[test]
    fn intercept_is_dense_batch1_throughput() {
        // With C₃ = 1, sparsity 1 and batch 1 the log term vanishes.
        let m = ThroughputModel {
            c2: 0.9,
            c3: 1.0,
            c4: 0.37,
        };
        assert!((m.predict(1.0, 1.0) - 0.37).abs() < 1e-12);
    }

    #[test]
    fn predictions_never_negative() {
        let m = ThroughputModel {
            c2: 0.6,
            c3: 5.0,
            c4: -2.0,
        };
        assert!(m.predict(1.0, 1.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 3 samples")]
    fn fit_rejects_underdetermined() {
        ThroughputModel::fit(&[
            ThroughputSample {
                batch: 1.0,
                sparsity: 1.0,
                qps: 0.5,
            },
            ThroughputSample {
                batch: 2.0,
                sparsity: 1.0,
                qps: 0.8,
            },
        ]);
    }

    proptest! {
        #[test]
        fn prop_fit_rmse_beats_constant_predictor(
            c2 in 0.2f64..2.0, c3 in 0.3f64..2.0, c4 in 0.0f64..1.0, noise_seed in 0u64..50
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(noise_seed);
            let mut samples = synthetic(c2, c3, c4);
            for s in &mut samples {
                s.qps *= 1.0 + rng.gen_range(-0.02..0.02);
            }
            let (fitted, err) = ThroughputModel::fit(&samples);
            // Constant predictor at the mean.
            let mean = samples.iter().map(|s| s.qps).sum::<f64>() / samples.len() as f64;
            let const_rmse = crate::fit::rmse(
                &vec![mean; samples.len()],
                &samples.iter().map(|s| s.qps).collect::<Vec<_>>(),
            );
            prop_assert!(err <= const_rmse + 1e-9);
            prop_assert!(fitted.c3 > 0.0);
        }
    }
}
