//! GPU memory footprint model: weights, optimizer state, activations, and
//! the maximum batch size they admit (paper §IV-B1, Table III).

use crate::config::ModelConfig;
use crate::finetune::{FineTuneConfig, FineTuneMethod};
use ftsim_gpu::GpuSpec;
use serde::{Deserialize, Serialize};

/// Storage data types used during fine-tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dtype {
    /// IEEE 754 single precision.
    F32,
    /// bfloat16.
    Bf16,
    /// 4-bit NormalFloat with fp32 block scales (block 64).
    Nf4,
    /// NF4 with double-quantized scales — QLoRA's storage format. The paper's
    /// Table I "23.35 GB" for Mixtral equals params × 0.5 B, i.e. scale
    /// overhead amortized away by double quantization.
    Nf4DoubleQuant,
}

impl Dtype {
    /// Average bytes per parameter, including quantization metadata.
    pub fn bytes_per_param(&self) -> f64 {
        match self {
            Dtype::F32 => 4.0,
            Dtype::Bf16 => 2.0,
            Dtype::Nf4 => 0.5625, // 0.5 + 4-byte fp32 scale per 64 elements
            Dtype::Nf4DoubleQuant => 0.5,
        }
    }
}

/// Empirical constants mapping tokens to activation bytes.
///
/// The per-token transient footprint of a real fine-tuning step (activations
/// kept for backward, de-quantization buffers, logits, allocator headroom)
/// is framework-dependent and far larger than the theoretical activation
/// size; these constants are calibrated so that
/// [`MemoryModel::max_batch_size`] reproduces the paper's measured Table III
/// on the A40. The `moe_fraction` plays the role of the paper's MoE
/// coefficient C₁ in Eq. (1): only that fraction of per-token memory scales
/// with expert sparsity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationCalibration {
    /// Peak transient GB per token at dense (all-expert) activation.
    pub per_token_gb: f64,
    /// Fraction of per-token memory that scales with MoE sparsity.
    pub moe_fraction: f64,
    /// Fixed framework overhead in GB (CUDA context, fragmentation floor).
    pub overhead_gb: f64,
}

impl ActivationCalibration {
    /// Calibration for the paper's Mixtral-8x7B QLoRA setup
    /// (reproduces all four Mixtral cells of Table III and the Table IV
    /// A40 batch size of 4 on GSM8K exactly).
    pub fn mixtral() -> Self {
        ActivationCalibration {
            per_token_gb: 0.105,
            moe_fraction: 0.95,
            overhead_gb: 1.0,
        }
    }

    /// Calibration for the paper's BlackMamba-2.8B full fine-tuning setup
    /// (reproduces three of the four BlackMamba cells of Table III exactly,
    /// the fourth within +1).
    pub fn blackmamba() -> Self {
        ActivationCalibration {
            per_token_gb: 0.0263,
            moe_fraction: 0.9133,
            overhead_gb: 1.0,
        }
    }

    /// Picks the calibration matching `model`'s architecture family.
    pub fn for_model(model: &ModelConfig) -> Self {
        if model.is_attention() {
            Self::mixtral()
        } else {
            Self::blackmamba()
        }
    }

    /// Effective per-token multiplier for a sparsity ratio `s = k/E`:
    /// `(1 - moe_fraction) + moe_fraction × s` — the denominator structure
    /// of the paper's Eq. (1).
    pub fn sparsity_multiplier(&self, sparsity_ratio: f64) -> f64 {
        (1.0 - self.moe_fraction) + self.moe_fraction * sparsity_ratio
    }
}

/// A memory budget broken into its components, in decimal GB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBreakdown {
    /// Base model weights (quantized for QLoRA).
    pub weights_gb: f64,
    /// LoRA adapter weights (fp32), zero for full fine-tuning.
    pub adapters_gb: f64,
    /// Gradient storage for trainable parameters.
    pub gradients_gb: f64,
    /// AdamW moment state (fp32 m and v).
    pub optimizer_gb: f64,
    /// Fixed framework overhead.
    pub overhead_gb: f64,
    /// Activations / transients for the requested batch.
    pub activations_gb: f64,
}

impl MemoryBreakdown {
    /// Total footprint in GB.
    pub fn total_gb(&self) -> f64 {
        self.weights_gb
            + self.adapters_gb
            + self.gradients_gb
            + self.optimizer_gb
            + self.overhead_gb
            + self.activations_gb
    }

    /// Static (batch-independent) footprint in GB.
    pub fn static_gb(&self) -> f64 {
        self.total_gb() - self.activations_gb
    }
}

/// The memory model for one (model, fine-tuning recipe) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryModel {
    model: ModelConfig,
    ft: FineTuneConfig,
    calib: ActivationCalibration,
}

impl MemoryModel {
    /// Memory model with the built-in calibration for `model`'s family.
    pub fn new(model: &ModelConfig, ft: &FineTuneConfig) -> Self {
        MemoryModel {
            model: model.clone(),
            ft: *ft,
            calib: ActivationCalibration::for_model(model),
        }
    }

    /// Memory model with an explicit calibration (for custom models).
    pub fn with_calibration(
        model: &ModelConfig,
        ft: &FineTuneConfig,
        calib: ActivationCalibration,
    ) -> Self {
        MemoryModel {
            model: model.clone(),
            ft: *ft,
            calib,
        }
    }

    /// The active calibration.
    pub fn calibration(&self) -> &ActivationCalibration {
        &self.calib
    }

    /// Storage dtype of the frozen base weights under this recipe.
    pub fn weight_dtype(&self) -> Dtype {
        if self.ft.method.is_quantized() {
            Dtype::Nf4DoubleQuant
        } else {
            Dtype::Bf16
        }
    }

    /// Base weight footprint in GB (paper Table I "Mem consump." column).
    pub fn weights_gb(&self) -> f64 {
        self.model.param_counts().total() as f64 * self.weight_dtype().bytes_per_param() / 1e9
    }

    /// Footprint of one training query of `seq_len` tokens, in GB.
    pub fn activation_gb_per_query(&self, seq_len: usize) -> f64 {
        let s = self.ft.sparsity.ratio(self.model.moe.num_experts);
        seq_len as f64 * self.calib.per_token_gb * self.calib.sparsity_multiplier(s)
    }

    /// Full footprint for a batch of `batch` queries of `seq_len` tokens.
    pub fn breakdown(&self, batch: usize, seq_len: usize) -> MemoryBreakdown {
        let trainable = self.ft.trainable_params(&self.model) as f64;
        let (adapters_gb, grad_bytes) = match self.ft.method {
            // Full fine-tuning: weights ARE the trainables; bf16 gradients.
            FineTuneMethod::Full => (0.0, 2.0),
            // Adapters are extra fp32 weights; fp32 gradients.
            FineTuneMethod::Lora { .. } | FineTuneMethod::QLora { .. } => {
                (trainable * 4.0 / 1e9, 4.0)
            }
        };
        MemoryBreakdown {
            weights_gb: self.weights_gb(),
            adapters_gb,
            gradients_gb: trainable * grad_bytes / 1e9,
            optimizer_gb: trainable * 8.0 / 1e9, // fp32 m and v
            overhead_gb: self.calib.overhead_gb,
            activations_gb: batch as f64 * self.activation_gb_per_query(seq_len),
        }
    }

    /// GB left for activations on a device with `mem_gb` of memory.
    pub fn available_gb(&self, mem_gb: f64) -> f64 {
        (mem_gb - self.breakdown(0, 0).static_gb()).max(0.0)
    }

    /// Maximum batch size fitting in `mem_gb` for `seq_len`-token queries
    /// (0 if even one query does not fit).
    pub fn max_batch_size_for_mem(&self, mem_gb: f64, seq_len: usize) -> usize {
        let per_query = self.activation_gb_per_query(seq_len);
        if per_query <= 0.0 {
            return 0;
        }
        (self.available_gb(mem_gb) / per_query).floor() as usize
    }

    /// Maximum batch size on `gpu` — the quantity of the paper's Table III.
    pub fn max_batch_size(&self, gpu: &GpuSpec, seq_len: usize) -> usize {
        self.max_batch_size_for_mem(gpu.mem_gb, seq_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finetune::Sparsity;
    use crate::presets;
    use proptest::prelude::*;

    fn mixtral_mem(ft: FineTuneConfig) -> MemoryModel {
        MemoryModel::new(&presets::mixtral_8x7b(), &ft)
    }

    fn blackmamba_mem(ft: FineTuneConfig) -> MemoryModel {
        MemoryModel::new(&presets::blackmamba_2p8b(), &ft)
    }

    #[test]
    fn table_i_weight_footprints() {
        let mx = mixtral_mem(FineTuneConfig::qlora_sparse());
        assert!(
            (mx.weights_gb() - 23.35).abs() < 0.1,
            "Mixtral NF4 footprint {:.2} GB vs Table I 23.35 GB",
            mx.weights_gb()
        );
        let bm = blackmamba_mem(FineTuneConfig::full_sparse());
        assert!(
            (bm.weights_gb() - 5.6).abs() < 0.1,
            "BlackMamba bf16 footprint {:.2} GB vs Table I 5.6 GB",
            bm.weights_gb()
        );
    }

    /// Paper Table III on the A40: maximum batch sizes for CS (median 79)
    /// and MATH (median 174).
    #[test]
    fn table_iii_mixtral_exact() {
        let a40 = GpuSpec::a40();
        let dense = mixtral_mem(FineTuneConfig::qlora_dense());
        let sparse = mixtral_mem(FineTuneConfig::qlora_sparse());
        assert_eq!(dense.max_batch_size(&a40, 79), 2, "Mixtral-D CS");
        assert_eq!(dense.max_batch_size(&a40, 174), 1, "Mixtral-D MATH");
        assert_eq!(sparse.max_batch_size(&a40, 79), 8, "Mixtral-S CS");
        assert_eq!(sparse.max_batch_size(&a40, 174), 3, "Mixtral-S MATH");
    }

    #[test]
    fn table_iv_mixtral_gsm8k_batch() {
        // Table IV: A40, Mixtral sparse on GS (median 148) → batch 4.
        let sparse = mixtral_mem(FineTuneConfig::qlora_sparse());
        assert_eq!(sparse.max_batch_size(&GpuSpec::a40(), 148), 4);
    }

    #[test]
    fn table_iii_blackmamba() {
        let a40 = GpuSpec::a40();
        let dense = blackmamba_mem(FineTuneConfig::full_dense());
        let sparse = blackmamba_mem(FineTuneConfig::full_sparse());
        assert_eq!(dense.max_batch_size(&a40, 79), 6, "BlackMamba-D CS");
        assert_eq!(dense.max_batch_size(&a40, 174), 2, "BlackMamba-D MATH");
        assert_eq!(sparse.max_batch_size(&a40, 79), 20, "BlackMamba-S CS");
        // Paper measures 8; the analytical model lands one off (9): the CS
        // and MATH sparse cells are not jointly satisfiable by any linear
        // token-capacity model (20·79 > (8+1)·174).
        let math_s = sparse.max_batch_size(&a40, 174);
        assert!((8..=9).contains(&math_s), "BlackMamba-S MATH = {math_s}");
    }

    #[test]
    fn more_memory_never_shrinks_batch() {
        let m = mixtral_mem(FineTuneConfig::qlora_sparse());
        let b48 = m.max_batch_size_for_mem(48.0, 148);
        let b80 = m.max_batch_size_for_mem(80.0, 148);
        let b120 = m.max_batch_size_for_mem(120.0, 148);
        assert!(b48 <= b80 && b80 <= b120);
        assert!(b120 > b48);
    }

    #[test]
    fn sparse_beats_dense_capacity() {
        let d = mixtral_mem(FineTuneConfig::qlora_dense());
        let s = mixtral_mem(FineTuneConfig::qlora_sparse());
        for seq in [64, 128, 256] {
            assert!(
                s.max_batch_size(&GpuSpec::a40(), seq) > d.max_batch_size(&GpuSpec::a40(), seq)
            );
        }
    }

    #[test]
    fn breakdown_components_sum() {
        let m = blackmamba_mem(FineTuneConfig::full_sparse());
        let b = m.breakdown(4, 128);
        let manual = b.weights_gb
            + b.adapters_gb
            + b.gradients_gb
            + b.optimizer_gb
            + b.overhead_gb
            + b.activations_gb;
        assert!((b.total_gb() - manual).abs() < 1e-12);
        assert!(b.static_gb() < b.total_gb());
    }

    #[test]
    fn full_finetune_optimizer_state_dominates_weights() {
        // AdamW fp32 moments are 4× the bf16 weights.
        let m = blackmamba_mem(FineTuneConfig::full_sparse());
        let b = m.breakdown(0, 0);
        assert!(b.optimizer_gb > 3.9 * b.weights_gb);
        assert_eq!(b.adapters_gb, 0.0);
    }

    #[test]
    fn qlora_optimizer_state_is_tiny() {
        let m = mixtral_mem(FineTuneConfig::qlora_sparse());
        let b = m.breakdown(0, 0);
        assert!(b.optimizer_gb < 0.1 * b.weights_gb);
    }

    #[test]
    fn zero_when_model_does_not_fit() {
        let m = mixtral_mem(FineTuneConfig::qlora_sparse());
        assert_eq!(m.max_batch_size_for_mem(10.0, 79), 0);
    }

    #[test]
    fn sparsity_multiplier_matches_eq1_denominator() {
        let c = ActivationCalibration::mixtral();
        assert!((c.sparsity_multiplier(1.0) - 1.0).abs() < 1e-12);
        let s = c.sparsity_multiplier(0.25);
        assert!((s - (0.05 + 0.95 * 0.25)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_batch_monotone_in_memory(mem1 in 24.0f64..200.0, mem2 in 24.0f64..200.0, seq in 16usize..512) {
            let m = mixtral_mem(FineTuneConfig::qlora_sparse());
            let (lo, hi) = if mem1 <= mem2 { (mem1, mem2) } else { (mem2, mem1) };
            prop_assert!(m.max_batch_size_for_mem(lo, seq) <= m.max_batch_size_for_mem(hi, seq));
        }

        #[test]
        fn prop_batch_antimonotone_in_seq(seq1 in 16usize..512, seq2 in 16usize..512) {
            let m = blackmamba_mem(FineTuneConfig::full_sparse());
            let (lo, hi) = if seq1 <= seq2 { (seq1, seq2) } else { (seq2, seq1) };
            prop_assert!(m.max_batch_size_for_mem(48.0, lo) >= m.max_batch_size_for_mem(48.0, hi));
        }

        #[test]
        fn prop_sparser_never_fits_less(k in 1usize..=8, seq in 16usize..512) {
            let model = presets::mixtral_8x7b();
            let mut ft = FineTuneConfig::qlora_sparse();
            ft.sparsity = Sparsity::TopK(k);
            let mk = MemoryModel::new(&model, &ft);
            ft.sparsity = Sparsity::Dense;
            let dense = MemoryModel::new(&model, &ft);
            prop_assert!(mk.max_batch_size_for_mem(48.0, seq) >= dense.max_batch_size_for_mem(48.0, seq));
        }
    }
}
