//! The two models characterized in the paper (Table I).

use crate::config::{ModelConfig, MoeConfig, SequenceMixer};
use ftsim_tensor::nn::ExpertKind;

/// Mixtral-8x7B: 32 decoder layers, hidden 4096, 8 SwiGLU experts of inner
/// dimension 14336 each, grouped-query attention with 32 query / 8 KV heads.
/// ≈ 46.7B parameters — the paper's Table I rounds to 47B.
pub fn mixtral_8x7b() -> ModelConfig {
    ModelConfig {
        name: "Mixtral-8x7B".into(),
        hidden: 4096,
        num_layers: 32,
        vocab: 32000,
        tie_embeddings: false,
        mixer: SequenceMixer::Attention {
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
        },
        moe: MoeConfig {
            num_experts: 8,
            ffn_dim: 14336,
            expert_kind: ExpertKind::SwiGlu,
        },
    }
}

/// BlackMamba-2.8B: 18 decoder layers (Table I), each a Mamba block followed
/// by an MoE of 8 GELU-FFN experts. The hidden/ffn dimensions below are
/// chosen so the totals land on the paper's Table I (2.8B parameters,
/// 5.6 GB in bf16); BlackMamba's exact per-block split is not published in
/// the paper, so this config reproduces the published aggregate shape.
pub fn blackmamba_2p8b() -> ModelConfig {
    ModelConfig {
        name: "BlackMamba-2.8B".into(),
        hidden: 1472,
        num_layers: 18,
        vocab: 50280,
        tie_embeddings: true,
        mixer: SequenceMixer::Mamba {
            expand: 2,
            state_dim: 16,
            conv_width: 4,
            dt_rank: 96, // ceil(hidden / 16)
        },
        moe: MoeConfig {
            num_experts: 8,
            ffn_dim: 5888, // 4 × hidden
            expert_kind: ExpertKind::GeluFfn,
        },
    }
}

/// Both paper models, Mixtral first (Table I order).
pub fn all() -> Vec<ModelConfig> {
    vec![mixtral_8x7b(), blackmamba_2p8b()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixtral_totals_match_table_i() {
        let counts = mixtral_8x7b().param_counts();
        let billions = counts.total() as f64 / 1e9;
        assert!(
            (46.2..47.5).contains(&billions),
            "Mixtral should be ~47B params, got {billions:.2}B"
        );
    }

    #[test]
    fn blackmamba_totals_match_table_i() {
        let counts = blackmamba_2p8b().param_counts();
        let billions = counts.total() as f64 / 1e9;
        assert!(
            (2.7..2.9).contains(&billions),
            "BlackMamba should be ~2.8B params, got {billions:.3}B"
        );
    }

    #[test]
    fn both_models_have_eight_experts() {
        for m in all() {
            assert_eq!(m.moe.num_experts, 8, "{}", m.name);
        }
    }

    #[test]
    fn mixtral_is_an_order_of_magnitude_larger() {
        let mx = mixtral_8x7b().param_counts().total();
        let bm = blackmamba_2p8b().param_counts().total();
        assert!(mx > 10 * bm);
    }
}
