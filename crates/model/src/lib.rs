//! # ftsim-model
//!
//! Architecture descriptions of the LLMs characterized in the paper —
//! Mixtral-8x7B (attention MoE) and BlackMamba-2.8B (state-space MoE) —
//! together with exact parameter counting, fine-tuning strategies
//! (full / LoRA / QLoRA), and the GPU memory model that determines the
//! maximum fine-tuning batch size (paper Table III).
//!
//! ```
//! use ftsim_model::{presets, FineTuneConfig, MemoryModel};
//! use ftsim_gpu::GpuSpec;
//!
//! let mixtral = presets::mixtral_8x7b();
//! // Paper Table I: 47B parameters, 23.35 GB as NF4.
//! assert!((mixtral.param_counts().total() as f64 / 1e9 - 46.7).abs() < 0.5);
//!
//! let ft = FineTuneConfig::qlora_sparse(); // the paper's Mixtral setup
//! let mem = MemoryModel::new(&mixtral, &ft);
//! let max_bs = mem.max_batch_size(&GpuSpec::a40(), 79); // CS dataset
//! assert_eq!(max_bs, 8); // paper Table III, Mixtral-S on CS
//! ```

pub mod config;
pub mod finetune;
pub mod memory;
pub mod params;
pub mod presets;

pub use config::{ModelConfig, MoeConfig, SequenceMixer};
pub use finetune::{FineTuneConfig, FineTuneMethod, Sparsity};
pub use memory::{ActivationCalibration, Dtype, MemoryBreakdown, MemoryModel};
pub use params::ParamCounts;
