//! Model architecture configuration types.

use ftsim_tensor::nn::ExpertKind;
use serde::{Deserialize, Serialize};

/// The sequence-mixing block of a decoder layer: self-attention (Mixtral) or
/// a Mamba selective-state-space block (BlackMamba). See the paper's Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SequenceMixer {
    /// Multi-head attention with grouped-query KV heads.
    Attention {
        /// Number of query heads.
        heads: usize,
        /// Number of key/value heads (GQA).
        kv_heads: usize,
        /// Per-head dimension.
        head_dim: usize,
    },
    /// Mamba selective scan block.
    Mamba {
        /// Inner expansion factor (d_inner = expand × hidden).
        expand: usize,
        /// SSM state dimension N.
        state_dim: usize,
        /// Depthwise conv kernel width.
        conv_width: usize,
        /// Rank of the Δt projection.
        dt_rank: usize,
    },
}

/// Mixture-of-experts sub-layer configuration (the FFN replacement of
/// Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Number of experts per MoE layer (8 for both paper models).
    pub num_experts: usize,
    /// Expert FFN inner dimension.
    pub ffn_dim: usize,
    /// Expert architecture (Fig. 7: SwiGLU for Mixtral, GELU FFN for
    /// BlackMamba).
    pub expert_kind: ExpertKind,
}

/// A full decoder-only MoE LLM architecture.
///
/// Every decoder layer consists of `mixer` (attention or Mamba) followed by
/// an MoE feed-forward sub-layer, with RMS norms around each — the structure
/// shared by Mixtral and BlackMamba in the paper's Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name for reports.
    pub name: String,
    /// Hidden (residual-stream) dimension.
    pub hidden: usize,
    /// Number of decoder layers.
    pub num_layers: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Whether input embedding and LM head share weights.
    pub tie_embeddings: bool,
    /// The sequence mixer of each layer.
    pub mixer: SequenceMixer,
    /// The MoE sub-layer of each layer.
    pub moe: MoeConfig,
}

impl ModelConfig {
    /// Parameter counts broken down by component.
    pub fn param_counts(&self) -> crate::params::ParamCounts {
        crate::params::ParamCounts::of(self)
    }

    /// Dimension of the mixer's output projection input (`heads × head_dim`
    /// for attention, `expand × hidden` for Mamba).
    pub fn mixer_inner_dim(&self) -> usize {
        match self.mixer {
            SequenceMixer::Attention {
                heads, head_dim, ..
            } => heads * head_dim,
            SequenceMixer::Mamba { expand, .. } => expand * self.hidden,
        }
    }

    /// `true` if the mixer is attention-based.
    pub fn is_attention(&self) -> bool {
        matches!(self.mixer, SequenceMixer::Attention { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn mixtral_is_attention_based() {
        let m = presets::mixtral_8x7b();
        assert!(m.is_attention());
        assert_eq!(m.mixer_inner_dim(), 4096);
        assert_eq!(m.moe.num_experts, 8);
        assert_eq!(m.moe.expert_kind, ftsim_tensor::nn::ExpertKind::SwiGlu);
    }

    #[test]
    fn blackmamba_is_state_space() {
        let m = presets::blackmamba_2p8b();
        assert!(!m.is_attention());
        assert_eq!(m.moe.expert_kind, ftsim_tensor::nn::ExpertKind::GeluFfn);
        match m.mixer {
            SequenceMixer::Mamba { expand, .. } => {
                assert_eq!(m.mixer_inner_dim(), expand * m.hidden)
            }
            _ => panic!("expected Mamba mixer"),
        }
    }

    #[test]
    fn configs_serializable_and_comparable() {
        // The vendored offline serde is a marker-trait stub, so a real JSON
        // round-trip is not exercisable in this environment; assert the
        // serde bounds at compile time and keep the equality half.
        fn assert_serde<T: serde::Serialize + serde::Deserialize>() {}
        assert_serde::<ModelConfig>();
        let m = presets::mixtral_8x7b();
        assert_eq!(m, m.clone());
        assert_ne!(m, presets::blackmamba_2p8b());
    }
}
