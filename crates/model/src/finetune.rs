//! Fine-tuning strategies: what is trained, what is quantized, and how many
//! experts are activated.

use crate::config::ModelConfig;
use ftsim_tensor::nn::ExpertKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How many experts each token activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sparsity {
    /// All experts active for every token (paper's *dense* configuration).
    Dense,
    /// Top-k experts per token (the paper's *sparse* configuration is
    /// `TopK(2)` of 8 experts).
    TopK(usize),
}

impl Sparsity {
    /// Experts activated per token for a model with `num_experts` experts.
    pub fn active_experts(&self, num_experts: usize) -> usize {
        match *self {
            Sparsity::Dense => num_experts,
            Sparsity::TopK(k) => k.min(num_experts),
        }
    }

    /// The scalar sparsity ratio `active / total` used by the paper's
    /// Eqs. (1) and (2): 1.0 for dense, 0.25 for top-2 of 8.
    pub fn ratio(&self, num_experts: usize) -> f64 {
        self.active_experts(num_experts) as f64 / num_experts as f64
    }
}

impl fmt::Display for Sparsity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sparsity::Dense => write!(f, "dense"),
            Sparsity::TopK(k) => write!(f, "sparse(top-{k})"),
        }
    }
}

/// Which parameters are trained and how base weights are stored.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FineTuneMethod {
    /// Full fine-tuning: all parameters trainable, bf16 weights — the
    /// paper's BlackMamba setup.
    Full,
    /// LoRA adapters of the given rank on the MoE layers (experts + router),
    /// bf16 base weights.
    Lora {
        /// Adapter rank.
        rank: usize,
    },
    /// QLoRA: LoRA adapters on the MoE layers (experts + router) with NF4
    /// double-quantized base weights — the paper's Mixtral setup, rank 16.
    QLora {
        /// Adapter rank.
        rank: usize,
    },
}

impl FineTuneMethod {
    /// `true` if base weights are stored 4-bit and de-quantized on the fly.
    pub fn is_quantized(&self) -> bool {
        matches!(self, FineTuneMethod::QLora { .. })
    }

    /// LoRA rank, if adapters are used.
    pub fn lora_rank(&self) -> Option<usize> {
        match *self {
            FineTuneMethod::Full => None,
            FineTuneMethod::Lora { rank } | FineTuneMethod::QLora { rank } => Some(rank),
        }
    }
}

/// A complete fine-tuning recipe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// Trainable-parameter strategy.
    pub method: FineTuneMethod,
    /// Expert activation pattern.
    pub sparsity: Sparsity,
    /// Whether activations are recomputed in the backward pass (the paper
    /// enables gradient checkpointing to save memory, at the cost of an
    /// extra forward re-computation — see its Fig. 4 discussion).
    pub gradient_checkpointing: bool,
}

impl FineTuneConfig {
    /// The paper's Mixtral recipe: QLoRA rank 16 on MoE layers (including
    /// routers), sparse top-2 routing, gradient checkpointing on.
    pub fn qlora_sparse() -> Self {
        FineTuneConfig {
            method: FineTuneMethod::QLora { rank: 16 },
            sparsity: Sparsity::TopK(2),
            gradient_checkpointing: true,
        }
    }

    /// The paper's Mixtral dense ablation: QLoRA with all experts active.
    pub fn qlora_dense() -> Self {
        FineTuneConfig {
            sparsity: Sparsity::Dense,
            ..Self::qlora_sparse()
        }
    }

    /// The paper's BlackMamba recipe: full fine-tuning, sparse top-2.
    pub fn full_sparse() -> Self {
        FineTuneConfig {
            method: FineTuneMethod::Full,
            sparsity: Sparsity::TopK(2),
            gradient_checkpointing: true,
        }
    }

    /// The paper's BlackMamba dense ablation.
    pub fn full_dense() -> Self {
        FineTuneConfig {
            sparsity: Sparsity::Dense,
            ..Self::full_sparse()
        }
    }

    /// The canonical recipe the paper uses for `model` (QLoRA for Mixtral,
    /// full fine-tuning for BlackMamba), with the given sparsity.
    pub fn for_model(model: &ModelConfig, sparsity: Sparsity) -> Self {
        let base = if model.is_attention() {
            Self::qlora_sparse()
        } else {
            Self::full_sparse()
        };
        FineTuneConfig { sparsity, ..base }
    }

    /// Number of trainable parameters for `model` under this recipe.
    ///
    /// For (Q)LoRA this counts adapters on every expert matrix and the
    /// router of every layer, matching the paper's "we target the MoE
    /// layers, including the routers" setup.
    pub fn trainable_params(&self, model: &ModelConfig) -> u64 {
        match self.method {
            FineTuneMethod::Full => model.param_counts().total(),
            FineTuneMethod::Lora { rank } | FineTuneMethod::QLora { rank } => {
                let h = model.hidden as u64;
                let f = model.moe.ffn_dim as u64;
                let e = model.moe.num_experts as u64;
                let r = rank as u64;
                let mats = match model.moe.expert_kind {
                    ExpertKind::SwiGlu => 3,
                    ExpertKind::GeluFfn => 2,
                };
                // Each adapted matrix W[h×f] gains A[h×r] + B[r×f].
                let per_expert = mats * r * (h + f);
                let router = r * (h + e);
                (e * per_expert + router) * model.num_layers as u64
            }
        }
    }

    /// Trainable fraction of all parameters, in percent.
    pub fn trainable_pct(&self, model: &ModelConfig) -> f64 {
        100.0 * self.trainable_params(model) as f64 / model.param_counts().total() as f64
    }
}

impl fmt::Display for FineTuneConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let method = match self.method {
            FineTuneMethod::Full => "full".to_string(),
            FineTuneMethod::Lora { rank } => format!("LoRA(r={rank})"),
            FineTuneMethod::QLora { rank } => format!("QLoRA(r={rank})"),
        };
        write!(f, "{method}/{}", self.sparsity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn sparsity_ratios_match_paper() {
        assert_eq!(Sparsity::Dense.ratio(8), 1.0);
        assert_eq!(Sparsity::TopK(2).ratio(8), 0.25);
        assert_eq!(Sparsity::TopK(2).active_experts(8), 2);
        assert_eq!(Sparsity::TopK(12).active_experts(8), 8);
    }

    #[test]
    fn qlora_trainable_params_are_fraction_of_percent() {
        let m = presets::mixtral_8x7b();
        let ft = FineTuneConfig::qlora_sparse();
        let trainable = ft.trainable_params(&m);
        // rank-16 adapters on 8 experts × 3 matrices × 32 layers ≈ 228M.
        assert!(
            (220e6..240e6).contains(&(trainable as f64)),
            "trainable = {trainable}"
        );
        assert!(ft.trainable_pct(&m) < 1.0);
    }

    #[test]
    fn full_finetune_trains_everything() {
        let m = presets::blackmamba_2p8b();
        let ft = FineTuneConfig::full_sparse();
        assert_eq!(ft.trainable_params(&m), m.param_counts().total());
        assert_eq!(ft.trainable_pct(&m), 100.0);
    }

    #[test]
    fn for_model_picks_paper_recipes() {
        let mx = FineTuneConfig::for_model(&presets::mixtral_8x7b(), Sparsity::TopK(2));
        assert!(mx.method.is_quantized());
        assert_eq!(mx.method.lora_rank(), Some(16));
        let bm = FineTuneConfig::for_model(&presets::blackmamba_2p8b(), Sparsity::Dense);
        assert_eq!(bm.method, FineTuneMethod::Full);
        assert_eq!(bm.sparsity, Sparsity::Dense);
    }

    #[test]
    fn sparsity_is_the_only_difference_between_ablations() {
        let s = FineTuneConfig::qlora_sparse();
        let d = FineTuneConfig::qlora_dense();
        assert_eq!(s.method, d.method);
        assert_ne!(s.sparsity, d.sparsity);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            FineTuneConfig::qlora_sparse().to_string(),
            "QLoRA(r=16)/sparse(top-2)"
        );
        assert_eq!(FineTuneConfig::full_dense().to_string(), "full/dense");
    }
}
