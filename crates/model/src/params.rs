//! Exact parameter counting per architectural component.

use crate::config::{ModelConfig, SequenceMixer};
use ftsim_tensor::nn::ExpertKind;
use serde::{Deserialize, Serialize};

/// Parameter counts of a [`ModelConfig`], broken down by component.
///
/// All counts are totals over the whole model (i.e. already multiplied by
/// the number of layers / experts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamCounts {
    /// Input embedding (+ untied LM head).
    pub embedding: u64,
    /// All sequence mixers (attention or Mamba blocks).
    pub mixer: u64,
    /// All MoE routers (gates).
    pub router: u64,
    /// All experts across all MoE layers.
    pub experts: u64,
    /// All RMS norms (two per layer plus the final norm).
    pub norms: u64,
    /// Experts per MoE layer (copied from the config, for
    /// [`ParamCounts::active_total`]).
    num_experts: u64,
}

impl ParamCounts {
    /// Computes the breakdown for `config`.
    pub fn of(config: &ModelConfig) -> Self {
        let h = config.hidden as u64;
        let layers = config.num_layers as u64;
        let vocab = config.vocab as u64;

        let embedding = if config.tie_embeddings {
            vocab * h
        } else {
            2 * vocab * h
        };

        let mixer_per_layer = match config.mixer {
            SequenceMixer::Attention {
                heads,
                kv_heads,
                head_dim,
            } => {
                let q = h * (heads * head_dim) as u64;
                let kv = 2 * h * (kv_heads * head_dim) as u64;
                let o = (heads * head_dim) as u64 * h;
                q + kv + o
            }
            SequenceMixer::Mamba {
                expand,
                state_dim,
                conv_width,
                dt_rank,
            } => {
                let d_inner = (expand * config.hidden) as u64;
                let in_proj = h * 2 * d_inner; // x and gate paths
                let conv = d_inner * conv_width as u64 + d_inner;
                let x_proj = d_inner * (dt_rank as u64 + 2 * state_dim as u64);
                let dt_proj = dt_rank as u64 * d_inner + d_inner;
                let ssm_state = d_inner * state_dim as u64 + d_inner; // A_log + D
                let out_proj = d_inner * h;
                in_proj + conv + x_proj + dt_proj + ssm_state + out_proj
            }
        };

        let router_per_layer = h * config.moe.num_experts as u64;
        let expert_mats = match config.moe.expert_kind {
            ExpertKind::SwiGlu => 3,
            ExpertKind::GeluFfn => 2,
        };
        let experts_per_layer =
            config.moe.num_experts as u64 * expert_mats * h * config.moe.ffn_dim as u64;
        let norms = (2 * layers + 1) * h;

        ParamCounts {
            embedding,
            mixer: mixer_per_layer * layers,
            router: router_per_layer * layers,
            experts: experts_per_layer * layers,
            norms,
            num_experts: config.moe.num_experts as u64,
        }
    }

    /// Total parameters.
    pub fn total(&self) -> u64 {
        self.embedding + self.mixer + self.router + self.experts + self.norms
    }

    /// Parameters touched by a forward pass when only `top_k` of the experts
    /// are activated per token (the paper's *sparse* configuration).
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero or exceeds the expert count.
    pub fn active_total(&self, top_k: usize) -> u64 {
        assert!(
            top_k >= 1 && top_k as u64 <= self.num_experts,
            "top_k {top_k} out of range 1..={}",
            self.num_experts
        );
        self.embedding
            + self.mixer
            + self.router
            + self.norms
            + self.experts * top_k as u64 / self.num_experts
    }

    /// Expert parameters per single expert of one layer × all layers... i.e.
    /// the expert pool share of total parameters, in percent.
    pub fn expert_share_pct(&self) -> f64 {
        100.0 * self.experts as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn mixtral_expert_pool_dominates() {
        let c = presets::mixtral_8x7b().param_counts();
        // Experts are 8×3×4096×14336×32 ≈ 45.1B of ~46.7B total.
        assert!(c.expert_share_pct() > 90.0);
        assert_eq!(c.experts, 8 * 3 * 4096 * 14336 * 32);
    }

    #[test]
    fn mixtral_active_params_match_published_13b() {
        // Mixtral's top-2 active parameter count is publicly ~12.9B.
        let c = presets::mixtral_8x7b().param_counts();
        let active = c.active_total(2) as f64 / 1e9;
        assert!(
            (12.0..13.5).contains(&active),
            "active params {active:.2}B out of expected range"
        );
    }

    #[test]
    fn active_equals_total_when_dense() {
        for m in presets::all() {
            let c = m.param_counts();
            assert_eq!(c.active_total(m.moe.num_experts), c.total());
        }
    }

    #[test]
    fn active_monotone_in_top_k() {
        let c = presets::blackmamba_2p8b().param_counts();
        let mut prev = 0;
        for k in 1..=8 {
            let a = c.active_total(k);
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn active_total_rejects_zero() {
        presets::mixtral_8x7b().param_counts().active_total(0);
    }

    #[test]
    fn untied_embeddings_double() {
        let mut m = presets::mixtral_8x7b();
        let untied = m.param_counts().embedding;
        m.tie_embeddings = true;
        assert_eq!(m.param_counts().embedding * 2, untied);
    }

    #[test]
    fn router_is_tiny() {
        let c = presets::mixtral_8x7b().param_counts();
        assert!(c.router < c.total() / 10_000);
    }
}
