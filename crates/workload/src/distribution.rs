//! Sequence-length distributions (paper Fig. 2).
//!
//! Instruction-tuning sequence lengths are heavy-tailed; we model them as
//! log-normal, parameterized directly by the dataset's published median
//! (the log-normal median is `exp(μ)`, so `μ = ln(median)`).

use crate::dataset::DatasetSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A log-normal sequence-length distribution clamped to `[1, max_len]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeqLenDistribution {
    /// Location parameter μ (log of the median).
    pub mu: f64,
    /// Scale parameter σ of the underlying normal.
    pub sigma: f64,
    /// Hard clamp for outliers (tokenizer/context limits).
    pub max_len: usize,
}

impl SeqLenDistribution {
    /// Distribution with the given median and log-scale σ.
    ///
    /// # Panics
    ///
    /// Panics if `median` is zero or `sigma` is negative.
    pub fn with_median(median: usize, sigma: f64) -> Self {
        assert!(median >= 1, "median must be at least 1 token");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        SeqLenDistribution {
            mu: (median as f64).ln(),
            sigma,
            max_len: 2048,
        }
    }

    /// The distribution used for `dataset`, with σ = 0.5 — a spread chosen to
    /// visually match the paper's Fig. 2 histograms (most CS queries between
    /// 40 and 200 tokens, most MATH queries between 80 and 450).
    pub fn for_dataset(dataset: &DatasetSpec) -> Self {
        Self::with_median(dataset.median_seq_len, 0.5)
    }

    /// The distribution's median in tokens.
    pub fn median(&self) -> usize {
        self.mu.exp().round() as usize
    }

    /// Draws one sequence length.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        // Box–Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let len = (self.mu + self.sigma * z).exp();
        (len.round() as usize).clamp(1, self.max_len)
    }

    /// Draws `n` sequence lengths.
    pub fn sample_many(&self, n: usize, rng: &mut impl Rng) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Histogram of `samples` with `bins` equal-width bins over
    /// `[0, max_observed]`, as `(bin_upper_edge, count)` pairs — the Fig. 2
    /// rendering.
    pub fn histogram(samples: &[usize], bins: usize) -> Vec<(usize, usize)> {
        assert!(bins > 0, "bins must be positive");
        let max = samples.iter().copied().max().unwrap_or(0).max(1);
        let width = max.div_ceil(bins);
        let mut counts = vec![0usize; bins];
        for &s in samples {
            let b = ((s.saturating_sub(1)) / width).min(bins - 1);
            counts[b] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| ((i + 1) * width, c))
            .collect()
    }

    /// The `p`-th percentile (0–100) of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `p` is outside 0–100.
    pub fn percentile(samples: &[usize], p: f64) -> usize {
        assert!(!samples.is_empty(), "percentile of empty sample set");
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::presets;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn median_parameterization_roundtrips() {
        for m in [79, 148, 174, 272] {
            assert_eq!(SeqLenDistribution::with_median(m, 0.5).median(), m);
        }
    }

    #[test]
    fn sampled_median_is_close_to_nominal() {
        let mut rng = StdRng::seed_from_u64(1);
        for ds in presets::table_ii() {
            let dist = SeqLenDistribution::for_dataset(&ds);
            let samples = dist.sample_many(20_000, &mut rng);
            let med = SeqLenDistribution::percentile(&samples, 50.0);
            let nominal = ds.median_seq_len as f64;
            assert!(
                (med as f64 - nominal).abs() < nominal * 0.06,
                "{}: sampled median {med} vs nominal {nominal}",
                ds.code
            );
        }
    }

    #[test]
    fn math_sequences_are_longer_than_cs() {
        // Fig. 2's headline: MATH median (174) > CS median (79).
        let mut rng = StdRng::seed_from_u64(2);
        let cs = SeqLenDistribution::for_dataset(&presets::commonsense_15k());
        let math = SeqLenDistribution::for_dataset(&presets::math_14k());
        let cs_mean: f64 = cs.sample_many(5000, &mut rng).iter().sum::<usize>() as f64 / 5000.0;
        let math_mean: f64 = math.sample_many(5000, &mut rng).iter().sum::<usize>() as f64 / 5000.0;
        assert!(math_mean > 1.5 * cs_mean);
    }

    #[test]
    fn distribution_is_right_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = SeqLenDistribution::with_median(100, 0.5);
        let samples = dist.sample_many(20_000, &mut rng);
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        let med = SeqLenDistribution::percentile(&samples, 50.0) as f64;
        assert!(
            mean > med,
            "log-normal mean {mean} should exceed median {med}"
        );
    }

    #[test]
    fn histogram_counts_everything() {
        let samples = vec![5, 10, 15, 20, 100];
        let hist = SeqLenDistribution::histogram(&samples, 4);
        assert_eq!(hist.len(), 4);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, samples.len());
        // Edges are increasing.
        for w in hist.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let dist = SeqLenDistribution::with_median(79, 0.5);
        let a = dist.sample_many(100, &mut StdRng::seed_from_u64(9));
        let b = dist.sample_many(100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "percentile of empty")]
    fn percentile_rejects_empty() {
        SeqLenDistribution::percentile(&[], 50.0);
    }

    proptest! {
        #[test]
        fn prop_samples_within_bounds(median in 10usize..500, seed in 0u64..200) {
            let dist = SeqLenDistribution::with_median(median, 0.6);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                let s = dist.sample(&mut rng);
                prop_assert!(s >= 1 && s <= dist.max_len);
            }
        }

        #[test]
        fn prop_percentiles_monotone(seed in 0u64..200) {
            let dist = SeqLenDistribution::with_median(120, 0.5);
            let mut rng = StdRng::seed_from_u64(seed);
            let samples = dist.sample_many(500, &mut rng);
            let p25 = SeqLenDistribution::percentile(&samples, 25.0);
            let p50 = SeqLenDistribution::percentile(&samples, 50.0);
            let p95 = SeqLenDistribution::percentile(&samples, 95.0);
            prop_assert!(p25 <= p50 && p50 <= p95);
        }
    }
}
