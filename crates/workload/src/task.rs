//! Synthetic learnable tasks for the real MoE training experiments.
//!
//! The paper fine-tunes on commonsense (easy) and math (hard) reasoning and
//! observes that math converges slower and to lower accuracy (§IV-A). At
//! CPU scale we reproduce that *relative* structure with two families of
//! classification problems:
//!
//! * **commonsense-like**: well-separated Gaussian clusters — mostly
//!   linearly separable, learned in a few epochs;
//! * **math-like**: a compositional rule (a product of sign features picks
//!   the class) — requires genuinely non-linear feature learning and
//!   converges slower, mirroring "math is harder for smaller LLMs to learn".

use ftsim_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A generated dataset: features `[n, dim]` and integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSample {
    /// Feature matrix, one row per example.
    pub features: Tensor,
    /// Class label per row.
    pub labels: Vec<usize>,
}

impl TaskSample {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the sample holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Task family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Family {
    Clusters,
    Compositional,
}

/// A synthetic, seeded, learnable classification task.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTask {
    /// Human-readable name.
    pub name: String,
    family: Family,
    dim: usize,
    classes: usize,
    seed: u64,
    /// Class centers (Clusters) or projection directions (Compositional).
    anchors: Vec<Vec<f32>>,
    noise: f32,
}

impl SyntheticTask {
    /// The commonsense-like (easy) task: `classes` Gaussian clusters in
    /// `dim` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `classes` is zero.
    pub fn commonsense(dim: usize, classes: usize, seed: u64) -> Self {
        Self::with_family(Family::Clusters, "commonsense-like", dim, classes, seed)
    }

    /// The math-like (hard) task: the class is a compositional function of
    /// sign features along random directions.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `classes` is zero.
    pub fn math(dim: usize, classes: usize, seed: u64) -> Self {
        Self::with_family(Family::Compositional, "math-like", dim, classes, seed)
    }

    fn with_family(family: Family, name: &str, dim: usize, classes: usize, seed: u64) -> Self {
        assert!(dim >= 1 && classes >= 2, "need dim ≥ 1 and classes ≥ 2");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_7a5c);
        let n_anchors = match family {
            Family::Clusters => classes,
            // Each class bit is the XOR of the signs along a *pair* of
            // directions, so no single linear view (and no centroid)
            // separates the classes.
            Family::Compositional => {
                2 * classes.next_power_of_two().trailing_zeros().max(1) as usize
            }
        };
        let anchors = (0..n_anchors)
            .map(|_| {
                let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                v.into_iter().map(|x| x / norm).collect()
            })
            .collect();
        SyntheticTask {
            name: name.into(),
            family,
            dim,
            classes,
            seed,
            anchors,
            noise: match family {
                Family::Clusters => 0.55,
                Family::Compositional => 0.25,
            },
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Draws `n` labeled examples.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> TaskSample {
        let mut data = Vec::with_capacity(n * self.dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            match self.family {
                Family::Clusters => {
                    let class = rng.gen_range(0..self.classes);
                    let center = &self.anchors[class];
                    for &c in center {
                        data.push(2.0 * c + self.noise * gauss(rng));
                    }
                    labels.push(class);
                }
                Family::Compositional => {
                    let x: Vec<f32> = (0..self.dim)
                        .map(|_| gauss(rng) + self.noise * gauss(rng))
                        .collect();
                    // Class = binary number whose bit b is the XOR of the
                    // sign features along directions 2b and 2b+1, folded
                    // onto the class count.
                    let mut class = 0usize;
                    for (b, pair) in self.anchors.chunks(2).enumerate() {
                        let mut bit = false;
                        for dir in pair {
                            let dot: f32 = dir.iter().zip(&x).map(|(d, xi)| d * xi).sum();
                            bit ^= dot > 0.0;
                        }
                        if bit {
                            class |= 1 << b;
                        }
                    }
                    data.extend_from_slice(&x);
                    labels.push(class % self.classes);
                }
            }
        }
        TaskSample {
            features: Tensor::new([n, self.dim], data).expect("dims consistent"),
            labels,
        }
    }

    /// A fixed evaluation split (same task, deterministic draw independent
    /// of the caller's RNG).
    pub fn eval_split(&self, n: usize) -> TaskSample {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xe_a100_0000);
        self.sample(n, &mut rng)
    }
}

fn gauss(rng: &mut impl Rng) -> f32 {
    let s: f32 = (0..12).map(|_| rng.gen_range(0.0..1.0f32)).sum();
    s - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_tensor::ops;

    #[test]
    fn samples_have_declared_shapes() {
        let t = SyntheticTask::commonsense(8, 4, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let s = t.sample(32, &mut rng);
        assert_eq!(s.features.shape().dims(), &[32, 8]);
        assert_eq!(s.len(), 32);
        assert!(s.labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn eval_split_is_deterministic() {
        let t = SyntheticTask::math(8, 4, 7);
        assert_eq!(t.eval_split(64), t.eval_split(64));
    }

    #[test]
    fn different_seeds_give_different_tasks() {
        let a = SyntheticTask::commonsense(8, 4, 1).eval_split(16);
        let b = SyntheticTask::commonsense(8, 4, 2).eval_split(16);
        assert_ne!(a, b);
    }

    #[test]
    fn clusters_are_nearest_center_separable() {
        // A nearest-center classifier should do well on the easy task —
        // that's what makes it "commonsense-like".
        let t = SyntheticTask::commonsense(16, 4, 3);
        let s = t.eval_split(400);
        let mut correct = 0;
        for (i, &label) in s.labels.iter().enumerate() {
            let row = s.features.row(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, center) in t.anchors.iter().enumerate() {
                let d: f32 = row
                    .iter()
                    .zip(center)
                    .map(|(x, c)| (x - 2.0 * c).powi(2))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / s.len() as f64;
        assert!(acc > 0.85, "nearest-center accuracy only {acc}");
    }

    #[test]
    fn math_task_defeats_linear_centroids() {
        // The compositional task should NOT be solvable by class centroids:
        // XOR-like structure makes centroids overlap.
        let t = SyntheticTask::math(16, 4, 3);
        let train = t.eval_split(800);
        // Build class centroids.
        let mut centroids = vec![vec![0.0f32; t.dim()]; t.classes()];
        let mut counts = vec![0usize; t.classes()];
        for (i, &l) in train.labels.iter().enumerate() {
            counts[l] += 1;
            for (j, &v) in train.features.row(i).iter().enumerate() {
                centroids[l][j] += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= (*n).max(1) as f32;
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let test = t.sample(400, &mut rng);
        let mut correct = 0;
        for (i, &label) in test.labels.iter().enumerate() {
            let row = test.features.row(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d: f32 = row.iter().zip(centroid).map(|(x, c)| (x - c).powi(2)).sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(
            acc < 0.6,
            "centroid classifier should struggle on math-like task, got {acc}"
        );
    }

    #[test]
    fn labels_roughly_balanced() {
        let t = SyntheticTask::commonsense(8, 4, 11);
        let s = t.eval_split(2000);
        let mut counts = vec![0usize; 4];
        for &l in &s.labels {
            counts[l] += 1;
        }
        for &c in &counts {
            assert!(c > 2000 / 4 / 2, "class too rare: {counts:?}");
        }
    }

    #[test]
    fn variance_helper_available_for_imbalance_metrics() {
        // Sanity link with ops::variance used by Fig. 11 metrics downstream.
        assert_eq!(ops::variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "need dim")]
    fn rejects_one_class() {
        SyntheticTask::commonsense(4, 1, 0);
    }
}
