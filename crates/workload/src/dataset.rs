//! Dataset specifications (paper Table II).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The reasoning domain of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskDomain {
    /// Commonsense reasoning (CS, Hellaswag).
    CommonSense,
    /// Arithmetic reasoning (MATH, GSM8K) — harder for small LLMs
    /// (paper §IV-A observation 4).
    Math,
}

impl fmt::Display for TaskDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TaskDomain::CommonSense => "Common Sense",
            TaskDomain::Math => "Math",
        })
    }
}

/// A fine-tuning or evaluation dataset: a set of queries, where each query is
/// "the concatenation of a prompt and its ground-truth answer" (paper §III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name, e.g. `"Commonsense_15K"`.
    pub name: String,
    /// Short code used in the paper's figures (CS, MATH, HE, GS).
    pub code: String,
    /// Number of queries.
    pub num_queries: usize,
    /// Median sequence length in tokens (paper Table II "m. seq len").
    pub median_seq_len: usize,
    /// Reasoning domain.
    pub domain: TaskDomain,
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {} queries, median {} tokens, {}",
            self.name, self.code, self.num_queries, self.median_seq_len, self.domain
        )
    }
}

/// The four datasets of the paper's Table II.
pub mod presets {
    use super::{DatasetSpec, TaskDomain};

    /// Commonsense_15K — fine-tuning set for commonsense reasoning.
    pub fn commonsense_15k() -> DatasetSpec {
        DatasetSpec {
            name: "Commonsense_15K".into(),
            code: "CS".into(),
            num_queries: 15_000,
            median_seq_len: 79,
            domain: TaskDomain::CommonSense,
        }
    }

    /// Math_14K — fine-tuning set for arithmetic reasoning.
    pub fn math_14k() -> DatasetSpec {
        DatasetSpec {
            name: "Math_14K".into(),
            code: "MATH".into(),
            num_queries: 14_000,
            median_seq_len: 174,
            domain: TaskDomain::Math,
        }
    }

    /// Hellaswag — commonsense evaluation set.
    pub fn hellaswag() -> DatasetSpec {
        DatasetSpec {
            name: "Hellaswag".into(),
            code: "HE".into(),
            num_queries: 10_000,
            median_seq_len: 272,
            domain: TaskDomain::CommonSense,
        }
    }

    /// GSM8K — arithmetic evaluation set.
    pub fn gsm8k() -> DatasetSpec {
        DatasetSpec {
            name: "GSM8K".into(),
            code: "GS".into(),
            num_queries: 1_300,
            median_seq_len: 148,
            domain: TaskDomain::Math,
        }
    }

    /// OpenOrca — the 2M-query enterprise-scale dataset used for the paper's
    /// §V-C cost projection (sequence statistics approximated by MATH's).
    pub fn openorca() -> DatasetSpec {
        DatasetSpec {
            name: "OpenOrca".into(),
            code: "OO".into(),
            num_queries: 2_000_000,
            median_seq_len: 174,
            domain: TaskDomain::CommonSense,
        }
    }

    /// The Table II datasets in the paper's row order.
    pub fn table_ii() -> Vec<DatasetSpec> {
        vec![commonsense_15k(), math_14k(), hellaswag(), gsm8k()]
    }

    /// The two fine-tuning datasets (CS, MATH).
    pub fn finetune_sets() -> Vec<DatasetSpec> {
        vec![commonsense_15k(), math_14k()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let t = presets::table_ii();
        assert_eq!(t.len(), 4);
        let cs = &t[0];
        assert_eq!((cs.num_queries, cs.median_seq_len), (15_000, 79));
        let math = &t[1];
        assert_eq!((math.num_queries, math.median_seq_len), (14_000, 174));
        let he = &t[2];
        assert_eq!((he.num_queries, he.median_seq_len), (10_000, 272));
        let gs = &t[3];
        assert_eq!((gs.num_queries, gs.median_seq_len), (1_300, 148));
    }

    #[test]
    fn domains_match_paper() {
        assert_eq!(presets::commonsense_15k().domain, TaskDomain::CommonSense);
        assert_eq!(presets::math_14k().domain, TaskDomain::Math);
        assert_eq!(presets::gsm8k().domain, TaskDomain::Math);
    }

    #[test]
    fn codes_are_unique() {
        let codes: std::collections::HashSet<String> =
            presets::table_ii().into_iter().map(|d| d.code).collect();
        assert_eq!(codes.len(), 4);
    }

    #[test]
    fn openorca_is_enterprise_scale() {
        assert_eq!(presets::openorca().num_queries, 2_000_000);
    }
}
