//! Batch assembly with right-padding, as done by the paper's LLaMA-Factory
//! training loop.

use crate::distribution::SeqLenDistribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One training batch: the sampled sequence lengths, padded to the longest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Unpadded query lengths.
    pub seq_lens: Vec<usize>,
}

impl Batch {
    /// Creates a batch from raw lengths.
    ///
    /// # Panics
    ///
    /// Panics if `seq_lens` is empty.
    pub fn new(seq_lens: Vec<usize>) -> Self {
        assert!(!seq_lens.is_empty(), "a batch needs at least one query");
        Batch { seq_lens }
    }

    /// Number of queries.
    pub fn size(&self) -> usize {
        self.seq_lens.len()
    }

    /// Padded sequence length (the longest query).
    pub fn padded_len(&self) -> usize {
        *self.seq_lens.iter().max().expect("non-empty")
    }

    /// Total tokens actually carrying data.
    pub fn real_tokens(&self) -> usize {
        self.seq_lens.iter().sum()
    }

    /// Total tokens after padding (`size × padded_len`) — what the GPU
    /// actually computes on.
    pub fn padded_tokens(&self) -> usize {
        self.size() * self.padded_len()
    }

    /// Fraction of computed tokens that carry data, in `(0, 1]`.
    pub fn padding_efficiency(&self) -> f64 {
        self.real_tokens() as f64 / self.padded_tokens() as f64
    }
}

/// Assembles batches of a fixed size from a sequence-length distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPlanner {
    /// Queries per batch.
    pub batch_size: usize,
    /// Length distribution queries are drawn from.
    pub dist: SeqLenDistribution,
}

impl BatchPlanner {
    /// Planner producing `batch_size`-query batches from `dist`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: usize, dist: SeqLenDistribution) -> Self {
        assert!(batch_size >= 1, "batch_size must be at least 1");
        BatchPlanner { batch_size, dist }
    }

    /// Draws the next batch.
    pub fn next_batch(&self, rng: &mut impl Rng) -> Batch {
        Batch::new(self.dist.sample_many(self.batch_size, rng))
    }

    /// Draws enough batches to cover `num_queries` queries (the final batch
    /// may be short).
    pub fn plan_epoch(&self, num_queries: usize, rng: &mut impl Rng) -> Vec<Batch> {
        let mut batches = Vec::new();
        let mut remaining = num_queries;
        while remaining > 0 {
            let take = remaining.min(self.batch_size);
            batches.push(Batch::new(self.dist.sample_many(take, rng)));
            remaining -= take;
        }
        batches
    }

    /// Mean padded sequence length over `n` sampled batches — the effective
    /// sequence length the memory and runtime models should see for this
    /// batch size (padding rounds every batch up to its longest member).
    pub fn expected_padded_len(&self, n: usize, rng: &mut impl Rng) -> f64 {
        assert!(n > 0, "need at least one batch to estimate");
        (0..n)
            .map(|_| self.next_batch(rng).padded_len())
            .sum::<usize>() as f64
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batch_stats() {
        let b = Batch::new(vec![10, 20, 15]);
        assert_eq!(b.size(), 3);
        assert_eq!(b.padded_len(), 20);
        assert_eq!(b.real_tokens(), 45);
        assert_eq!(b.padded_tokens(), 60);
        assert!((b.padding_efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_batch_rejected() {
        Batch::new(vec![]);
    }

    #[test]
    fn epoch_covers_all_queries() {
        let dist = SeqLenDistribution::with_median(79, 0.5);
        let planner = BatchPlanner::new(8, dist);
        let mut rng = StdRng::seed_from_u64(1);
        let batches = planner.plan_epoch(100, &mut rng);
        assert_eq!(batches.iter().map(Batch::size).sum::<usize>(), 100);
        assert_eq!(batches.len(), 13); // 12 × 8 + 1 × 4
        assert_eq!(batches.last().unwrap().size(), 4);
    }

    #[test]
    fn bigger_batches_pad_longer() {
        // Expected max of n log-normal draws grows with n.
        let dist = SeqLenDistribution::with_median(79, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let small = BatchPlanner::new(2, dist).expected_padded_len(200, &mut rng);
        let large = BatchPlanner::new(16, dist).expected_padded_len(200, &mut rng);
        assert!(large > small, "{large} vs {small}");
    }

    proptest! {
        #[test]
        fn prop_padding_efficiency_unit_interval(lens in proptest::collection::vec(1usize..500, 1..20)) {
            let b = Batch::new(lens);
            let eff = b.padding_efficiency();
            prop_assert!(eff > 0.0 && eff <= 1.0);
        }

        #[test]
        fn prop_single_query_batches_never_pad(len in 1usize..500) {
            let b = Batch::new(vec![len]);
            prop_assert_eq!(b.padding_efficiency(), 1.0);
        }
    }
}
