//! # ftsim-workload
//!
//! Fine-tuning workloads: the four datasets of the paper's Table II with
//! their sequence-length distributions (Fig. 2), batch assembly, and the
//! synthetic learnable tasks that drive the real (CPU-scale) MoE training
//! experiments standing in for the paper's accuracy study (Fig. 3).
//!
//! ```
//! use ftsim_workload::{presets, SeqLenDistribution};
//! use rand::SeedableRng;
//!
//! let cs = presets::commonsense_15k();
//! assert_eq!(cs.median_seq_len, 79); // paper Table II
//!
//! let dist = SeqLenDistribution::for_dataset(&cs);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let lens = dist.sample_many(1000, &mut rng);
//! assert!(lens.iter().all(|&l| l >= 1));
//! ```

pub mod batching;
pub mod dataset;
pub mod distribution;
pub mod task;

pub use batching::{Batch, BatchPlanner};
pub use dataset::{presets, DatasetSpec, TaskDomain};
pub use distribution::SeqLenDistribution;
pub use task::{SyntheticTask, TaskSample};
