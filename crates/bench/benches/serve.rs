//! Benchmarks the planner-as-a-service hot path, layer by layer: request
//! parsing + canonicalization, the scenario-cache hit, and the full
//! parse → hash → cache lookup a warm `repro serve` does per request
//! (everything except the socket). The cache-hit numbers bound the
//! steady-state throughput `repro loadgen` measures end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use ftsim_serve::{Planner, ScenarioCache, ScenarioSpec};
use std::hint::black_box;

const REQUEST: &str = r#"{"query":"estimate","model":"mixtral-8x7b","recipe":"qlora-sparse","gpu":"A40","dataset":"commonsense_15k","epochs":10,"gpus":2}"#;

fn parse_and_canonicalize(c: &mut Criterion) {
    c.bench_function("serve/parse_and_canonicalize", |b| {
        b.iter(|| {
            let spec = ScenarioSpec::parse_str(black_box(REQUEST)).expect("valid");
            black_box((spec.canonical_key(), spec.hash()))
        })
    });
}

fn cache_hit(c: &mut Criterion) {
    let spec = ScenarioSpec::parse_str(REQUEST).expect("valid");
    let planner = Planner::new();
    let cache = ScenarioCache::new(4096, 16);
    let key = spec.canonical_key();
    let hash = spec.hash();
    cache.get_or_compute(&key, hash, || planner.answer(&spec));
    c.bench_function("serve/cache_hit", |b| {
        b.iter(|| black_box(cache.get_or_compute(black_box(&key), hash, || unreachable!())))
    });
}

fn warm_request_path(c: &mut Criterion) {
    let planner = Planner::new();
    let cache = ScenarioCache::new(4096, 16);
    // Warm every entry the bench loop will touch.
    let requests: Vec<String> = ["A40", "A100-40GB", "A100-80GB", "H100-80GB"]
        .iter()
        .map(|gpu| REQUEST.replace("A40", gpu))
        .collect();
    for line in &requests {
        let spec = ScenarioSpec::parse_str(line).expect("valid");
        cache.get_or_compute(&spec.canonical_key(), spec.hash(), || planner.answer(&spec));
    }
    c.bench_function("serve/warm_request_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let line = &requests[i % requests.len()];
            i += 1;
            let spec = ScenarioSpec::parse_str(black_box(line)).expect("valid");
            black_box(
                cache.get_or_compute(&spec.canonical_key(), spec.hash(), || planner.answer(&spec)),
            )
        })
    });
}

fn cold_answer(c: &mut Criterion) {
    let planner = Planner::new();
    let spec = ScenarioSpec::parse_str(REQUEST).expect("valid");
    // Pool the simulator once; the bench measures the per-answer cost a
    // cache miss pays after warm-up, not first-touch trace building.
    black_box(planner.answer(&spec));
    c.bench_function("serve/uncached_estimate", |b| {
        b.iter(|| black_box(planner.answer(black_box(&spec))))
    });
}

criterion_group!(
    benches,
    parse_and_canonicalize,
    cache_hit,
    warm_request_path,
    cold_answer
);
criterion_main!(benches);
