//! Benches regenerating the paper's tables: parameter/memory accounting
//! (Table I), max-batch search (Table III), and cost estimation (Table IV).

use criterion::{criterion_group, criterion_main, Criterion};
use ftsim_cost::{CostTable, FineTuneJob, ThroughputModel};
use ftsim_gpu::{CloudProvider, GpuSpec, PriceTable};
use ftsim_model::{presets, FineTuneConfig, MemoryModel};
use ftsim_workload::presets as data;
use std::hint::black_box;

fn table1_model_accounting(c: &mut Criterion) {
    // Print the table once.
    for m in presets::all() {
        let ft = FineTuneConfig::for_model(&m, ftsim_model::Sparsity::TopK(2));
        let mem = MemoryModel::new(&m, &ft);
        eprintln!(
            "[table1] {}: {:.1}B params, {:.2} GB, {} layers",
            m.name,
            m.param_counts().total() as f64 / 1e9,
            mem.weights_gb(),
            m.num_layers
        );
    }
    c.bench_function("table1/param_counts_and_memory", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for m in presets::all() {
                let ft = FineTuneConfig::for_model(&m, ftsim_model::Sparsity::TopK(2));
                let mem = MemoryModel::new(&m, &ft);
                total += m.param_counts().total();
                black_box(mem.weights_gb());
            }
            black_box(total)
        })
    });
}

fn table3_max_batch(c: &mut Criterion) {
    let gpu = GpuSpec::a40();
    let combos = [
        (presets::mixtral_8x7b(), FineTuneConfig::qlora_dense()),
        (presets::mixtral_8x7b(), FineTuneConfig::qlora_sparse()),
        (presets::blackmamba_2p8b(), FineTuneConfig::full_dense()),
        (presets::blackmamba_2p8b(), FineTuneConfig::full_sparse()),
    ];
    for (m, ft) in &combos {
        let mem = MemoryModel::new(m, ft);
        eprintln!(
            "[table3] {} {}: CS {}  MATH {}",
            m.name,
            ft,
            mem.max_batch_size(&gpu, 79),
            mem.max_batch_size(&gpu, 174)
        );
    }
    c.bench_function("table3/max_batch_grid", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (m, ft) in &combos {
                let mem = MemoryModel::new(m, ft);
                for seq in [79usize, 174] {
                    acc += mem.max_batch_size(&gpu, seq);
                }
            }
            black_box(acc)
        })
    });
}

fn table4_cost(c: &mut Criterion) {
    let model = presets::mixtral_8x7b();
    let mem = MemoryModel::new(&model, &FineTuneConfig::qlora_sparse());
    let combos = vec![
        (
            GpuSpec::a40(),
            ThroughputModel {
                c2: 0.35,
                c3: 1.0,
                c4: 0.05,
            },
        ),
        (
            GpuSpec::a100_80(),
            ThroughputModel {
                c2: 0.70,
                c3: 1.0,
                c4: 0.30,
            },
        ),
        (
            GpuSpec::h100_80(),
            ThroughputModel {
                c2: 1.30,
                c3: 1.0,
                c4: 0.50,
            },
        ),
    ];
    let prices = PriceTable::for_provider(CloudProvider::Cudo);
    let job = FineTuneJob::ten_epochs(&data::math_14k());
    let table = CostTable::build(&combos, &mem, 0.25, 148, job, &prices);
    eprintln!("[table4]\n{table}");
    c.bench_function("table4/cost_table", |b| {
        b.iter(|| black_box(CostTable::build(&combos, &mem, 0.25, 148, job, &prices)))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(20);
    targets = table1_model_accounting, table3_max_batch, table4_cost
}
criterion_main!(tables);
