//! Benchmarks the tensor runtime: the three matmul kernels (naive oracle,
//! cache-blocked, register-tiled microkernel), the microkernel with its
//! SIMD dispatch forced to each side, composed naive ops with
//! buffer pooling disabled vs. the fused matmul+bias+activation and softmax
//! kernels backed by the thread-local pool, the streaming fused backward
//! epilogue vs. the composed backward chain, plus one full MoE training
//! step on both paths.

use criterion::{criterion_group, criterion_main, Criterion};
use ftsim_tensor::nn::{AdamW, ExpertKind, Linear, MoeLayer};
use ftsim_tensor::{autograd, ops, parallel, pool, Activation, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const M: usize = 256;
const K: usize = 64;
const N: usize = 256;

/// Serial apples-to-apples comparison of the three kernels on identical
/// buffers: the naive i-j-p oracle, the previous cache-blocked kernel, and
/// the register-tiled microkernel now behind `Tensor::matmul`.
fn matmul_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let lhs = Tensor::rand_normal([M, K], 1.0, &mut rng);
    let rhs = Tensor::rand_normal([K, N], 0.5, &mut rng);
    let mut out = vec![0.0f32; M * N];
    c.bench_function("tensor/matmul_naive", |bch| {
        bch.iter(|| {
            parallel::matmul_naive_into(lhs.data(), rhs.data(), &mut out, M, K, N);
            black_box(out[0])
        })
    });
    c.bench_function("tensor/matmul_blocked", |bch| {
        bch.iter(|| {
            parallel::matmul_blocked_into(lhs.data(), rhs.data(), &mut out, M, K, N);
            black_box(out[0])
        })
    });
    c.bench_function("tensor/matmul_microkernel", |bch| {
        bch.iter(|| {
            parallel::matmul_microkernel_into(lhs.data(), rhs.data(), &mut out, M, K, N);
            black_box(out[0])
        })
    });
}

/// The microkernel with its dispatch pinned to each side: forced scalar vs.
/// forced AVX2 (which downgrades to scalar on hosts without AVX2, making
/// the pair read ~1.0x there). Both sides produce bit-identical outputs.
fn matmul_simd_dispatch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let lhs = Tensor::rand_normal([M, K], 1.0, &mut rng);
    let rhs = Tensor::rand_normal([K, N], 0.5, &mut rng);
    let mut out = vec![0.0f32; M * N];
    ftsim_tensor::simd::force(Some(false));
    c.bench_function("tensor/matmul_microkernel_scalar", |bch| {
        bch.iter(|| {
            parallel::matmul_microkernel_into(lhs.data(), rhs.data(), &mut out, M, K, N);
            black_box(out[0])
        })
    });
    ftsim_tensor::simd::force(Some(true));
    c.bench_function("tensor/matmul_microkernel_simd", |bch| {
        bch.iter(|| {
            parallel::matmul_microkernel_into(lhs.data(), rhs.data(), &mut out, M, K, N);
            black_box(out[0])
        })
    });
    ftsim_tensor::simd::force(None);
}

/// One `linear_act` forward+backward at training-hot-loop scale, streaming
/// fused epilogue vs. the composed matmul → add_row → activate chain.
fn linear_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(29);
    let xt = Tensor::rand_normal([64, 32], 1.0, &mut rng);
    let wt = Tensor::rand_normal([32, 64], 0.5, &mut rng);
    let bt = Tensor::rand_normal([1, 64], 0.5, &mut rng);
    pool::set_enabled(true);
    autograd::set_arena_enabled(true);
    c.bench_function("tensor/linear_backward_fused", |bch| {
        bch.iter(|| {
            let (x, w, b) = (
                Var::constant(xt.clone()),
                Var::parameter(wt.clone()),
                Var::parameter(bt.clone()),
            );
            let loss = x
                .linear_act(&w, &b, Activation::Silu)
                .expect("shapes")
                .mean();
            loss.backward();
            black_box(loss.value().item())
        })
    });
    c.bench_function("tensor/linear_backward_composed", |bch| {
        bch.iter(|| {
            let (x, w, b) = (
                Var::constant(xt.clone()),
                Var::parameter(wt.clone()),
                Var::parameter(bt.clone()),
            );
            let loss = x
                .matmul(&w)
                .expect("shapes")
                .add_row(&b)
                .expect("shapes")
                .activate(Activation::Silu)
                .mean();
            loss.backward();
            black_box(loss.value().item())
        })
    });
    pool::clear();
    autograd::arena_clear();
}

fn kernel_inputs() -> (Tensor, Tensor, Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(11);
    (
        Tensor::rand_normal([M, K], 1.0, &mut rng),
        Tensor::rand_normal([K, N], 0.5, &mut rng),
        Tensor::rand_normal([1, N], 0.5, &mut rng),
        Tensor::rand_normal([2048, 64], 1.0, &mut rng),
    )
}

fn kernels(c: &mut Criterion) {
    let (x, w, b, logits) = kernel_inputs();

    pool::set_enabled(false);
    c.bench_function("tensor/linear_naive_unpooled", |bch| {
        bch.iter(|| {
            let y = x.matmul(&w).expect("conforming shapes");
            let mut biased = Tensor::zeros(y.shape().clone());
            for r in 0..M {
                for col in 0..N {
                    biased.set2(r, col, y.get2(r, col) + b.get2(0, col));
                }
            }
            black_box(biased.map(|v| Activation::Silu.apply(v)))
        })
    });
    c.bench_function("tensor/softmax_naive_unpooled", |bch| {
        bch.iter(|| black_box(ops::softmax_rows_naive(&logits).expect("matrix")))
    });

    pool::set_enabled(true);
    c.bench_function("tensor/linear_fused_pooled", |bch| {
        bch.iter(|| {
            black_box(ops::matmul_bias_act(&x, &w, Some(&b), Activation::Silu).expect("shapes"))
        })
    });
    c.bench_function("tensor/softmax_fused_pooled", |bch| {
        bch.iter(|| black_box(ops::softmax_rows(&logits).expect("matrix")))
    });
    pool::clear();
}

struct TrainFixture {
    moe: MoeLayer,
    head: Linear,
    params: Vec<Var>,
    opt: AdamW,
    x: Tensor,
    labels: Vec<usize>,
}

fn fixture() -> TrainFixture {
    let (hidden, ffn, experts, classes, batch) = (32, 64, 8, 8, 64);
    let mut rng = StdRng::seed_from_u64(7);
    let moe = MoeLayer::new(ExpertKind::SwiGlu, hidden, ffn, experts, experts, &mut rng)
        .expect("valid MoE configuration");
    let head = Linear::new(hidden, classes, &mut rng);
    let mut params = moe.parameters();
    params.extend(head.parameters());
    let opt = AdamW::new(1e-2, params.len());
    let x = Tensor::rand_normal([batch, hidden], 1.0, &mut rng);
    let labels = (0..batch).map(|_| rng.gen_range(0..classes)).collect();
    TrainFixture {
        moe,
        head,
        params,
        opt,
        x,
        labels,
    }
}

fn train_step(f: &mut TrainFixture, fused: bool) -> f32 {
    let x = Var::constant(f.x.clone());
    let (mixed, _) = f.moe.forward_with(&x, fused).expect("moe forward");
    let logits = if fused {
        f.head.forward_act(&mixed, Activation::Identity)
    } else {
        f.head.forward_naive(&mixed, Activation::Identity)
    }
    .expect("head projection");
    let loss = logits.cross_entropy(&f.labels).expect("labels in range");
    let out = loss.with_value(Tensor::item);
    loss.backward();
    f.opt.step(&f.params);
    out
}

fn train_steps(c: &mut Criterion) {
    pool::set_enabled(false);
    let mut naive = fixture();
    c.bench_function("tensor/train_step_naive_unpooled", |bch| {
        bch.iter(|| black_box(train_step(&mut naive, false)))
    });
    drop(naive);

    pool::set_enabled(true);
    let mut fused = fixture();
    c.bench_function("tensor/train_step_fused_pooled", |bch| {
        bch.iter(|| black_box(train_step(&mut fused, true)))
    });
    drop(fused);
    pool::clear();
}

criterion_group! {
    name = tensor;
    config = Criterion::default().sample_size(10);
    targets = matmul_kernels, matmul_simd_dispatch, kernels, linear_backward, train_steps
}
criterion_main!(tensor);
