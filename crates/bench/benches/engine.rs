//! Benchmarks the simulation engine itself: serial naive emission vs.
//! memoized layer traces vs. the multi-threaded sweep fan-out, on the
//! Fig. 8 Mixtral-S/CS configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use ftsim_bench::mixtral_sparse_a40;
use ftsim_sim::{parallel_map_with, thread_count, ThroughputSweep};
use std::hint::black_box;

const SEQ: usize = 79;

fn batches() -> Vec<usize> {
    (1..=16).collect()
}

fn serial_naive(c: &mut Criterion) {
    let sim = mixtral_sparse_a40();
    let batches = batches();
    c.bench_function("engine/sweep_serial_naive", |b| {
        b.iter(|| {
            let total: f64 = batches
                .iter()
                .map(|&bs| sim.simulate_step_naive(bs, SEQ).total_seconds())
                .sum();
            black_box(total)
        })
    });
}

fn serial_memoized(c: &mut Criterion) {
    let sim = mixtral_sparse_a40();
    let batches = batches();
    c.bench_function("engine/sweep_serial_memoized", |b| {
        b.iter(|| {
            let total: f64 = batches
                .iter()
                .map(|&bs| sim.simulate_step(bs, SEQ).total_seconds())
                .sum();
            black_box(total)
        })
    });
}

fn parallel_memoized(c: &mut Criterion) {
    let sim = mixtral_sparse_a40();
    let batches = batches();
    let threads = thread_count();
    eprintln!("[engine] parallel fan-out over {threads} thread(s)");
    c.bench_function("engine/sweep_parallel_memoized", |b| {
        b.iter(|| {
            let totals = parallel_map_with(threads, &batches, |&bs| {
                sim.simulate_step(bs, SEQ).total_seconds()
            });
            black_box(totals.iter().sum::<f64>())
        })
    });
    c.bench_function("engine/throughput_sweep_parallel", |b| {
        b.iter(|| {
            black_box(ThroughputSweep::run(&sim, "bench", SEQ, &batches).expect("valid batch list"))
        })
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = serial_naive, serial_memoized, parallel_memoized
}
criterion_main!(engine);
