//! Benches regenerating the trainability and load-imbalance figures:
//! real MoE training epochs (Fig. 3) and router-distribution calibration
//! (Fig. 11), plus tensor-stack microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use ftsim_sim::moetrain::{train, MoeTrainConfig};
use ftsim_sim::routing::RouterDrift;
use ftsim_sim::TrainabilityMatrix;
use ftsim_tensor::{Quantized4Bit, Tensor, Var};
use ftsim_workload::SyntheticTask;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fig3_training(c: &mut Criterion) {
    let task = SyntheticTask::commonsense(16, 4, 42);
    let mut cfg = MoeTrainConfig::mixtral_like(2);
    cfg.epochs = 2;
    cfg.train_examples = 256;
    cfg.eval_examples = 128;
    let out = train(&task, &cfg, "bench");
    eprintln!(
        "[fig3] sparse 2-epoch accuracy {:.2} (initial {:.2})",
        out.final_accuracy(),
        out.initial_accuracy
    );
    c.bench_function("fig3/train_sparse_moe_2_epochs", |b| {
        b.iter(|| black_box(train(&task, &cfg, "bench")))
    });
    c.bench_function("fig3/calibrated_matrix", |b| {
        b.iter(|| black_box(TrainabilityMatrix::fig3()))
    });
}

fn fig11_routing(c: &mut Criterion) {
    let drift = RouterDrift::new(8, 31);
    let (conc, dist) = drift.calibrate(112.0);
    eprintln!(
        "[fig11] concentration {:.3} → variance {:.1}",
        conc,
        dist.variance()
    );
    c.bench_function("fig11/calibrate_variance", |b| {
        b.iter(|| black_box(drift.calibrate(112.0)))
    });
    c.bench_function("fig11/paper_cases", |b| {
        b.iter(|| black_box(ftsim_sim::routing::paper_cases()))
    });
}

fn tensor_micro(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::rand_uniform([64, 64], 1.0, &mut rng);
    let bm = Tensor::rand_uniform([64, 64], 1.0, &mut rng);
    c.bench_function("micro/matmul_64", |b| {
        b.iter(|| black_box(a.matmul(&bm).expect("conforming")))
    });

    let weights: Vec<f32> = (0..16_384)
        .map(|i| ((i as f32) * 0.01).sin() * 0.02)
        .collect();
    c.bench_function("micro/nf4_quantize_16k", |b| {
        b.iter(|| black_box(Quantized4Bit::quantize(&weights, 64).expect("valid")))
    });
    let q = Quantized4Bit::quantize(&weights, 64).expect("valid");
    c.bench_function("micro/nf4_dequantize_16k", |b| {
        b.iter(|| black_box(q.dequantize()))
    });

    let x = Tensor::rand_uniform([32, 32], 1.0, &mut rng);
    let w = Tensor::rand_uniform([32, 32], 0.2, &mut rng);
    c.bench_function("micro/autograd_forward_backward", |b| {
        b.iter(|| {
            let wv = Var::parameter(w.clone());
            let loss = Var::constant(x.clone())
                .matmul(&wv)
                .expect("conforming")
                .gelu()
                .mean();
            loss.backward();
            black_box(wv.grad())
        })
    });
}

criterion_group! {
    name = training;
    config = Criterion::default().sample_size(10);
    targets = fig3_training, fig11_routing, tensor_micro
}
criterion_main!(training);
