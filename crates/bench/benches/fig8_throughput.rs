//! Bench regenerating the throughput figure (Fig. 8) and the sequence-length
//! sensitivity study (§IV-B6).

use criterion::{criterion_group, criterion_main, Criterion};
use ftsim_bench::{mixtral_sparse_a40, sim_on_a40};
use ftsim_model::presets;
use ftsim_sim::{SensitivityStudy, ThroughputSweep};
use std::hint::black_box;

fn fig8_sweeps(c: &mut Criterion) {
    let sim = mixtral_sparse_a40();
    let batches: Vec<usize> = (1..=8).collect();
    let sweep = ThroughputSweep::run(&sim, "Mixtral-S/CS", 79, &batches).expect("valid batch list");
    for p in &sweep.points {
        eprintln!("[fig8] bs{} = {:.2} qps", p.batch, p.queries_per_second);
    }
    c.bench_function("fig8/mixtral_sparse_cs_sweep", |b| {
        b.iter(|| black_box(ThroughputSweep::run(&sim, "bench", 79, &batches).unwrap()))
    });

    let bm = sim_on_a40(presets::blackmamba_2p8b(), true);
    let bm_batches: Vec<usize> = (1..=20).collect();
    c.bench_function("fig8/blackmamba_sparse_cs_sweep", |b| {
        b.iter(|| black_box(ThroughputSweep::run(&bm, "bench", 79, &bm_batches).unwrap()))
    });
}

fn sensitivity_study(c: &mut Criterion) {
    let sim = mixtral_sparse_a40();
    let seqs = [64usize, 128, 256, 512, 1024];
    let study = SensitivityStudy::run(&sim, "Mixtral-S", &seqs);
    eprintln!("[sensitivity] latency ratio {:.2}", study.latency_ratio());
    c.bench_function("sensitivity/mixtral_sparse", |b| {
        b.iter(|| black_box(SensitivityStudy::run(&sim, "bench", &seqs)))
    });
}

criterion_group! {
    name = throughput;
    config = Criterion::default().sample_size(10);
    targets = fig8_sweeps, sensitivity_study
}
criterion_main!(throughput);
