//! Benches regenerating the runtime breakdown figures: stage split (Fig. 4),
//! per-layer split (Fig. 5), MoE kernel split (Fig. 6), and the SM / DRAM
//! utilization studies (Figs. 9–10).

use criterion::{criterion_group, criterion_main, Criterion};
use ftsim_bench::{mixtral_sparse_a40, sim_on_a40};
use ftsim_model::presets;
use ftsim_sim::report::moe_utilization_table;
use std::hint::black_box;

fn fig4_stage_breakdown(c: &mut Criterion) {
    let sim = mixtral_sparse_a40();
    let trace = sim.simulate_step(1, 128);
    let b = trace.stage_breakdown();
    eprintln!(
        "[fig4] Mixtral-S bs1: fwd {:.1}% bwd {:.1}% opt {:.1}%",
        b.percent("forward"),
        b.percent("backward"),
        b.percent("optimizer")
    );
    c.bench_function("fig4/stage_breakdown_step", |b| {
        b.iter(|| black_box(sim.simulate_step(1, 128).stage_breakdown()))
    });
}

fn fig5_layer_breakdown(c: &mut Criterion) {
    let sim = sim_on_a40(presets::blackmamba_2p8b(), true);
    let trace = sim.simulate_step(12, 128);
    eprintln!(
        "[fig5] BlackMamba-S bs12: moe {:.1}%",
        trace.section_breakdown().percent("moe")
    );
    c.bench_function("fig5/section_breakdown_step", |b| {
        b.iter(|| black_box(sim.simulate_step(12, 128).section_breakdown()))
    });
}

fn fig6_moe_kernels(c: &mut Criterion) {
    let sim = mixtral_sparse_a40();
    let trace = sim.simulate_step(5, 128);
    eprintln!(
        "[fig6] Mixtral-S bs5 MoE kernels:\n{}",
        trace.moe_kernel_breakdown()
    );
    c.bench_function("fig6/moe_kernel_breakdown", |b| {
        b.iter(|| black_box(sim.simulate_step(5, 128).moe_kernel_breakdown()))
    });
}

fn fig9_10_utilization(c: &mut Criterion) {
    let sim = mixtral_sparse_a40();
    let trace = sim.simulate_step(5, 128);
    for row in moe_utilization_table(&trace, true) {
        eprintln!(
            "[fig9/10] {}: SM {:.0}% DRAM {:.0}%",
            row.kind.label(),
            row.util.sm_util * 100.0,
            row.util.dram_util * 100.0
        );
    }
    c.bench_function("fig9_10/utilization_table", |b| {
        b.iter(|| {
            let t = sim.simulate_step(5, 128);
            black_box(moe_utilization_table(&t, true))
        })
    });
}

criterion_group! {
    name = breakdowns;
    config = Criterion::default().sample_size(15);
    targets = fig4_stage_breakdown, fig5_layer_breakdown, fig6_moe_kernels, fig9_10_utilization
}
criterion_main!(breakdowns);
