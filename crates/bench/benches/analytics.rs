//! Benches regenerating the analytical-model figures: Eq. 1 fitting +
//! memory projection (Fig. 13) and Eq. 2 fitting + validation
//! (Figs. 14–15).

use criterion::{criterion_group, criterion_main, Criterion};
use ftsim_cost::{
    validate_combo, BatchSample, MaxBatchModel, MemoryProjection, ThroughputModel, ThroughputSample,
};
use ftsim_gpu::{CostModel, GpuSpec};
use ftsim_model::{presets, FineTuneConfig, MemoryModel};
use std::hint::black_box;

fn batch_samples() -> Vec<BatchSample> {
    let model = presets::mixtral_8x7b();
    let mut out = Vec::new();
    for gpu in GpuSpec::catalog() {
        for (ft, s) in [
            (FineTuneConfig::qlora_sparse(), 0.25),
            (FineTuneConfig::qlora_dense(), 1.0),
        ] {
            let mem = MemoryModel::new(&model, &ft);
            for seq in [79usize, 148, 174] {
                let mb = mem.max_batch_size(&gpu, seq);
                if mb > 0 {
                    out.push(BatchSample {
                        gpu_mem_gb: gpu.mem_gb,
                        model_mem_gb: mem.weights_gb(),
                        seq_len: seq,
                        sparsity: s,
                        max_batch: mb,
                    });
                }
            }
        }
    }
    out
}

fn fig13_batch_fit(c: &mut Criterion) {
    let samples = batch_samples();
    let (fit, rmse) = MaxBatchModel::fit(&samples);
    eprintln!("[fig13] C0={:.2} C1={:.3} rmse={:.2}", fit.c0, fit.c1, rmse);
    c.bench_function("fig13/eq1_fit", |b| {
        b.iter(|| black_box(MaxBatchModel::fit(&samples)))
    });

    let measured: Vec<(String, BatchSample)> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("dev{i}"), *s))
        .collect();
    c.bench_function("fig13/projection", |b| {
        b.iter(|| {
            black_box(MemoryProjection::build(
                &measured,
                &[100.0, 120.0],
                23.35,
                148,
                0.25,
            ))
        })
    });
}

fn fig14_validation(c: &mut Criterion) {
    let model = presets::mixtral_8x7b();
    let a40 = CostModel::new(GpuSpec::a40());
    let v = validate_combo("Mixtral/CS @ A40", &model, &a40, 79, 2);
    eprintln!("[fig14] RMSE {:.3}", v.rmse);
    c.bench_function("fig14/validate_mixtral_cs_a40", |b| {
        b.iter(|| black_box(validate_combo("bench", &model, &a40, 79, 2)))
    });
}

fn fig15_other_gpus(c: &mut Criterion) {
    let model = presets::mixtral_8x7b();
    let h100 = CostModel::new(GpuSpec::h100_80());
    c.bench_function("fig15/validate_mixtral_gs_h100", |b| {
        b.iter(|| black_box(validate_combo("bench", &model, &h100, 148, 2)))
    });
}

fn eq2_fit_micro(c: &mut Criterion) {
    let truth = ThroughputModel {
        c2: 0.55,
        c3: 0.8,
        c4: 0.4,
    };
    let samples: Vec<ThroughputSample> = (1..=20)
        .flat_map(|b| {
            [0.25, 1.0].into_iter().map(move |s| ThroughputSample {
                batch: b as f64,
                sparsity: s,
                qps: truth.predict(b as f64, s),
            })
        })
        .collect();
    c.bench_function("micro/eq2_nelder_mead_fit", |b| {
        b.iter(|| black_box(ThroughputModel::fit(&samples)))
    });
}

criterion_group! {
    name = analytics;
    config = Criterion::default().sample_size(10);
    targets = fig13_batch_fit, fig14_validation, fig15_other_gpus, eq2_fit_micro
}
criterion_main!(analytics);
