//! # ftsim-bench
//!
//! Criterion benchmark harness for the ftsim workspace. Each bench target
//! regenerates one of the paper's tables or figures (printing its data once
//! before timing the computation that produces it), plus microbenchmarks of
//! the numerical substrate.
//!
//! Run everything with `cargo bench --workspace`; individual targets with
//! e.g. `cargo bench -p ftsim-bench --bench fig8_throughput`.

use ftsim_gpu::{CostModel, GpuSpec};
use ftsim_model::{FineTuneConfig, ModelConfig, Sparsity};
use ftsim_sim::StepSimulator;

/// A ready-made simulator for the paper's headline configuration
/// (Mixtral-8x7B, QLoRA sparse top-2, A40).
pub fn mixtral_sparse_a40() -> StepSimulator {
    StepSimulator::new(
        ftsim_model::presets::mixtral_8x7b(),
        FineTuneConfig::qlora_sparse(),
        CostModel::new(GpuSpec::a40()),
    )
}

/// A simulator for an arbitrary combo on the A40.
pub fn sim_on_a40(model: ModelConfig, sparse: bool) -> StepSimulator {
    let s = if sparse {
        Sparsity::TopK(2)
    } else {
        Sparsity::Dense
    };
    let ft = FineTuneConfig::for_model(&model, s);
    StepSimulator::new(model, ft, CostModel::new(GpuSpec::a40()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_working_simulators() {
        let trace = mixtral_sparse_a40().simulate_step(1, 64);
        assert!(trace.total_seconds() > 0.0);
        let bm = sim_on_a40(ftsim_model::presets::blackmamba_2p8b(), false);
        assert!(bm.simulate_step(1, 64).total_seconds() > 0.0);
    }
}
