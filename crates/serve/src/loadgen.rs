//! Closed-loop load generator for the planner server.
//!
//! Spawns `connections` worker threads, each owning one TCP connection and
//! issuing pipelined batches of scenario queries drawn deterministically
//! (seeded LCG per worker) from a bounded scenario universe. Request counts
//! are fixed per worker, so two runs with the same config issue exactly the
//! same queries regardless of thread scheduling — the server-side cache and
//! request counters come out exact, which is what lets CI gate on them with
//! `obs-diff`.
//!
//! Latency is measured per pipelined batch and attributed evenly to the
//! batch's requests; with `pipeline = 1` it is a true per-request RTT.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use serde_json::{json, Value};

use crate::server::{ServeConfig, Server};

/// Query-mix weights. Requests are dealt `plan : estimate : sweep`
/// proportionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Relative weight of `plan` queries.
    pub plan: u32,
    /// Relative weight of `estimate` queries.
    pub estimate: u32,
    /// Relative weight of `sweep` queries.
    pub sweep: u32,
}

impl Default for Mix {
    /// Plan-heavy by default: memory planning is the interactive query.
    fn default() -> Self {
        Mix {
            plan: 8,
            estimate: 3,
            sweep: 1,
        }
    }
}

impl Mix {
    fn total(&self) -> u64 {
        u64::from(self.plan) + u64::from(self.estimate) + u64::from(self.sweep)
    }

    fn pick(&self, roll: u64) -> usize {
        let r = roll % self.total().max(1);
        if r < u64::from(self.plan) {
            0
        } else if r < u64::from(self.plan) + u64::from(self.estimate) {
            1
        } else {
            2
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Server to target; `None` starts an in-process server on an
    /// ephemeral port and tears it down afterwards.
    pub addr: Option<String>,
    /// Concurrent connections (worker threads).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Requests per write (batch depth); `1` disables pipelining.
    pub pipeline: usize,
    /// Size of the scenario universe queries are drawn from.
    pub scenarios: usize,
    /// Query mix.
    pub mix: Mix,
    /// LCG seed; same seed + same config = same query sequence.
    pub seed: u64,
    /// Directory for `bench_serve.json` / `serve_metrics.json` (`None` =
    /// don't write).
    pub out_dir: Option<String>,
    /// Send `{"query":"shutdown"}` to the server when done.
    pub shutdown: bool,
    /// SLO latency target for the in-process server (µs); ignored when
    /// `addr` targets an external server.
    pub slo_target_p99_us: f64,
    /// SLO error budget for the in-process server; ignored with `addr`.
    pub slo_error_budget: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        let serve = ServeConfig::default();
        LoadgenConfig {
            addr: None,
            connections: 4,
            requests: 20_000,
            pipeline: 32,
            scenarios: 24,
            mix: Mix::default(),
            seed: 42,
            out_dir: None,
            shutdown: false,
            slo_target_p99_us: serve.slo_target_p99_us,
            slo_error_budget: serve.slo_error_budget,
        }
    }
}

/// Aggregated results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests issued (equals the configured total).
    pub requests: usize,
    /// Answers with `"ok": false`.
    pub errors: usize,
    /// Wall-clock seconds from first byte to last answer.
    pub elapsed_secs: f64,
    /// Requests per second.
    pub qps: f64,
    /// Median per-request latency in microseconds.
    pub p50_us: f64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Worst latency in microseconds.
    pub max_us: f64,
    /// The server's final `stats` answer (cache counters + metrics + SLO).
    pub stats_reply: Value,
    /// The server's final `metrics` answer: the Prometheus-style exposition
    /// (without the `# EOF` terminator line).
    pub metrics_text: String,
}

/// Multiplicative LCG (Knuth MMIX constants) — deterministic, per-worker.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 17
}

/// Builds the deterministic scenario universe: `scenarios` specs × the
/// three query kinds, as ready-to-send request lines.
fn build_universe(scenarios: usize) -> Vec<[String; 3]> {
    let gpus = ["a40", "a100-40", "a100-80", "h100-80"];
    let datasets = ["cs", "math", "he", "gs", "oo"];
    let models = ["mixtral-8x7b", "blackmamba-2.8b"];
    (0..scenarios.max(1))
        .map(|i| {
            let gpu = gpus[i % gpus.len()];
            let dataset = datasets[(i / gpus.len()) % datasets.len()];
            let model = models[(i / (gpus.len() * datasets.len())) % models.len()];
            let body = format!(r#""model":"{model}","gpu":"{gpu}","dataset":"{dataset}""#);
            [
                format!(r#"{{"query":"plan",{body}}}"#),
                format!(r#"{{"query":"estimate",{body}}}"#),
                format!(r#"{{"query":"sweep",{body}}}"#),
            ]
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct WorkerResult {
    errors: usize,
    latencies_us: Vec<f64>,
}

fn run_worker(
    addr: &str,
    universe: &[[String; 3]],
    mix: Mix,
    mut rng: u64,
    count: usize,
    pipeline: usize,
) -> std::io::Result<WorkerResult> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut errors = 0usize;
    let mut latencies_us = Vec::with_capacity(count);
    let mut sent = 0usize;
    let mut batch = String::new();
    let mut line = String::new();
    while sent < count {
        let depth = pipeline.max(1).min(count - sent);
        batch.clear();
        for _ in 0..depth {
            let roll = lcg_next(&mut rng);
            let kind = mix.pick(roll);
            let scenario = (lcg_next(&mut rng) as usize) % universe.len();
            batch.push_str(&universe[scenario][kind]);
            batch.push('\n');
        }
        let started = Instant::now();
        stream.write_all(batch.as_bytes())?;
        for _ in 0..depth {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-batch",
                ));
            }
            if line.starts_with(r#"{"ok":false"#) {
                errors += 1;
            }
        }
        let batch_us = started.elapsed().as_secs_f64() * 1e6 / depth as f64;
        latencies_us.extend(std::iter::repeat_n(batch_us, depth));
        sent += depth;
    }
    Ok(WorkerResult {
        errors,
        latencies_us,
    })
}

/// Runs the load generator per `config`, optionally writing
/// `bench_serve.json`, `serve_metrics.json`, `serve_metrics.prom`, and
/// `serve_slo.json` under `out_dir`.
pub fn run(config: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    // Own a server if no address was given.
    let mut local = None;
    let addr = match &config.addr {
        Some(addr) => addr.clone(),
        None => {
            let server = Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                slo_target_p99_us: config.slo_target_p99_us,
                slo_error_budget: config.slo_error_budget,
                ..ServeConfig::default()
            })?;
            let addr = server.local_addr().to_string();
            local = Some(server);
            addr
        }
    };
    let universe = build_universe(config.scenarios);
    let connections = config.connections.max(1);
    let total = config.requests.max(1);

    let started = Instant::now();
    let results: Vec<std::io::Result<WorkerResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|w| {
                // Fixed per-worker quota: same totals on every run.
                let count = total / connections + usize::from(w < total % connections);
                let seed = config
                    .seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(w as u64 + 1);
                let (addr, universe) = (&addr, &universe);
                scope.spawn(move || {
                    run_worker(addr, universe, config.mix, seed, count, config.pipeline)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let elapsed_secs = started.elapsed().as_secs_f64();

    let mut errors = 0usize;
    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    for result in results {
        let worker = result?;
        errors += worker.errors;
        latencies.extend(worker.latencies_us);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };

    // Final control round-trips: stats, the metrics exposition, then
    // optional shutdown.
    let (stats_reply, metrics_text) = {
        let stream = TcpStream::connect(&addr)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut stream = stream;
        stream.write_all(b"{\"query\":\"stats\"}\n")?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        stream.write_all(b"{\"query\":\"metrics\"}\n")?;
        let mut metrics_text = String::new();
        loop {
            let mut m = String::new();
            if reader.read_line(&mut m)? == 0 || m.trim_end() == "# EOF" {
                break;
            }
            metrics_text.push_str(&m);
        }
        if config.shutdown || local.is_some() {
            stream.write_all(b"{\"query\":\"shutdown\"}\n")?;
            let mut bye = String::new();
            let _ = reader.read_line(&mut bye);
        }
        (
            serde_json::from_str(line.trim()).unwrap_or(Value::Null),
            metrics_text,
        )
    };
    if let Some(server) = local.as_mut() {
        server.wait();
    }

    let report = LoadgenReport {
        requests: total,
        errors,
        elapsed_secs,
        qps: total as f64 / elapsed_secs,
        p50_us: percentile(&latencies, 0.50),
        p90_us: percentile(&latencies, 0.90),
        p99_us: percentile(&latencies, 0.99),
        mean_us,
        max_us: latencies.last().copied().unwrap_or(0.0),
        stats_reply,
        metrics_text,
    };
    if let Some(dir) = &config.out_dir {
        write_reports(dir, config, &report)?;
    }
    Ok(report)
}

fn write_reports(dir: &str, config: &LoadgenConfig, report: &LoadgenReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let cache = report
        .stats_reply
        .get("cache")
        .cloned()
        .unwrap_or(Value::Null);
    let doc = json!({
        "bench": "serve",
        "requests": report.requests as i64,
        "errors": report.errors as i64,
        "elapsed_secs": report.elapsed_secs,
        "qps": report.qps,
        "latency_us": json!({
            "p50": report.p50_us,
            "p90": report.p90_us,
            "p99": report.p99_us,
            "mean": report.mean_us,
            "max": report.max_us,
        }),
        "connections": config.connections as i64,
        "pipeline": config.pipeline as i64,
        "scenarios": config.scenarios as i64,
        "mix": json!({
            "plan": i64::from(config.mix.plan),
            "estimate": i64::from(config.mix.estimate),
            "sweep": i64::from(config.mix.sweep),
        }),
        "seed": config.seed as i64,
        "cache": cache,
    });
    let pretty = |v: &Value| serde_json::to_string_pretty(v).map_err(std::io::Error::other);
    std::fs::write(format!("{dir}/bench_serve.json"), pretty(&doc)? + "\n")?;
    std::fs::write(
        format!("{dir}/serve_metrics.json"),
        pretty(&report.stats_reply)? + "\n",
    )?;
    std::fs::write(format!("{dir}/serve_metrics.prom"), &report.metrics_text)?;
    if let Some(slo) = slo_snapshot(&report.stats_reply) {
        std::fs::write(format!("{dir}/serve_slo.json"), pretty(&slo)? + "\n")?;
    }
    Ok(())
}

/// Projects the `stats` answer's SLO block into an `obs-diff`-compatible
/// snapshot carrying only the *cumulative* ("total") status — windowed
/// values move with wall-clock timing, but a clean deterministic run has
/// exactly zero total violations and zero burn, which is what CI gates on
/// against `baselines/serve_slo.json`.
fn slo_snapshot(stats_reply: &Value) -> Option<Value> {
    let slo = stats_reply.get("slo")?;
    let windows = match slo.get("windows") {
        Some(Value::Array(w)) => w,
        _ => return None,
    };
    let total = windows
        .iter()
        .find(|w| matches!(w.get("window"), Some(Value::String(s)) if s == "total"))?;
    let count = total.get("count").cloned().unwrap_or(Value::Int(0));
    let violations = total.get("violations").cloned().unwrap_or(Value::Int(0));
    let burn_rate = total.get("burn_rate").cloned().unwrap_or(Value::Float(0.0));
    let unhealthy = i64::from(!matches!(total.get("healthy"), Some(Value::Bool(true))));
    Some(json!({
        "slo": json!({
            "name": slo.get("name").cloned().unwrap_or(Value::Null),
            "target_p99_us": slo.get("target_p99_us").cloned().unwrap_or(Value::Null),
            "error_budget": slo.get("error_budget").cloned().unwrap_or(Value::Null),
        }),
        "counters": json!({
            "serve.slo.total.count": count,
            "serve.slo.total.violations": violations,
            "serve.slo.total.unhealthy": unhealthy,
        }),
        "gauges": json!({
            "serve.slo.total.burn_rate": burn_rate,
        }),
        "histograms": json!({}),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_deals_all_three_kinds() {
        let mix = Mix::default();
        let mut seen = [false; 3];
        let mut rng = 7u64;
        for _ in 0..64 {
            seen[mix.pick(lcg_next(&mut rng))] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn universe_is_deterministic_and_distinct() {
        let a = build_universe(24);
        let b = build_universe(24);
        assert_eq!(a, b);
        let unique: std::collections::HashSet<&String> = a.iter().flatten().collect();
        assert_eq!(unique.len(), 24 * 3, "no duplicate request lines");
    }

    #[test]
    fn loadgen_drives_an_in_process_server_deterministically() {
        let config = LoadgenConfig {
            connections: 2,
            requests: 600,
            pipeline: 8,
            scenarios: 6,
            ..LoadgenConfig::default()
        };
        let report = run(&config).expect("loadgen run");
        assert_eq!(report.requests, 600);
        assert_eq!(report.errors, 0, "all queries answer ok");
        assert!(report.qps > 0.0);
        assert!(report.p50_us <= report.p99_us);
        let cache = report.stats_reply.get("cache").expect("stats has cache");
        // 6 scenarios × up to 3 kinds: at most 18 distinct canonical keys,
        // exact on every run thanks to fixed per-worker quotas.
        match cache.get("misses") {
            Some(Value::Int(misses)) => assert!((1..=18).contains(misses)),
            other => panic!("cache.misses: {other:?}"),
        }
        // The metrics exposition came back through the line protocol with
        // its terminator stripped.
        assert!(
            report
                .metrics_text
                .contains("# TYPE serve_latency_us summary"),
            "{}",
            report.metrics_text
        );
        assert!(!report.metrics_text.contains("# EOF"));
        // The SLO projection keeps only the deterministic total status.
        let slo = slo_snapshot(&report.stats_reply).expect("stats carry an slo block");
        let counters = slo.get("counters").unwrap();
        assert!(counters.get("serve.slo.total.count").is_some());
        assert_eq!(
            counters.get("serve.slo.total.violations"),
            Some(&Value::Int(0))
        );
        assert_eq!(
            slo.get("gauges").unwrap().get("serve.slo.total.burn_rate"),
            Some(&Value::Float(0.0))
        );
    }
}
