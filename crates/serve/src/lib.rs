//! Planner-as-a-service: a concurrent query engine over the `ftsim` cost
//! model.
//!
//! The batch experiments answer "what does fine-tuning cost?" by running a
//! fixed grid. This crate answers the same questions **on demand**: a
//! long-running TCP server ([`Server`]) accepts declarative scenario specs
//! ([`ScenarioSpec`]) — model × GPU × dataset × parallelism × price
//! overrides, one JSON object per line — and replies with memory plans,
//! cost estimates, or batch sweeps computed by the same deterministic
//! simulator the experiments use.
//!
//! Three layers keep the hot path fast:
//!
//! 1. a sharded scenario-hash LRU cache ([`ScenarioCache`]) that returns
//!    previously computed answers byte-for-byte and coalesces concurrent
//!    misses onto a single computation,
//! 2. a simulator pool inside [`Planner`] that shares per-combo
//!    `TraceCache`s across scenarios differing only in dataset or price,
//! 3. pipelined line framing in the server, so a batch of questions costs
//!    one syscall round-trip.
//!
//! [`loadgen`] is the matching closed-loop benchmark driver; it issues a
//! deterministic query stream so CI can gate on exact cache counters.

pub mod cache;
pub mod engine;
pub mod loadgen;
pub mod server;
pub mod spec;

pub use cache::{CacheStats, ScenarioCache};
pub use engine::Planner;
pub use loadgen::{LoadgenConfig, LoadgenReport, Mix};
pub use server::{ServeConfig, Server};
pub use spec::{QueryKind, ScenarioSpec};
