//! Line-protocol TCP server over the planner engine.
//!
//! One JSON request per line, one JSON answer per line, in order. The
//! protocol is deliberately dumb — `nc localhost 7878` is a valid client —
//! and the framing batches every answer available for a read chunk into a
//! single write, so pipelined clients get pipelined responses for free.
//!
//! Threading model: one accept loop, one thread per connection. Each
//! connection thread parses, consults the scenario cache (coalescing
//! concurrent misses), and computes on miss. Connection reads use a short
//! timeout so threads notice shutdown promptly instead of blocking in
//! `read` forever.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::{json, Value};

use crate::cache::ScenarioCache;
use crate::engine::Planner;
use crate::spec::ScenarioSpec;

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address; port `0` picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Total scenario-cache answers to retain.
    pub cache_capacity: usize,
    /// Scenario-cache shard count (rounded up to a power of two).
    pub shards: usize,
    /// SLO latency target in microseconds: a request slower than this
    /// burns error budget.
    pub slo_target_p99_us: f64,
    /// Fraction of requests allowed over the target (`0.001` = 99.9% must
    /// meet it).
    pub slo_error_budget: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            cache_capacity: 4096,
            shards: 16,
            slo_target_p99_us: 100_000.0,
            slo_error_budget: 0.001,
        }
    }
}

/// Request phases traced per request (sketch per phase, microseconds).
const PHASES: [&str; 5] = [
    "serve.phase.parse_us",
    "serve.phase.canonicalize_us",
    "serve.phase.cache_lookup_us",
    "serve.phase.compute_us",
    "serve.phase.serialize_us",
];

/// Read timeout per connection: the granularity at which connection threads
/// re-check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

struct Shared {
    planner: Planner,
    cache: ScenarioCache,
    stop: AtomicBool,
    inflight: AtomicU64,
    requests: ftsim_obs::Counter,
    control: ftsim_obs::Counter,
    errors: ftsim_obs::Counter,
    connections: ftsim_obs::Counter,
    inflight_gauge: ftsim_obs::Gauge,
    /// Rolling-window view of request latency (p50/p99/qps over the last
    /// 1s/10s/60s) — feeds the `metrics` exposition and SLO evaluation.
    latency_series: ftsim_obs::SeriesHandle,
    slo: ftsim_obs::SloSpec,
}

impl Shared {
    fn new(config: &ServeConfig) -> Self {
        let reg = ftsim_obs::registry();
        // Registered eagerly so snapshots carry zeros for quiet servers.
        reg.sketch("serve.latency_us");
        for phase in PHASES {
            reg.sketch(phase);
        }
        Shared {
            planner: Planner::new(),
            cache: ScenarioCache::new(config.cache_capacity, config.shards),
            stop: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            requests: reg.counter("serve.requests"),
            control: reg.counter("serve.control"),
            errors: reg.counter("serve.errors"),
            connections: reg.counter("serve.connections"),
            inflight_gauge: reg.gauge("serve.inflight"),
            latency_series: ftsim_obs::timeseries().series("serve.latency_us"),
            slo: ftsim_obs::SloSpec::latency(
                "serve.latency_us",
                config.slo_target_p99_us,
                config.slo_error_budget,
            ),
        }
    }

    /// Records one traced phase duration (µs) into the registry sketch —
    /// cumulative percentiles in `stats`, and a histogram event for the
    /// binlog sink when one is installed (subject to its sampler).
    fn phase(&self, name: &'static str, started: Instant) -> Instant {
        ftsim_obs::registry().sketch_record(name, started.elapsed().as_secs_f64() * 1e6);
        Instant::now()
    }

    /// Handles one request line, returning the answer (no newline).
    fn answer_line(&self, line: &str) -> Answer {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Answer::Skip;
        }
        // Control queries bypass the scenario parser and the cache.
        if trimmed == r#"{"query":"stats"}"#
            || trimmed == r#"{"query":"shutdown"}"#
            || trimmed == r#"{"query":"metrics"}"#
        {
            self.control.add(1);
            if trimmed.contains("shutdown") {
                self.stop.store(true, Ordering::SeqCst);
                return Answer::Shutdown(json!({"ok": true, "query": "shutdown"}).to_string());
            }
            if trimmed.contains("metrics") {
                return Answer::Text(self.metrics_answer());
            }
            return Answer::Text(self.stats_answer());
        }
        let started = Instant::now();
        let spec = match ScenarioSpec::parse_str(trimmed) {
            Ok(spec) => spec,
            Err(message) => {
                self.errors.add(1);
                self.phase(PHASES[0], started);
                return Answer::Text(json!({"ok": false, "error": message}).to_string());
            }
        };
        let t = self.phase(PHASES[0], started);
        self.requests.add(1);
        self.inflight_gauge
            .set((self.inflight.fetch_add(1, Ordering::Relaxed) + 1) as f64);
        let key = spec.canonical_key();
        let hash = spec.hash();
        let t = self.phase(PHASES[1], t);
        let mut compute_us = 0.0;
        let answer = self.cache.get_or_compute(&key, hash, || {
            let computing = Instant::now();
            let answer = self.planner.answer(&spec);
            compute_us = computing.elapsed().as_secs_f64() * 1e6;
            answer
        });
        // Lookup time is the cache round-trip minus the compute it may have
        // coalesced or performed inline.
        let lookup_us = (t.elapsed().as_secs_f64() * 1e6 - compute_us).max(0.0);
        ftsim_obs::registry().sketch_record(PHASES[2], lookup_us);
        if compute_us > 0.0 {
            ftsim_obs::registry().sketch_record(PHASES[3], compute_us);
        }
        self.inflight_gauge
            .set((self.inflight.fetch_sub(1, Ordering::Relaxed) - 1) as f64);
        let t = Instant::now();
        if answer.starts_with(r#"{"ok":false"#) {
            self.errors.add(1);
        }
        let text = answer.to_string();
        self.phase(PHASES[4], t);
        let total_us = started.elapsed().as_secs_f64() * 1e6;
        ftsim_obs::registry().sketch_record("serve.latency_us", total_us);
        self.latency_series.record(total_us);
        Answer::Text(text)
    }

    fn slo_statuses(&self) -> Vec<ftsim_obs::SloStatus> {
        let now = ftsim_obs::timeseries::now_ns();
        self.latency_series
            .with(|series| self.slo.evaluate_at(series, now))
    }

    /// Deterministically ordered Prometheus-style exposition of every
    /// windowed series plus the SLO burn lines, terminated by `# EOF` so
    /// line-oriented clients know where the multi-line answer ends.
    fn metrics_answer(&self) -> String {
        let mut out = String::new();
        let now = ftsim_obs::timeseries::now_ns();
        ftsim_obs::timeseries().render_into(&mut out, now);
        let statuses = self.slo_statuses();
        self.slo.render_into(&mut out, &statuses);
        out.push_str("# EOF");
        out
    }

    fn stats_answer(&self) -> String {
        let s = self.cache.stats();
        let metrics = serde_json::from_str(&ftsim_obs::registry().snapshot().to_json_string())
            .unwrap_or(Value::Null);
        let slo: Vec<Value> = self
            .slo_statuses()
            .into_iter()
            .map(|st| {
                json!({
                    "window": st.window,
                    "count": st.count as i64,
                    "violations": st.violations as i64,
                    "p99_us": st.p99,
                    "burn_rate": st.burn_rate,
                    "healthy": st.healthy,
                })
            })
            .collect();
        json!({
            "ok": true,
            "query": "stats",
            "cache": json!({
                "hits": s.hits as i64,
                "misses": s.misses as i64,
                "coalesced": s.coalesced as i64,
                "evictions": s.evictions as i64,
                "len": self.cache.len() as i64,
                "capacity": self.cache.capacity() as i64,
                "shards": self.cache.shard_count() as i64,
            }),
            "simulators": self.planner.simulator_count() as i64,
            "slo": json!({
                "name": self.slo.name.clone(),
                "target_p99_us": self.slo.target_p99,
                "error_budget": self.slo.error_budget,
                "windows": slo,
            }),
            "metrics": metrics,
        })
        .to_string()
    }
}

enum Answer {
    /// Blank line: answer nothing.
    Skip,
    /// Normal answer.
    Text(String),
    /// Answer, then stop the server.
    Shutdown(String),
}

/// A running planner server. Dropping the handle does **not** stop it; send
/// `{"query":"shutdown"}` or call [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads. Returns once the
    /// listener is live (so clients may connect immediately).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(&config));
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scenario-cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Signals shutdown and waits for the accept loop to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Self-dial to wake the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until a shutdown request arrives, then returns.
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.add(1);
        let conn_shared = Arc::clone(&shared);
        let addr = listener.local_addr().ok();
        conns.push(
            std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || {
                    if connection_loop(stream, &conn_shared) {
                        // This connection delivered the shutdown request:
                        // wake the accept loop so it can exit.
                        if let Some(addr) = addr {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                })
                .expect("spawn connection thread"),
        );
        conns.retain(|h| !h.is_finished());
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Serves one connection until EOF or shutdown. Returns true when this
/// connection requested server shutdown.
fn connection_loop(mut stream: TcpStream, shared: &Shared) -> bool {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut pending: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    let mut out: Vec<u8> = Vec::with_capacity(4096);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        };
        pending.extend_from_slice(&chunk[..n]);
        out.clear();
        let mut consumed = 0;
        let mut wants_shutdown = false;
        while let Some(nl) = pending[consumed..].iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&pending[consumed..consumed + nl]).into_owned();
            consumed += nl + 1;
            match shared.answer_line(&line) {
                Answer::Skip => {}
                Answer::Text(answer) => {
                    out.extend_from_slice(answer.as_bytes());
                    out.push(b'\n');
                }
                Answer::Shutdown(answer) => {
                    out.extend_from_slice(answer.as_bytes());
                    out.push(b'\n');
                    wants_shutdown = true;
                }
            }
            if wants_shutdown {
                break;
            }
        }
        pending.drain(..consumed);
        if !out.is_empty() && stream.write_all(&out).is_err() {
            return wants_shutdown;
        }
        if wants_shutdown {
            let _ = stream.flush();
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn start() -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 64,
            shards: 4,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port")
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut payload = lines.join("\n");
        payload.push('\n');
        stream.write_all(payload.as_bytes()).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut answers = Vec::new();
        for _ in 0..lines.len() {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            answers.push(line.trim_end().to_string());
        }
        answers
    }

    #[test]
    fn serves_pipelined_queries_in_order_and_caches_repeats() {
        let mut server = start();
        let addr = server.local_addr();
        let q = r#"{"query":"plan"}"#;
        let answers = roundtrip(addr, &[q, q, r#"{"query":"estimate"}"#]);
        assert_eq!(answers[0], answers[1], "repeat query, identical bytes");
        assert!(answers[0].contains(r#""query":"plan""#));
        assert!(answers[2].contains(r#""query":"estimate""#));
        let stats = server.cache_stats();
        assert_eq!(stats.misses, 2);
        assert!(stats.hits >= 1);
        server.shutdown();
    }

    #[test]
    fn malformed_lines_answer_errors_without_dropping_the_connection() {
        let mut server = start();
        let addr = server.local_addr();
        let answers = roundtrip(
            addr,
            &[
                "this is not json",
                r#"{"query":"warp"}"#,
                r#"{"query":"plan"}"#,
            ],
        );
        assert!(answers[0].contains(r#""ok":false"#));
        assert!(answers[1].contains(r#""ok":false"#));
        assert!(answers[2].contains(r#""ok":true"#));
        server.shutdown();
    }

    #[test]
    fn metrics_query_returns_exposition_terminated_by_eof() {
        let mut server = start();
        let addr = server.local_addr();
        roundtrip(addr, &[r#"{"query":"plan"}"#]);
        // Multi-line answer: read until the `# EOF` terminator.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"{\"query\":\"metrics\"}\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            let done = line == "# EOF";
            lines.push(line);
            if done {
                break;
            }
        }
        let text = lines.join("\n");
        assert!(text.contains("# TYPE serve_latency_us summary"));
        assert!(text.contains("serve_latency_us{window=\"1s\",quantile=\"0.99\"} "));
        assert!(text.contains("serve_latency_us_count{window=\"total\"} "));
        assert!(text.contains("# TYPE slo_serve_latency_us_p99_burn_rate gauge"));
        assert!(text.contains("slo_serve_latency_us_p99_violations{window=\"total\"} "));
        // Two renders of the same quiet server expose the same series/label
        // set (values may move with the clock; names must not).
        server.shutdown();
    }

    #[test]
    fn stats_carry_slo_block_with_healthy_quiet_server() {
        let mut server = start();
        let addr = server.local_addr();
        roundtrip(addr, &[r#"{"query":"plan"}"#]);
        let stats = roundtrip(addr, &[r#"{"query":"stats"}"#]);
        let doc: Value = serde_json::from_str(&stats[0]).unwrap();
        let slo = doc.get("slo").expect("stats has slo block");
        assert_eq!(
            slo.get("name"),
            Some(&Value::String("serve.latency_us.p99".into()))
        );
        let windows = match slo.get("windows") {
            Some(Value::Array(w)) => w,
            other => panic!("slo.windows: {other:?}"),
        };
        assert_eq!(windows.len(), 4, "1s/10s/60s + total");
        let total = windows.last().unwrap();
        assert_eq!(total.get("window"), Some(&Value::String("total".into())));
        // A 100ms SLO target against sub-millisecond plans: zero burn.
        assert!(matches!(total.get("healthy"), Some(Value::Bool(true))));
        server.shutdown();
    }

    #[test]
    fn stats_and_shutdown_control_queries_work_over_the_wire() {
        let mut server = start();
        let addr = server.local_addr();
        roundtrip(addr, &[r#"{"query":"plan"}"#]);
        let stats = roundtrip(addr, &[r#"{"query":"stats"}"#]);
        assert!(stats[0].contains(r#""cache""#) && stats[0].contains(r#""misses":1"#));
        let bye = roundtrip(addr, &[r#"{"query":"shutdown"}"#]);
        assert!(bye[0].contains(r#""query":"shutdown""#));
        server.wait(); // returns because the wire request stopped the server
        server.shutdown(); // idempotent
    }
}
