//! Line-protocol TCP server over the planner engine.
//!
//! One JSON request per line, one JSON answer per line, in order. The
//! protocol is deliberately dumb — `nc localhost 7878` is a valid client —
//! and the framing batches every answer available for a read chunk into a
//! single write, so pipelined clients get pipelined responses for free.
//!
//! Threading model: one accept loop, one thread per connection. Each
//! connection thread parses, consults the scenario cache (coalescing
//! concurrent misses), and computes on miss. Connection reads use a short
//! timeout so threads notice shutdown promptly instead of blocking in
//! `read` forever.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::{json, Value};

use crate::cache::ScenarioCache;
use crate::engine::Planner;
use crate::spec::ScenarioSpec;

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address; port `0` picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Total scenario-cache answers to retain.
    pub cache_capacity: usize,
    /// Scenario-cache shard count (rounded up to a power of two).
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            cache_capacity: 4096,
            shards: 16,
        }
    }
}

/// Latency histogram bounds in microseconds for `serve.latency_us`.
const LATENCY_BOUNDS_US: [f64; 8] = [10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10_000.0, 100_000.0];

/// Read timeout per connection: the granularity at which connection threads
/// re-check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

struct Shared {
    planner: Planner,
    cache: ScenarioCache,
    stop: AtomicBool,
    inflight: AtomicU64,
    requests: ftsim_obs::Counter,
    control: ftsim_obs::Counter,
    errors: ftsim_obs::Counter,
    connections: ftsim_obs::Counter,
    inflight_gauge: ftsim_obs::Gauge,
    latency: ftsim_obs::Histogram,
}

impl Shared {
    fn new(config: &ServeConfig) -> Self {
        let reg = ftsim_obs::registry();
        Shared {
            planner: Planner::new(),
            cache: ScenarioCache::new(config.cache_capacity, config.shards),
            stop: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            // Registered eagerly so snapshots carry zeros for quiet servers.
            requests: reg.counter("serve.requests"),
            control: reg.counter("serve.control"),
            errors: reg.counter("serve.errors"),
            connections: reg.counter("serve.connections"),
            inflight_gauge: reg.gauge("serve.inflight"),
            latency: reg.histogram("serve.latency_us", &LATENCY_BOUNDS_US),
        }
    }

    /// Handles one request line, returning the answer (no newline).
    fn answer_line(&self, line: &str) -> Answer {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Answer::Skip;
        }
        // Control queries bypass the scenario parser and the cache.
        if trimmed == r#"{"query":"stats"}"# || trimmed == r#"{"query":"shutdown"}"# {
            self.control.add(1);
            if trimmed.contains("shutdown") {
                self.stop.store(true, Ordering::SeqCst);
                return Answer::Shutdown(json!({"ok": true, "query": "shutdown"}).to_string());
            }
            return Answer::Text(self.stats_answer());
        }
        let spec = match ScenarioSpec::parse_str(trimmed) {
            Ok(spec) => spec,
            Err(message) => {
                self.errors.add(1);
                return Answer::Text(json!({"ok": false, "error": message}).to_string());
            }
        };
        self.requests.add(1);
        let started = Instant::now();
        self.inflight_gauge
            .set((self.inflight.fetch_add(1, Ordering::Relaxed) + 1) as f64);
        let key = spec.canonical_key();
        let answer = self
            .cache
            .get_or_compute(&key, spec.hash(), || self.planner.answer(&spec));
        self.inflight_gauge
            .set((self.inflight.fetch_sub(1, Ordering::Relaxed) - 1) as f64);
        self.latency.record(started.elapsed().as_secs_f64() * 1e6);
        if answer.starts_with(r#"{"ok":false"#) {
            self.errors.add(1);
        }
        Answer::Text(answer.to_string())
    }

    fn stats_answer(&self) -> String {
        let s = self.cache.stats();
        let metrics = serde_json::from_str(&ftsim_obs::registry().snapshot().to_json_string())
            .unwrap_or(Value::Null);
        json!({
            "ok": true,
            "query": "stats",
            "cache": json!({
                "hits": s.hits as i64,
                "misses": s.misses as i64,
                "coalesced": s.coalesced as i64,
                "evictions": s.evictions as i64,
                "len": self.cache.len() as i64,
                "capacity": self.cache.capacity() as i64,
                "shards": self.cache.shard_count() as i64,
            }),
            "simulators": self.planner.simulator_count() as i64,
            "metrics": metrics,
        })
        .to_string()
    }
}

enum Answer {
    /// Blank line: answer nothing.
    Skip,
    /// Normal answer.
    Text(String),
    /// Answer, then stop the server.
    Shutdown(String),
}

/// A running planner server. Dropping the handle does **not** stop it; send
/// `{"query":"shutdown"}` or call [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads. Returns once the
    /// listener is live (so clients may connect immediately).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(&config));
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scenario-cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Signals shutdown and waits for the accept loop to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Self-dial to wake the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until a shutdown request arrives, then returns.
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.add(1);
        let conn_shared = Arc::clone(&shared);
        let addr = listener.local_addr().ok();
        conns.push(
            std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || {
                    if connection_loop(stream, &conn_shared) {
                        // This connection delivered the shutdown request:
                        // wake the accept loop so it can exit.
                        if let Some(addr) = addr {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                })
                .expect("spawn connection thread"),
        );
        conns.retain(|h| !h.is_finished());
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Serves one connection until EOF or shutdown. Returns true when this
/// connection requested server shutdown.
fn connection_loop(mut stream: TcpStream, shared: &Shared) -> bool {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut pending: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    let mut out: Vec<u8> = Vec::with_capacity(4096);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        };
        pending.extend_from_slice(&chunk[..n]);
        out.clear();
        let mut consumed = 0;
        let mut wants_shutdown = false;
        while let Some(nl) = pending[consumed..].iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&pending[consumed..consumed + nl]).into_owned();
            consumed += nl + 1;
            match shared.answer_line(&line) {
                Answer::Skip => {}
                Answer::Text(answer) => {
                    out.extend_from_slice(answer.as_bytes());
                    out.push(b'\n');
                }
                Answer::Shutdown(answer) => {
                    out.extend_from_slice(answer.as_bytes());
                    out.push(b'\n');
                    wants_shutdown = true;
                }
            }
            if wants_shutdown {
                break;
            }
        }
        pending.drain(..consumed);
        if !out.is_empty() && stream.write_all(&out).is_err() {
            return wants_shutdown;
        }
        if wants_shutdown {
            let _ = stream.flush();
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn start() -> Server {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 64,
            shards: 4,
        })
        .expect("bind ephemeral port")
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut payload = lines.join("\n");
        payload.push('\n');
        stream.write_all(payload.as_bytes()).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut answers = Vec::new();
        for _ in 0..lines.len() {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            answers.push(line.trim_end().to_string());
        }
        answers
    }

    #[test]
    fn serves_pipelined_queries_in_order_and_caches_repeats() {
        let mut server = start();
        let addr = server.local_addr();
        let q = r#"{"query":"plan"}"#;
        let answers = roundtrip(addr, &[q, q, r#"{"query":"estimate"}"#]);
        assert_eq!(answers[0], answers[1], "repeat query, identical bytes");
        assert!(answers[0].contains(r#""query":"plan""#));
        assert!(answers[2].contains(r#""query":"estimate""#));
        let stats = server.cache_stats();
        assert_eq!(stats.misses, 2);
        assert!(stats.hits >= 1);
        server.shutdown();
    }

    #[test]
    fn malformed_lines_answer_errors_without_dropping_the_connection() {
        let mut server = start();
        let addr = server.local_addr();
        let answers = roundtrip(
            addr,
            &[
                "this is not json",
                r#"{"query":"warp"}"#,
                r#"{"query":"plan"}"#,
            ],
        );
        assert!(answers[0].contains(r#""ok":false"#));
        assert!(answers[1].contains(r#""ok":false"#));
        assert!(answers[2].contains(r#""ok":true"#));
        server.shutdown();
    }

    #[test]
    fn stats_and_shutdown_control_queries_work_over_the_wire() {
        let mut server = start();
        let addr = server.local_addr();
        roundtrip(addr, &[r#"{"query":"plan"}"#]);
        let stats = roundtrip(addr, &[r#"{"query":"stats"}"#]);
        assert!(stats[0].contains(r#""cache""#) && stats[0].contains(r#""misses":1"#));
        let bye = roundtrip(addr, &[r#"{"query":"shutdown"}"#]);
        assert!(bye[0].contains(r#""query":"shutdown""#));
        server.wait(); // returns because the wire request stopped the server
        server.shutdown(); // idempotent
    }
}
