//! Declarative scenario specs: parse, validate, canonicalize, hash.
//!
//! A scenario spec is the wire-level description of one planner query —
//! model × recipe × GPU × dataset × parallelism × price overrides — sent as
//! a single JSON object. Parsing is strict (unknown fields and unknown
//! names are errors, not silently ignored), and the parsed spec is
//! **canonicalized**: every optional field is resolved to its concrete
//! default and aliases collapse to one spelling, so two requests that mean
//! the same scenario — whatever their field order or explicitness — produce
//! the same [`ScenarioSpec::canonical_key`] and therefore the same
//! [`ScenarioSpec::hash`]. That key is the contract of the scenario cache:
//! equal keys must return bit-identical answers.

use std::hash::Hasher;

use ftsim_cost::{Interconnect, Parallelism, Topology};
use ftsim_gpu::{CloudProvider, GpuSpec, PriceTable};
use ftsim_model::{presets, FineTuneConfig, ModelConfig};
use ftsim_tensor::pool::FxHasher;
use ftsim_workload::{presets as data, DatasetSpec};
use serde_json::Value;

/// The three query shapes the planner answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Memory planning: Eq. 1 max batch size and the memory breakdown.
    Plan,
    /// Cost estimation: simulate one step, derive throughput, hours, USD.
    Estimate,
    /// Batch sweep: throughput/cost at every feasible batch size.
    Sweep,
}

impl QueryKind {
    /// Lower-case wire name.
    pub fn key(&self) -> &'static str {
        match self {
            QueryKind::Plan => "plan",
            QueryKind::Estimate => "estimate",
            QueryKind::Sweep => "sweep",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Result<QueryKind, String> {
        match s {
            "plan" => Ok(QueryKind::Plan),
            "estimate" => Ok(QueryKind::Estimate),
            "sweep" => Ok(QueryKind::Sweep),
            other => Err(format!(
                "unknown query {other:?} (want plan, estimate, or sweep)"
            )),
        }
    }
}

/// Fine-tuning recipe names accepted in specs, mapping onto the paper's
/// four configurations.
pub const RECIPES: [&str; 4] = ["qlora-sparse", "qlora-dense", "full-sparse", "full-dense"];

/// A fully resolved (canonical) scenario. Every field holds its concrete
/// value — defaults already applied — so the canonical key is a pure
/// function of the scenario's meaning, not of how the request spelled it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Query shape.
    pub query: QueryKind,
    /// Canonical model id (`"mixtral-8x7b"` or `"blackmamba-2.8b"`).
    pub model: String,
    /// Canonical recipe id (one of [`RECIPES`]).
    pub recipe: String,
    /// Canonical GPU catalog name (e.g. `"A40"`).
    pub gpu: String,
    /// GPU memory override in GB (`0` = the catalog device's memory).
    pub gpu_mem_gb: u32,
    /// Canonical dataset id (e.g. `"commonsense_15k"`).
    pub dataset: String,
    /// Sequence length in tokens (defaults to the dataset median).
    pub seq_len: usize,
    /// Batch size (`0` = the Eq. 1 maximum for the scenario).
    pub batch: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// World size — the device count of the fleet (`"gpus"` and
    /// `"world_size"` are aliases on the wire).
    pub gpus: usize,
    /// Parallelism strategy for multi-GPU scenarios (default data).
    pub parallelism: Parallelism,
    /// Canonical interconnect name; `"auto"` on the wire resolves to the
    /// GPU class's realistic default (PCIe for A40, NVLink otherwise).
    pub link: String,
    /// Price book provider.
    pub provider: CloudProvider,
    /// Hourly price override in USD (bit pattern is part of the key).
    pub price_per_hour: Option<f64>,
}

fn as_str<'v>(field: &str, v: &'v Value) -> Result<&'v str, String> {
    match v {
        Value::String(s) => Ok(s.as_str()),
        other => Err(format!("field {field:?} must be a string, got {other}")),
    }
}

fn as_usize(field: &str, v: &Value) -> Result<usize, String> {
    match v {
        Value::Int(i) if *i >= 0 => Ok(*i as usize),
        other => Err(format!(
            "field {field:?} must be a nonnegative integer, got {other}"
        )),
    }
}

fn as_f64(field: &str, v: &Value) -> Result<f64, String> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) if f.is_finite() => Ok(*f),
        other => Err(format!(
            "field {field:?} must be a finite number, got {other}"
        )),
    }
}

fn canonical_model(name: &str) -> Result<&'static str, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "mixtral" | "mixtral-8x7b" => Ok("mixtral-8x7b"),
        "blackmamba" | "blackmamba-2.8b" => Ok("blackmamba-2.8b"),
        other => Err(format!(
            "unknown model {other:?} (want mixtral-8x7b or blackmamba-2.8b)"
        )),
    }
}

fn canonical_dataset(name: &str) -> Result<&'static str, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "cs" | "commonsense" | "commonsense_15k" => Ok("commonsense_15k"),
        "math" | "math_14k" => Ok("math_14k"),
        "he" | "hellaswag" => Ok("hellaswag"),
        "gs" | "gsm8k" => Ok("gsm8k"),
        "oo" | "openorca" => Ok("openorca"),
        other => Err(format!(
            "unknown dataset {other:?} (want commonsense_15k, math_14k, hellaswag, gsm8k, or openorca)"
        )),
    }
}

fn canonical_recipe(name: &str, model: &str) -> Result<String, String> {
    let lowered = name.trim().to_ascii_lowercase().replace('_', "-");
    if lowered == "paper" {
        // The paper's recipe for the model: QLoRA for the attention MoE,
        // full fine-tuning for the state-space MoE — both sparse top-2.
        return Ok(if model == "mixtral-8x7b" {
            "qlora-sparse".to_string()
        } else {
            "full-sparse".to_string()
        });
    }
    if RECIPES.contains(&lowered.as_str()) {
        return Ok(lowered);
    }
    Err(format!(
        "unknown recipe {name:?} (want paper, {})",
        RECIPES.join(", ")
    ))
}

impl ScenarioSpec {
    /// Parses and canonicalizes one request object. Strict: any unknown
    /// field, name, or malformed value is an error.
    pub fn parse(doc: &Value) -> Result<ScenarioSpec, String> {
        let Value::Object(entries) = doc else {
            return Err("request must be a JSON object".to_string());
        };
        let mut query = None;
        let mut model: Option<String> = None;
        let mut recipe_raw: Option<String> = None;
        let mut gpu: Option<String> = None;
        let mut gpu_mem_gb = 0u32;
        let mut dataset: Option<String> = None;
        let mut seq_len = 0usize;
        let mut batch = 0usize;
        let mut epochs = 10usize;
        let mut gpus: Option<(usize, &str)> = None;
        let mut parallelism = Parallelism::Data;
        let mut link_raw: Option<String> = None;
        let mut provider = CloudProvider::Cudo;
        let mut price_per_hour = None;
        let set_world = |gpus: &mut Option<(usize, &str)>,
                         field: &'static str,
                         n: usize|
         -> Result<(), String> {
            if n == 0 {
                return Err(format!("{field} must be at least 1"));
            }
            match gpus {
                Some((prev, prev_field)) if *prev != n => Err(format!(
                    "conflicting {prev_field}={prev} and {field}={n} (they are aliases)"
                )),
                _ => {
                    *gpus = Some((n, field));
                    Ok(())
                }
            }
        };
        for (key, value) in entries {
            match key.as_str() {
                "query" => query = Some(QueryKind::parse(as_str(key, value)?)?),
                "model" => model = Some(canonical_model(as_str(key, value)?)?.to_string()),
                "recipe" => recipe_raw = Some(as_str(key, value)?.to_string()),
                "gpu" => {
                    let name = as_str(key, value)?;
                    let spec = GpuSpec::by_name(name)
                        .ok_or_else(|| format!("unknown gpu {name:?} (want one of the catalog)"))?;
                    gpu = Some(spec.name);
                }
                "gpu_mem_gb" => gpu_mem_gb = as_usize(key, value)? as u32,
                "dataset" => dataset = Some(canonical_dataset(as_str(key, value)?)?.to_string()),
                "seq_len" => seq_len = as_usize(key, value)?,
                "batch" => batch = as_usize(key, value)?,
                "epochs" => {
                    epochs = as_usize(key, value)?;
                    if epochs == 0 {
                        return Err("epochs must be at least 1".to_string());
                    }
                }
                "gpus" => set_world(&mut gpus, "gpus", as_usize(key, value)?)?,
                "world_size" => set_world(&mut gpus, "world_size", as_usize(key, value)?)?,
                "parallelism" => parallelism = Parallelism::parse(as_str(key, value)?)?,
                "link" => {
                    let name = as_str(key, value)?;
                    if name.trim().eq_ignore_ascii_case("auto") {
                        link_raw = None;
                    } else {
                        let tier = Interconnect::by_name(name).ok_or_else(|| {
                            format!("unknown link {name:?} (want auto, nvlink, pcie, or ethernet)")
                        })?;
                        link_raw = Some(tier.name.to_string());
                    }
                }
                "provider" => provider = as_str(key, value)?.parse()?,
                "price_per_hour" => {
                    let p = as_f64(key, value)?;
                    if p <= 0.0 {
                        return Err("price_per_hour must be positive".to_string());
                    }
                    price_per_hour = Some(p);
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        let query = query.ok_or_else(|| "missing field \"query\"".to_string())?;
        let model = model.unwrap_or_else(|| "mixtral-8x7b".to_string());
        let recipe = canonical_recipe(recipe_raw.as_deref().unwrap_or("paper"), &model)?;
        let dataset = dataset.unwrap_or_else(|| "commonsense_15k".to_string());
        let gpu = gpu.unwrap_or_else(|| "A40".to_string());
        // `"auto"` (the default) canonicalizes to the concrete tier for the
        // device class, so explicit and implicit spellings share a key.
        let link = link_raw.unwrap_or_else(|| {
            Topology::default_link_for(&GpuSpec::by_name(&gpu).expect("canonical gpu name"))
                .name
                .to_string()
        });
        let spec = ScenarioSpec {
            query,
            recipe,
            gpu,
            gpu_mem_gb,
            seq_len: if seq_len > 0 {
                seq_len
            } else {
                dataset_by_id(&dataset).median_seq_len
            },
            dataset,
            model,
            batch,
            epochs,
            gpus: gpus.map_or(1, |(n, _)| n),
            parallelism,
            link,
            provider,
            price_per_hour,
        };
        Ok(spec)
    }

    /// Parses a request from its JSON text.
    pub fn parse_str(text: &str) -> Result<ScenarioSpec, String> {
        let doc = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        ScenarioSpec::parse(&doc)
    }

    /// The canonical cache-key text: every resolved field in a fixed order.
    /// Two specs with the same meaning render identically. Float overrides
    /// contribute their exact bit pattern, so "almost equal" prices are
    /// distinct scenarios rather than silent collisions.
    pub fn canonical_key(&self) -> String {
        format!(
            "q={};model={};recipe={};gpu={};mem={};ds={};seq={};batch={};epochs={};gpus={};par={};link={};prov={};price={}",
            self.query.key(),
            self.model,
            self.recipe,
            self.gpu,
            self.gpu_mem_gb,
            self.dataset,
            self.seq_len,
            self.batch,
            self.epochs,
            self.gpus,
            self.parallelism.key(),
            self.link,
            self.provider.key(),
            match self.price_per_hour {
                Some(p) => format!("{:016x}", p.to_bits()),
                None => "table".to_string(),
            },
        )
    }

    /// FxHash of the canonical key — the shard selector of the scenario
    /// cache (entries themselves are keyed by the full canonical text, so a
    /// 64-bit collision costs a shard neighbor, never a wrong answer).
    pub fn hash(&self) -> u64 {
        let mut hasher = FxHasher::default();
        hasher.write(self.canonical_key().as_bytes());
        hasher.finish()
    }

    /// The model architecture this scenario describes.
    pub fn model_config(&self) -> ModelConfig {
        match self.model.as_str() {
            "mixtral-8x7b" => presets::mixtral_8x7b(),
            _ => presets::blackmamba_2p8b(),
        }
    }

    /// The fine-tuning recipe this scenario describes.
    pub fn finetune_config(&self) -> FineTuneConfig {
        match self.recipe.as_str() {
            "qlora-sparse" => FineTuneConfig::qlora_sparse(),
            "qlora-dense" => FineTuneConfig::qlora_dense(),
            "full-sparse" => FineTuneConfig::full_sparse(),
            _ => FineTuneConfig::full_dense(),
        }
    }

    /// The GPU this scenario runs on (memory override applied).
    pub fn gpu_spec(&self) -> GpuSpec {
        let base = GpuSpec::by_name(&self.gpu).expect("canonical gpu name");
        if self.gpu_mem_gb > 0 {
            base.with_memory(f64::from(self.gpu_mem_gb))
        } else {
            base
        }
    }

    /// The dataset this scenario fine-tunes on.
    pub fn dataset_spec(&self) -> DatasetSpec {
        dataset_by_id(&self.dataset)
    }

    /// The interconnect tier this scenario's collectives cross.
    pub fn interconnect(&self) -> Interconnect {
        Interconnect::by_name(&self.link).expect("canonical link name")
    }

    /// The device fleet this scenario runs on: `gpus` copies of the
    /// (possibly memory-overridden) GPU joined by the canonical link.
    pub fn topology(&self) -> Topology {
        Topology::homogeneous(self.gpu_spec(), self.gpus, self.interconnect())
    }

    /// The hourly rate for this scenario: the explicit override if present,
    /// otherwise the provider's listed price for the GPU.
    pub fn usd_per_hour(&self) -> Option<f64> {
        if let Some(p) = self.price_per_hour {
            return Some(p);
        }
        PriceTable::for_provider(self.provider).usd_per_hour(&self.gpu)
    }
}

fn dataset_by_id(id: &str) -> DatasetSpec {
    match id {
        "commonsense_15k" => data::commonsense_15k(),
        "math_14k" => data::math_14k(),
        "hellaswag" => data::hellaswag(),
        "gsm8k" => data::gsm8k(),
        _ => data::openorca(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_to_the_paper_headline_scenario() {
        let spec = ScenarioSpec::parse_str(r#"{"query":"estimate"}"#).unwrap();
        assert_eq!(spec.model, "mixtral-8x7b");
        assert_eq!(spec.recipe, "qlora-sparse");
        assert_eq!(spec.gpu, "A40");
        assert_eq!(spec.dataset, "commonsense_15k");
        assert_eq!(spec.seq_len, 79, "CS median seq len");
        assert_eq!((spec.batch, spec.epochs, spec.gpus), (0, 10, 1));
        assert_eq!(spec.provider, CloudProvider::Cudo);
    }

    #[test]
    fn field_order_and_explicit_defaults_hash_identically() {
        let terse = ScenarioSpec::parse_str(r#"{"query":"plan","gpu":"a40"}"#).unwrap();
        let explicit = ScenarioSpec::parse_str(
            r#"{"gpu":"A40","epochs":10,"model":"Mixtral-8x7B","query":"plan",
               "dataset":"cs","recipe":"paper","seq_len":79,"batch":0,"gpus":1,
               "world_size":1,"parallelism":"data","link":"auto",
               "provider":"cudo","gpu_mem_gb":0}"#,
        )
        .unwrap();
        assert_eq!(terse.canonical_key(), explicit.canonical_key());
        assert_eq!(terse.hash(), explicit.hash());
    }

    #[test]
    fn different_scenarios_get_different_keys() {
        let a = ScenarioSpec::parse_str(r#"{"query":"plan"}"#).unwrap();
        let b = ScenarioSpec::parse_str(r#"{"query":"plan","gpu":"h100-80"}"#).unwrap();
        let c = ScenarioSpec::parse_str(r#"{"query":"estimate"}"#).unwrap();
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn price_override_is_keyed_by_bit_pattern() {
        let a = ScenarioSpec::parse_str(r#"{"query":"estimate","price_per_hour":0.79}"#).unwrap();
        let b = ScenarioSpec::parse_str(r#"{"query":"estimate","price_per_hour":0.80}"#).unwrap();
        let none = ScenarioSpec::parse_str(r#"{"query":"estimate"}"#).unwrap();
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), none.canonical_key());
        assert_eq!(a.usd_per_hour(), Some(0.79));
        assert_eq!(none.usd_per_hour(), Some(0.79), "CUDO A40 table rate");
    }

    #[test]
    fn world_size_is_an_alias_of_gpus() {
        let gpus = ScenarioSpec::parse_str(r#"{"query":"plan","gpus":4}"#).unwrap();
        let world = ScenarioSpec::parse_str(r#"{"query":"plan","world_size":4}"#).unwrap();
        let both = ScenarioSpec::parse_str(r#"{"query":"plan","gpus":4,"world_size":4}"#).unwrap();
        assert_eq!(gpus.canonical_key(), world.canonical_key());
        assert_eq!(gpus.canonical_key(), both.canonical_key());
        assert_eq!(gpus.hash(), world.hash());
        // Conflicting aliases are an error, not a silent pick.
        let err =
            ScenarioSpec::parse_str(r#"{"query":"plan","gpus":4,"world_size":8}"#).unwrap_err();
        assert!(err.contains("aliases"), "{err}");
    }

    #[test]
    fn parallelism_and_link_are_canonical_key_axes() {
        let data = ScenarioSpec::parse_str(r#"{"query":"plan","world_size":4}"#).unwrap();
        let expert =
            ScenarioSpec::parse_str(r#"{"query":"plan","world_size":4,"parallelism":"expert"}"#)
                .unwrap();
        let eth = ScenarioSpec::parse_str(r#"{"query":"plan","world_size":4,"link":"ethernet"}"#)
            .unwrap();
        assert_eq!(data.parallelism, Parallelism::Data, "default strategy");
        assert_ne!(data.canonical_key(), expert.canonical_key());
        assert_ne!(data.canonical_key(), eth.canonical_key());
        // Short spellings collapse to the canonical tier name.
        let ep = ScenarioSpec::parse_str(
            r#"{"query":"plan","world_size":4,"parallelism":"ep","link":"100gbe"}"#,
        )
        .unwrap();
        assert_eq!(ep.parallelism, Parallelism::Expert);
        assert_eq!(ep.link, "Ethernet100G");
        assert_eq!(ep.interconnect().name, "Ethernet100G");
    }

    #[test]
    fn auto_link_resolves_per_gpu_class() {
        let a40 = ScenarioSpec::parse_str(r#"{"query":"plan","link":"auto"}"#).unwrap();
        assert_eq!(a40.link, "PCIe4x16", "A40 boxes have no NVLink bridge");
        let h100 =
            ScenarioSpec::parse_str(r#"{"query":"plan","gpu":"h100-80","link":"auto"}"#).unwrap();
        assert_eq!(h100.link, "NVLink3");
        // Explicit auto and the implicit default share one key.
        let implicit = ScenarioSpec::parse_str(r#"{"query":"plan"}"#).unwrap();
        assert_eq!(a40.canonical_key(), implicit.canonical_key());
        let topo = h100.topology();
        assert_eq!(topo.world_size(), 1);
        assert_eq!(topo.link().name, "NVLink3");
    }

    #[test]
    fn paper_recipe_depends_on_the_model() {
        let mixtral = ScenarioSpec::parse_str(r#"{"query":"plan"}"#).unwrap();
        let mamba = ScenarioSpec::parse_str(r#"{"query":"plan","model":"blackmamba"}"#).unwrap();
        assert_eq!(mixtral.recipe, "qlora-sparse");
        assert_eq!(mamba.recipe, "full-sparse");
    }

    #[test]
    fn strict_parse_rejects_unknowns_and_bad_values() {
        for bad in [
            r#"{"query":"teleport"}"#,
            r#"{"query":"plan","modle":"mixtral"}"#,
            r#"{"query":"plan","gpu":"tpu-v5"}"#,
            r#"{"query":"plan","epochs":0}"#,
            r#"{"query":"plan","gpus":0}"#,
            r#"{"query":"plan","world_size":0}"#,
            r#"{"query":"plan","parallelism":"pipeline"}"#,
            r#"{"query":"plan","link":"carrier-pigeon"}"#,
            r#"{"query":"plan","price_per_hour":-1}"#,
            r#"{"model":"mixtral"}"#,
            r#"[1,2]"#,
        ] {
            assert!(ScenarioSpec::parse_str(bad).is_err(), "accepted: {bad}");
        }
    }
}
