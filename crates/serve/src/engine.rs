//! The planner engine: turns a canonical [`ScenarioSpec`] into a JSON
//! answer.
//!
//! Answers are **deterministic**: the JSON serializer keeps insertion
//! order, floats render through one code path, and every number derives
//! from the same deterministic cost model the batch experiments use. The
//! scenario cache relies on this — a cached answer must be bit-identical
//! to a fresh computation of the same spec.
//!
//! The engine also shares [`StepSimulator`]s across scenarios that differ
//! only in dataset, batch, price, or parallelism: simulators are pooled by
//! (model, recipe, gpu, memory), so their internal [`TraceCache`]s keep
//! amortizing kernel-grid construction even when the scenario-level cache
//! misses.
//!
//! [`TraceCache`]: ftsim_sim::TraceCache

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ftsim_cost::DistributedPlan;
use ftsim_gpu::CostModel;
use ftsim_model::MemoryModel;
use ftsim_sim::{Stage, StepSimulator};
use serde_json::{json, Value};

use crate::spec::{QueryKind, ScenarioSpec};

/// Stateful query engine. Cheap to share behind an `Arc`; all methods take
/// `&self`.
pub struct Planner {
    /// Simulators pooled by (model, recipe, gpu, mem) so scenario-cache
    /// misses still hit each simulator's internal trace cache.
    sims: Mutex<HashMap<String, Arc<StepSimulator>>>,
    /// Distributed plans pooled by (model, recipe); each plan pools its own
    /// per-placement simulators, so multi-GPU scenarios that differ only in
    /// world size, link, or strategy share priced traces.
    plans: Mutex<HashMap<String, Arc<DistributedPlan>>>,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

/// Largest number of batch sizes a sweep answer enumerates; wider feasible
/// ranges are sampled evenly (endpoints always included).
const SWEEP_MAX_POINTS: usize = 16;

fn err(spec: &ScenarioSpec, message: &str) -> String {
    json!({
        "ok": false,
        "query": spec.query.key(),
        "scenario": spec.canonical_key(),
        "error": message,
    })
    .to_string()
}

impl Planner {
    /// A planner with an empty simulator pool.
    pub fn new() -> Self {
        Planner {
            sims: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
        }
    }

    fn simulator(&self, spec: &ScenarioSpec) -> Arc<StepSimulator> {
        let key = format!(
            "{}|{}|{}|{}",
            spec.model, spec.recipe, spec.gpu, spec.gpu_mem_gb
        );
        let mut sims = self.sims.lock().unwrap();
        Arc::clone(sims.entry(key).or_insert_with(|| {
            Arc::new(StepSimulator::new(
                spec.model_config(),
                spec.finetune_config(),
                CostModel::new(spec.gpu_spec()),
            ))
        }))
    }

    /// Number of pooled simulators (distinct model × recipe × gpu combos).
    pub fn simulator_count(&self) -> usize {
        self.sims.lock().unwrap().len()
    }

    fn plan_for(&self, spec: &ScenarioSpec) -> Arc<DistributedPlan> {
        let key = format!("{}|{}", spec.model, spec.recipe);
        let mut plans = self.plans.lock().unwrap();
        Arc::clone(plans.entry(key).or_insert_with(|| {
            Arc::new(DistributedPlan::new(
                spec.model_config(),
                spec.finetune_config(),
            ))
        }))
    }

    /// Number of pooled distributed plans (distinct model × recipe combos
    /// that answered a multi-GPU query).
    pub fn plan_count(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    /// Computes the answer for `spec`. Deterministic: equal canonical specs
    /// produce byte-identical output. Never panics on domain errors — those
    /// return an `"ok": false` answer (which is cacheable like any other).
    pub fn answer(&self, spec: &ScenarioSpec) -> String {
        match spec.query {
            QueryKind::Plan => self.answer_plan(spec),
            QueryKind::Estimate => self.answer_estimate(spec),
            QueryKind::Sweep => self.answer_sweep(spec),
        }
    }

    fn answer_plan(&self, spec: &ScenarioSpec) -> String {
        if spec.gpus > 1 {
            return self.answer_plan_distributed(spec);
        }
        let model = spec.model_config();
        let ft = spec.finetune_config();
        let gpu = spec.gpu_spec();
        let mem = MemoryModel::new(&model, &ft);
        let max_batch = mem.max_batch_size(&gpu, spec.seq_len);
        let batch = if spec.batch > 0 {
            spec.batch
        } else {
            max_batch
        };
        let fits = max_batch >= 1 && batch <= max_batch;
        let bd = mem.breakdown(batch.max(1), spec.seq_len);
        json!({
            "ok": true,
            "query": "plan",
            "scenario": spec.canonical_key(),
            "model": model.name.clone(),
            "recipe": spec.recipe.clone(),
            "gpu": gpu.name,
            "gpu_mem_gb": gpu.mem_gb,
            "seq_len": spec.seq_len as i64,
            "trainable_params": ft.trainable_params(&model) as i64,
            "trainable_pct": ft.trainable_pct(&model),
            "max_batch": max_batch as i64,
            "batch": batch as i64,
            "fits": fits,
            "memory_gb": json!({
                "weights": bd.weights_gb,
                "adapters": bd.adapters_gb,
                "gradients": bd.gradients_gb,
                "optimizer": bd.optimizer_gb,
                "overhead": bd.overhead_gb,
                "activations": bd.activations_gb,
                "total": bd.total_gb(),
            }),
        })
        .to_string()
    }

    /// Multi-GPU memory planning: Eq. 1 over the LLMem-style partition.
    /// The answer reports the global max batch plus one rank's sharded /
    /// replicated footprint split.
    fn answer_plan_distributed(&self, spec: &ScenarioSpec) -> String {
        let plan = self.plan_for(spec);
        let topo = spec.topology();
        let model = spec.model_config();
        let ft = spec.finetune_config();
        let max_batch = plan.max_batch(&topo, spec.parallelism, spec.seq_len);
        let batch = if spec.batch > 0 {
            spec.batch
        } else {
            max_batch
        };
        let fits = max_batch >= 1 && batch <= max_batch;
        let part = plan.partition(&topo, spec.parallelism, batch.max(1), spec.seq_len);
        let rank = &part.per_device[0]; // homogeneous fleet: every rank equal
        json!({
            "ok": true,
            "query": "plan",
            "scenario": spec.canonical_key(),
            "model": model.name.clone(),
            "recipe": spec.recipe.clone(),
            "gpu": spec.gpu.clone(),
            "world_size": spec.gpus as i64,
            "parallelism": spec.parallelism.key(),
            "link": spec.link.clone(),
            "seq_len": spec.seq_len as i64,
            "trainable_params": ft.trainable_params(&model) as i64,
            "max_batch": max_batch as i64,
            "batch": batch as i64,
            "fits": fits,
            "per_device_memory_gb": json!({
                "capacity": rank.mem_gb,
                "sharded": rank.sharded_gb,
                "replicated": rank.replicated_gb,
                "total": rank.total_gb(),
            }),
            "single_device_total_gb": part.single_total_gb(),
        })
        .to_string()
    }

    /// Resolves the concrete batch for `spec`, or a domain error.
    fn resolve_batch(&self, spec: &ScenarioSpec) -> Result<(usize, usize), String> {
        let model = spec.model_config();
        let ft = spec.finetune_config();
        let mem = MemoryModel::new(&model, &ft);
        let max_batch = mem.max_batch_size(&spec.gpu_spec(), spec.seq_len);
        if max_batch == 0 {
            return Err(err(spec, "model does not fit on this GPU at batch 1"));
        }
        let batch = if spec.batch > 0 {
            spec.batch
        } else {
            max_batch
        };
        if batch > max_batch {
            return Err(err(
                spec,
                &format!("batch {batch} exceeds the Eq. 1 maximum {max_batch}"),
            ));
        }
        Ok((batch, max_batch))
    }

    fn no_price(&self, spec: &ScenarioSpec) -> String {
        err(
            spec,
            &format!(
                "no {} price for {} (pass price_per_hour to override)",
                spec.provider.key(),
                spec.gpu
            ),
        )
    }

    fn answer_estimate(&self, spec: &ScenarioSpec) -> String {
        if spec.gpus > 1 {
            return self.answer_estimate_distributed(spec);
        }
        let (batch, max_batch) = match self.resolve_batch(spec) {
            Ok(pair) => pair,
            Err(answer) => return answer,
        };
        let Some(usd_per_hour) = spec.usd_per_hour() else {
            return self.no_price(spec);
        };
        let sim = self.simulator(spec);
        let trace = sim.simulate_step(batch, spec.seq_len);
        let step_seconds = trace.total_seconds();
        let model = spec.model_config();
        let qps = batch as f64 / step_seconds;
        let ds = spec.dataset_spec();
        let total_queries = (spec.epochs * ds.num_queries) as f64;
        let hours = total_queries / qps / 3600.0;
        let usd = hours * usd_per_hour;
        json!({
            "ok": true,
            "query": "estimate",
            "scenario": spec.canonical_key(),
            "model": model.name,
            "recipe": spec.recipe.clone(),
            "gpu": spec.gpu.clone(),
            "dataset": ds.name,
            "seq_len": spec.seq_len as i64,
            "batch": batch as i64,
            "max_batch": max_batch as i64,
            "step_seconds": step_seconds,
            "forward_seconds": trace.stage_seconds(Stage::Forward),
            "backward_seconds": trace.stage_seconds(Stage::Backward),
            "optimizer_seconds": trace.stage_seconds(Stage::Optimizer),
            "kernels_per_step": trace.kernel_count() as i64,
            "gpus": 1,
            "queries_per_second": qps,
            "scaling_efficiency": 1.0,
            "epochs": spec.epochs as i64,
            "total_queries": total_queries,
            "usd_per_hour": usd_per_hour,
            "hours": hours,
            "usd": usd,
        })
        .to_string()
    }

    /// Multi-GPU estimate through the distributed step simulator: the
    /// batch is the **global** batch, resolved against the partitioned
    /// Eq. 1 maximum, and the step splits into compute + comm + bubble.
    fn answer_estimate_distributed(&self, spec: &ScenarioSpec) -> String {
        let plan = self.plan_for(spec);
        let topo = spec.topology();
        let par = spec.parallelism;
        let max_batch = plan.max_batch(&topo, par, spec.seq_len);
        if max_batch == 0 {
            return err(spec, "model does not fit on this fleet at global batch 1");
        }
        let batch = if spec.batch > 0 {
            spec.batch
        } else {
            max_batch
        };
        if batch > max_batch {
            return err(
                spec,
                &format!("global batch {batch} exceeds the partitioned Eq. 1 maximum {max_batch}"),
            );
        }
        let Some(usd_per_hour) = spec.usd_per_hour() else {
            return self.no_price(spec);
        };
        let step = plan.simulate_step(&topo, par, batch, spec.seq_len);
        let qps = step.queries_per_second();
        let ds = spec.dataset_spec();
        let total_queries = (spec.epochs * ds.num_queries) as f64;
        let hours = total_queries / qps / 3600.0;
        let usd = hours * usd_per_hour * spec.gpus as f64;
        json!({
            "ok": true,
            "query": "estimate",
            "scenario": spec.canonical_key(),
            "model": plan.model().name.clone(),
            "recipe": spec.recipe.clone(),
            "gpu": spec.gpu.clone(),
            "dataset": ds.name,
            "seq_len": spec.seq_len as i64,
            "batch": batch as i64,
            "per_device_batch": step.per_device_batch as i64,
            "max_batch": max_batch as i64,
            "world_size": spec.gpus as i64,
            "parallelism": spec.parallelism.key(),
            "link": spec.link.clone(),
            "step_seconds": step.total_seconds(),
            "compute_seconds": step.compute_seconds,
            "comm_seconds": step.comm_seconds,
            "bubble_seconds": step.bubble_seconds,
            "gpus": spec.gpus as i64,
            "queries_per_second": qps,
            "scaling_efficiency": step.compute_fraction(),
            "epochs": spec.epochs as i64,
            "total_queries": total_queries,
            "usd_per_hour": usd_per_hour,
            "hours": hours,
            "usd": usd,
        })
        .to_string()
    }

    fn answer_sweep(&self, spec: &ScenarioSpec) -> String {
        let model = spec.model_config();
        let ft = spec.finetune_config();
        let mem = MemoryModel::new(&model, &ft);
        let max_batch = mem.max_batch_size(&spec.gpu_spec(), spec.seq_len);
        if max_batch == 0 {
            return err(spec, "model does not fit on this GPU at batch 1");
        }
        let sim = self.simulator(spec);
        // Endpoints plus an even sample of the interior, deduplicated.
        let mut batches: Vec<usize> = if max_batch <= SWEEP_MAX_POINTS {
            (1..=max_batch).collect()
        } else {
            (0..SWEEP_MAX_POINTS)
                .map(|i| 1 + i * (max_batch - 1) / (SWEEP_MAX_POINTS - 1))
                .collect()
        };
        batches.dedup();
        let mut best: Option<(usize, f64)> = None;
        let points: Vec<Value> = batches
            .iter()
            .map(|&batch| {
                let trace = sim.simulate_step(batch, spec.seq_len);
                let step_seconds = trace.total_seconds();
                let qps = batch as f64 / step_seconds;
                if best.is_none_or(|(_, b)| qps > b) {
                    best = Some((batch, qps));
                }
                json!({
                    "batch": batch as i64,
                    "step_seconds": step_seconds,
                    "queries_per_second": qps,
                })
            })
            .collect();
        let (best_batch, best_qps) = best.expect("max_batch >= 1 yields at least one point");
        let ds = spec.dataset_spec();
        let total_queries = (spec.epochs * ds.num_queries) as f64;
        let cost = spec.usd_per_hour().map(|rate| {
            let hours = total_queries / best_qps / 3600.0;
            json!({
                "usd_per_hour": rate,
                "hours": hours,
                "usd": hours * rate,
            })
        });
        json!({
            "ok": true,
            "query": "sweep",
            "scenario": spec.canonical_key(),
            "model": model.name,
            "recipe": spec.recipe.clone(),
            "gpu": spec.gpu.clone(),
            "dataset": ds.name,
            "seq_len": spec.seq_len as i64,
            "max_batch": max_batch as i64,
            "points": points,
            "best_batch": best_batch as i64,
            "best_qps": best_qps,
            "cost_at_best": cost,
        })
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> ScenarioSpec {
        ScenarioSpec::parse_str(text).unwrap()
    }

    #[test]
    fn plan_answer_reports_feasible_batch_and_memory() {
        let planner = Planner::new();
        let answer = planner.answer(&spec(r#"{"query":"plan"}"#));
        let doc = serde_json::from_str(&answer).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("gpu"), Some(&Value::String("A40".into())));
        let max_batch = match doc.get("max_batch") {
            Some(Value::Int(n)) => *n,
            other => panic!("max_batch: {other:?}"),
        };
        assert!(max_batch >= 1, "QLoRA Mixtral fits on an A40");
        assert!(matches!(doc.get("fits"), Some(Value::Bool(true))));
    }

    #[test]
    fn estimate_answer_is_deterministic_and_priced() {
        let planner = Planner::new();
        let s = spec(r#"{"query":"estimate","dataset":"math"}"#);
        let a = planner.answer(&s);
        let b = planner.answer(&s);
        assert_eq!(a, b, "same spec, same bytes");
        let doc = serde_json::from_str(&a).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        for field in ["step_seconds", "queries_per_second", "hours", "usd"] {
            match doc.get(field) {
                Some(Value::Float(v)) => assert!(*v > 0.0, "{field} must be positive"),
                other => panic!("{field}: {other:?}"),
            }
        }
    }

    #[test]
    fn estimate_on_aws_a40_is_a_domain_error_not_a_panic() {
        // The paper's observation: AWS lists no A40. The answer is a
        // deterministic error document, so it caches like any result.
        let planner = Planner::new();
        let s = spec(r#"{"query":"estimate","provider":"aws"}"#);
        let answer = planner.answer(&s);
        let doc = serde_json::from_str(&answer).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(answer, planner.answer(&s));
    }

    #[test]
    fn price_override_unblocks_unlisted_gpus() {
        let planner = Planner::new();
        let s = spec(r#"{"query":"estimate","provider":"aws","price_per_hour":1.25}"#);
        let doc = serde_json::from_str(&planner.answer(&s)).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("usd_per_hour"), Some(&Value::Float(1.25)));
    }

    #[test]
    fn oversized_batch_is_rejected_with_the_limit() {
        let planner = Planner::new();
        let answer = planner.answer(&spec(r#"{"query":"estimate","batch":100000}"#));
        let doc = serde_json::from_str(&answer).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn sweep_covers_the_feasible_range_and_picks_a_best() {
        let planner = Planner::new();
        let answer = planner.answer(&spec(r#"{"query":"sweep"}"#));
        let doc = serde_json::from_str(&answer).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        let Some(Value::Array(points)) = doc.get("points") else {
            panic!("points missing");
        };
        assert!(!points.is_empty() && points.len() <= SWEEP_MAX_POINTS);
        let Some(Value::Int(first)) = points[0].get("batch") else {
            panic!("batch missing");
        };
        assert_eq!(*first, 1, "sweep starts at batch 1");
        let best = doc.get("best_qps");
        assert!(matches!(best, Some(Value::Float(q)) if *q > 0.0));
    }

    #[test]
    fn distributed_plan_partitions_memory_and_estimates_comm() {
        let planner = Planner::new();
        // Tensor parallelism shards the static state, so an 8-GPU fleet
        // admits a larger global batch than one device.
        let single = serde_json::from_str(&planner.answer(&spec(r#"{"query":"plan"}"#))).unwrap();
        let sharded = serde_json::from_str(&planner.answer(&spec(
            r#"{"query":"plan","world_size":8,"parallelism":"tensor"}"#,
        )))
        .unwrap();
        let max = |doc: &Value| match doc.get("max_batch") {
            Some(Value::Int(n)) => *n,
            other => panic!("max_batch: {other:?}"),
        };
        assert_eq!(sharded.get("ok"), Some(&Value::Bool(true)));
        assert!(
            max(&sharded) > max(&single),
            "sharding frees activation room"
        );
        assert_eq!(
            sharded.get("parallelism"),
            Some(&Value::String("tensor".into()))
        );
        assert!(sharded.get("per_device_memory_gb").is_some());

        // A multi-GPU estimate pays a communication tax and reports it.
        let est = serde_json::from_str(
            &planner.answer(&spec(r#"{"query":"estimate","world_size":4,"batch":8}"#)),
        )
        .unwrap();
        assert_eq!(est.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(est.get("link"), Some(&Value::String("PCIe4x16".into())));
        match est.get("comm_seconds") {
            Some(Value::Float(c)) => assert!(*c > 0.0, "4-way data parallel all-reduces"),
            other => panic!("comm_seconds: {other:?}"),
        }
        match est.get("scaling_efficiency") {
            Some(Value::Float(e)) => assert!(*e > 0.0 && *e < 1.0),
            other => panic!("scaling_efficiency: {other:?}"),
        }
        assert_eq!(planner.plan_count(), 1, "one model|recipe, one plan");
    }

    #[test]
    fn simulators_are_pooled_across_datasets_and_prices() {
        let planner = Planner::new();
        planner.answer(&spec(r#"{"query":"estimate"}"#));
        planner.answer(&spec(r#"{"query":"estimate","dataset":"math"}"#));
        planner.answer(&spec(r#"{"query":"estimate","price_per_hour":0.5}"#));
        assert_eq!(
            planner.simulator_count(),
            1,
            "same model|recipe|gpu shares one simulator"
        );
        planner.answer(&spec(r#"{"query":"estimate","gpu":"h100-80"}"#));
        assert_eq!(planner.simulator_count(), 2);
    }
}
