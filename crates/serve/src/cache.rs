//! Sharded scenario-hash LRU cache with request coalescing.
//!
//! The cache sits in front of the planner engine: the key is the scenario's
//! canonical text (see [`crate::spec::ScenarioSpec::canonical_key`]) and the
//! value is the finished JSON answer. The scenario hash picks the shard;
//! within a shard, entries are keyed by the full canonical string, so a
//! 64-bit hash collision costs at most a shard neighbor — never a wrong
//! answer.
//!
//! Misses are **coalesced** (single-flight): the first thread to miss a key
//! inserts a `Pending` marker and computes outside the shard lock; threads
//! that arrive while the computation is in flight park on the shard's
//! condvar and wake to the finished value instead of recomputing it. The
//! compute closure is deterministic, so whichever thread fills the entry,
//! every caller sees bit-identical bytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use ftsim_obs::Counter;
use ftsim_tensor::pool::FxBuildHasher;

/// One cached answer, or a marker that a thread is computing it.
enum Entry {
    /// A thread is computing this scenario; wait on the shard condvar.
    Pending,
    /// Finished answer plus its last-touched tick for LRU eviction.
    Ready { answer: Arc<str>, last_used: u64 },
}

struct Shard {
    map: HashMap<Arc<str>, Entry, FxBuildHasher>,
    /// Monotonic per-shard use counter; higher = more recently used.
    tick: u64,
}

/// Point-in-time counter values, for stats queries and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a `Ready` entry.
    pub hits: u64,
    /// Lookups that had to compute the answer.
    pub misses: u64,
    /// Lookups that parked behind another thread's in-flight compute.
    pub coalesced: u64,
    /// Entries discarded to stay within capacity.
    pub evictions: u64,
}

/// Sharded canonical-key → answer LRU cache.
pub struct ScenarioCache {
    shards: Vec<(Mutex<Shard>, Condvar)>,
    /// Max `Ready` entries per shard.
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    obs: OnceLock<[Counter; 4]>,
}

impl ScenarioCache {
    /// A cache holding at most `capacity` answers spread over `shards`
    /// shards (both clamped to at least 1; shards rounded to a power of
    /// two so shard selection is a mask).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        ScenarioCache {
            shards: (0..shards)
                .map(|_| {
                    (
                        Mutex::new(Shard {
                            map: HashMap::default(),
                            tick: 0,
                        }),
                        Condvar::new(),
                    )
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Total `Ready` + `Pending` entries the cache may hold.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current number of `Ready` entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|(m, _)| {
                m.lock()
                    .unwrap()
                    .map
                    .values()
                    .filter(|e| matches!(e, Entry::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// True when no shard holds a finished answer.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, hash: u64) -> &(Mutex<Shard>, Condvar) {
        // Top bits: FxHash's final multiply mixes best into the high half.
        let idx = (hash >> 48) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    fn bump(&self, which: usize) {
        let [hits, misses, coalesced, evictions] = self.obs.get_or_init(|| {
            let reg = ftsim_obs::registry();
            [
                reg.counter("serve.cache.hits"),
                reg.counter("serve.cache.misses"),
                reg.counter("serve.cache.coalesced"),
                reg.counter("serve.cache.evictions"),
            ]
        });
        let (local, mirror) = match which {
            0 => (&self.hits, hits),
            1 => (&self.misses, misses),
            2 => (&self.coalesced, coalesced),
            _ => (&self.evictions, evictions),
        };
        local.fetch_add(1, Ordering::Relaxed);
        if ftsim_obs::enabled() {
            mirror.add(1);
        }
    }

    /// Looks up `key` (whose scenario hash is `hash`), computing the answer
    /// with `compute` on a miss. Concurrent misses on the same key coalesce
    /// onto one computation. `compute` runs outside all shard locks and
    /// must be deterministic for the key.
    pub fn get_or_compute(
        &self,
        key: &str,
        hash: u64,
        compute: impl FnOnce() -> String,
    ) -> Arc<str> {
        let (lock, cvar) = self.shard_for(hash);
        let mut shard = lock.lock().unwrap();
        loop {
            shard.tick += 1;
            let tick = shard.tick;
            match shard.map.get_mut(key) {
                Some(Entry::Ready { answer, last_used }) => {
                    *last_used = tick;
                    let out = Arc::clone(answer);
                    drop(shard);
                    self.bump(0);
                    return out;
                }
                Some(Entry::Pending) => {
                    self.bump(2);
                    shard = cvar.wait(shard).unwrap();
                    // Re-check: the filler may have finished, or (if it
                    // panicked and removed the marker) we take over the miss.
                }
                None => break,
            }
        }
        let key: Arc<str> = Arc::from(key);
        shard.map.insert(Arc::clone(&key), Entry::Pending);
        drop(shard);
        self.bump(1);
        // Remove the Pending marker even if compute panics, so parked
        // waiters retake the miss instead of sleeping forever.
        struct Unpark<'a> {
            cache: &'a ScenarioCache,
            hash: u64,
            key: Arc<str>,
            filled: bool,
        }
        impl Drop for Unpark<'_> {
            fn drop(&mut self) {
                if !self.filled {
                    let (lock, cvar) = self.cache.shard_for(self.hash);
                    lock.lock().unwrap().map.remove(&self.key);
                    cvar.notify_all();
                }
            }
        }
        let mut guard = Unpark {
            cache: self,
            hash,
            key: Arc::clone(&key),
            filled: false,
        };
        let answer: Arc<str> = Arc::from(compute());
        guard.filled = true;
        drop(guard);

        let mut shard = lock.lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(
            key,
            Entry::Ready {
                answer: Arc::clone(&answer),
                last_used: tick,
            },
        );
        let mut ready = shard
            .map
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count();
        let mut evicted = 0u64;
        while ready > self.per_shard_capacity {
            let victim = shard
                .map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, Arc::clone(k))),
                    Entry::Pending => None,
                })
                .min_by_key(|(used, _)| *used)
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    shard.map.remove(&k);
                    ready -= 1;
                    evicted += 1;
                }
                None => break,
            }
        }
        drop(shard);
        cvar.notify_all();
        for _ in 0..evicted {
            self.bump(3);
        }
        answer
    }

    /// Returns the answer for `key` if already cached, without computing.
    /// Does not count as a hit or bump recency.
    pub fn peek(&self, key: &str, hash: u64) -> Option<Arc<str>> {
        let (lock, _) = self.shard_for(hash);
        let shard = lock.lock().unwrap();
        match shard.map.get(key) {
            Some(Entry::Ready { answer, .. }) => Some(Arc::clone(answer)),
            _ => None,
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    fn h(key: &str) -> u64 {
        let mut hasher = ftsim_tensor::pool::FxHasher::default();
        hasher.write(key.as_bytes());
        hasher.finish()
    }

    fn get(cache: &ScenarioCache, key: &str) -> String {
        cache
            .get_or_compute(key, h(key), || format!("answer:{key}"))
            .to_string()
    }

    #[test]
    fn hit_returns_the_cached_bytes_without_recompute() {
        let cache = ScenarioCache::new(8, 1);
        let first = cache.get_or_compute("k", h("k"), || "v1".to_string());
        let second = cache.get_or_compute("k", h("k"), || unreachable!("must not recompute"));
        assert_eq!(&*first, "v1");
        assert!(Arc::ptr_eq(&first, &second), "hit shares the same bytes");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let cache = ScenarioCache::new(2, 1);
        get(&cache, "a");
        get(&cache, "b");
        get(&cache, "a"); // refresh a: b is now the LRU entry
        get(&cache, "c"); // evicts b
        assert!(cache.peek("a", h("a")).is_some(), "a was refreshed");
        assert!(cache.peek("b", h("b")).is_none(), "b was the LRU victim");
        assert!(cache.peek("c", h("c")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_bounds_hold_under_churn() {
        let cache = ScenarioCache::new(16, 4);
        for i in 0..1000 {
            get(&cache, &format!("key-{i}"));
        }
        assert!(
            cache.len() <= cache.capacity(),
            "len {} exceeds capacity {}",
            cache.len(),
            cache.capacity()
        );
        let s = cache.stats();
        assert_eq!(s.misses, 1000);
        assert_eq!(s.evictions, 1000 - cache.len() as u64);
    }

    #[test]
    fn concurrent_hits_and_misses_account_exactly() {
        // ≥8 threads hammer a small universe of keys; every lookup is either
        // a hit, a miss, or a coalesced wait that resolves to a hit.
        let cache = Arc::new(ScenarioCache::new(64, 8));
        let threads = 8;
        let per_thread = 500;
        let keys: Vec<String> = (0..32).map(|i| format!("scenario-{i}")).collect();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                let keys = &keys;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = &keys[(i * 7 + t * 13) % keys.len()];
                        let got = cache.get_or_compute(key, h(key), || format!("answer:{key}"));
                        assert_eq!(&*got, &format!("answer:{key}"));
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(
            s.hits + s.misses,
            (threads * per_thread) as u64,
            "every lookup resolves as exactly one hit or one miss: {s:?}"
        );
        // Capacity (64) exceeds the key universe (32), so nothing evicts and
        // each key misses exactly once.
        assert_eq!(s.misses, keys.len() as u64);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn coalesced_misses_compute_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(ScenarioCache::new(8, 1));
        let computes = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(std::sync::Barrier::new(8));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    gate.wait();
                    let got = cache.get_or_compute("hot", h("hot"), || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the in-flight window so peers park on it.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        "v".to_string()
                    });
                    assert_eq!(&*got, "v");
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "single-flight: one compute serves all callers"
        );
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }
}
