//! End-to-end tests for planner-as-a-service: the determinism contract
//! (cached answers are bit-identical to freshly computed ones, across
//! planner instances) and the wire protocol over a real TCP socket.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;

use ftsim_serve::{Planner, ScenarioCache, ScenarioSpec, ServeConfig, Server};
use proptest::prelude::*;
use serde_json::Value;

const QUERIES: [&str; 3] = ["plan", "estimate", "sweep"];
const MODELS: [&str; 2] = ["mixtral-8x7b", "blackmamba-2.8b"];
const RECIPES: [&str; 4] = ["qlora-sparse", "qlora-dense", "full-sparse", "full-dense"];
const GPUS: [&str; 4] = ["A40", "A100-40GB", "A100-80GB", "H100-80GB"];
const DATASETS: [&str; 5] = [
    "commonsense_15k",
    "math_14k",
    "hellaswag",
    "gsm8k",
    "openorca",
];

fn request_line(
    query: &str,
    model: &str,
    recipe: &str,
    gpu: &str,
    dataset: &str,
    (batch, epochs, gpus): (usize, usize, usize),
) -> String {
    format!(
        concat!(
            "{{\"query\":\"{}\",\"model\":\"{}\",\"recipe\":\"{}\",\"gpu\":\"{}\",",
            "\"dataset\":\"{}\",\"batch\":{},\"epochs\":{},\"gpus\":{}}}"
        ),
        query, model, recipe, gpu, dataset, batch, epochs, gpus
    )
}

fn parse_spec(line: &str) -> ScenarioSpec {
    ScenarioSpec::parse_str(line).expect("generated request is valid")
}

/// Shared planners so the 64 property cases reuse pooled simulators
/// instead of rebuilding them per case.
fn planners() -> &'static (Planner, Planner) {
    static PLANNERS: OnceLock<(Planner, Planner)> = OnceLock::new();
    PLANNERS.get_or_init(|| (Planner::new(), Planner::new()))
}

proptest! {
    /// The acceptance property: for any scenario, the answer served
    /// through the LRU cache is byte-identical to one computed fresh by an
    /// *independent* planner instance — on the miss AND on the hit.
    fn prop_cached_answers_are_bit_identical_to_uncached(
        qi in 0usize..3,
        mi in 0usize..2,
        ri in 0usize..4,
        gi in 0usize..4,
        di in 0usize..5,
        batch in 0usize..5,
        epochs in 1usize..=12,
        gpus in 1usize..=8,
    ) {
        let line = request_line(
            QUERIES[qi], MODELS[mi], RECIPES[ri], GPUS[gi], DATASETS[di],
            (batch, epochs, gpus),
        );
        let spec = parse_spec(&line);
        let (cached_planner, fresh_planner) = planners();

        let cache = ScenarioCache::new(64, 4);
        let key = spec.canonical_key();
        let miss = cache.get_or_compute(&key, spec.hash(), || cached_planner.answer(&spec));
        let hit = cache.get_or_compute(&key, spec.hash(), || panic!("must be cached"));
        let fresh = fresh_planner.answer(&spec);

        prop_assert_eq!(miss.as_bytes(), fresh.as_bytes(), "miss != fresh for {}", line);
        prop_assert_eq!(hit.as_bytes(), fresh.as_bytes(), "hit != fresh for {}", line);
        let stats = cache.stats();
        prop_assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    /// Canonicalization property: aliases, reordered fields, and explicit
    /// defaults all collapse onto the same cache key, so equivalent
    /// requests share one cache slot.
    fn prop_aliases_and_field_order_share_a_cache_key(
        mi in 0usize..2,
        gi in 0usize..4,
        di in 0usize..5,
        epochs in 1usize..=12,
    ) {
        let alias_model = ["mixtral", "blackmamba"][mi];
        let alias_dataset = ["cs", "math", "hellaswag", "gsm8k", "openorca"][di];
        let full = parse_spec(&format!(
            "{{\"query\":\"plan\",\"model\":\"{}\",\"gpu\":\"{}\",\"dataset\":\"{}\",\"epochs\":{}}}",
            MODELS[mi], GPUS[gi], DATASETS[di], epochs,
        ));
        let aliased = parse_spec(&format!(
            "{{\"epochs\":{},\"dataset\":\"{}\",\"gpu\":\"{}\",\"model\":\"{}\",\"query\":\"plan\"}}",
            epochs, alias_dataset, GPUS[gi].to_lowercase(), alias_model,
        ));
        prop_assert_eq!(full.canonical_key(), aliased.canonical_key());
        prop_assert_eq!(full.hash(), aliased.hash());
    }

    /// Distributed axes canonicalize too: `world_size` is an alias of
    /// `gpus`, parallelism accepts short spellings, and an explicit link
    /// tier equals the auto-resolved one — all collapsing to one key.
    fn prop_distributed_axes_share_a_cache_key(
        world in 2usize..=16,
        pi in 0usize..3,
    ) {
        let (long_par, short_par) = [
            ("data", "dp"), ("tensor", "tp"), ("expert", "ep"),
        ][pi];
        let full = parse_spec(&format!(
            "{{\"query\":\"plan\",\"gpu\":\"A40\",\"gpus\":{},\"parallelism\":\"{}\",\"link\":\"pcie\"}}",
            world, long_par,
        ));
        let aliased = parse_spec(&format!(
            "{{\"query\":\"plan\",\"gpu\":\"a40\",\"world_size\":{},\"parallelism\":\"{}\",\"link\":\"auto\"}}",
            world, short_par,
        ));
        prop_assert_eq!(full.canonical_key(), aliased.canonical_key());
        prop_assert_eq!(full.hash(), aliased.hash());
    }
}

/// One client session against a real socket.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut answer = String::new();
        self.reader.read_line(&mut answer).expect("read");
        assert!(answer.ends_with('\n'), "answers are newline-framed");
        answer.trim_end().to_string()
    }
}

#[test]
fn tcp_round_trip_caches_and_reports_stats() {
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_capacity: 32,
        shards: 4,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    let mut client = Client::connect(addr);
    let request = request_line(
        "estimate",
        "mixtral-8x7b",
        "qlora-sparse",
        "A100-80GB",
        "math_14k",
        (0, 10, 2),
    );
    let first = client.roundtrip(&request);
    let second = client.roundtrip(&request);
    assert_eq!(first, second, "repeat queries are bit-identical");
    let doc: Value = serde_json::from_str(&first).expect("answer is JSON");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{first}");

    // A second connection hits the same cache entry.
    let mut other = Client::connect(addr);
    assert_eq!(other.roundtrip(&request), first);

    let stats: Value =
        serde_json::from_str(&client.roundtrip(r#"{"query":"stats"}"#)).expect("stats JSON");
    let cache = stats.get("cache").expect("cache section");
    let count = |k: &str| match cache.get(k) {
        Some(Value::Int(n)) => *n,
        other => panic!("cache.{k} missing or non-integer: {other:?}"),
    };
    assert_eq!(count("misses"), 1, "{stats:?}");
    assert_eq!(count("hits"), 2, "{stats:?}");

    client.roundtrip(r#"{"query":"shutdown"}"#);
    server.wait();
    assert_eq!(server.cache_stats().misses, 1);
}

#[test]
fn tcp_distributed_queries_share_one_cache_slot_across_spellings() {
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_capacity: 16,
        shards: 2,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr());

    // Same scenario, three spellings: gpus vs world_size alias, tensor vs
    // tp, implicit-auto vs explicit link tier. One miss, two hits.
    let canonical =
        client.roundtrip(r#"{"query":"plan","gpu":"A100-80GB","gpus":4,"parallelism":"tensor"}"#);
    let aliased = client.roundtrip(
        r#"{"query":"plan","gpu":"a100-80gb","world_size":4,"parallelism":"tp","link":"auto"}"#,
    );
    let explicit = client.roundtrip(
        r#"{"query":"plan","gpu":"A100-80GB","gpus":4,"parallelism":"tp","link":"nvlink"}"#,
    );
    assert_eq!(canonical, aliased);
    assert_eq!(canonical, explicit);
    let doc: Value = serde_json::from_str(&canonical).expect("answer is JSON");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{canonical}");
    assert_eq!(doc.get("world_size"), Some(&Value::Int(4)), "{canonical}");
    assert_eq!(
        doc.get("link"),
        Some(&Value::String("NVLink3".into())),
        "{canonical}"
    );

    let stats: Value =
        serde_json::from_str(&client.roundtrip(r#"{"query":"stats"}"#)).expect("stats JSON");
    let cache = stats.get("cache").expect("cache section");
    let count = |k: &str| match cache.get(k) {
        Some(Value::Int(n)) => *n,
        other => panic!("cache.{k} missing or non-integer: {other:?}"),
    };
    assert_eq!(count("misses"), 1, "{stats:?}");
    assert_eq!(count("hits"), 2, "{stats:?}");

    server.shutdown();
}

#[test]
fn tcp_malformed_and_domain_errors_answer_without_dropping_the_connection() {
    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_capacity: 8,
        shards: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.local_addr());

    let garbage = client.roundtrip("this is not json");
    assert!(garbage.starts_with(r#"{"ok":false"#), "{garbage}");

    // Domain error: AWS sells no A40 — a deterministic, cacheable answer.
    let no_price = client.roundtrip(r#"{"query":"estimate","gpu":"A40","provider":"aws"}"#);
    assert!(no_price.starts_with(r#"{"ok":false"#), "{no_price}");
    assert!(no_price.contains("price"), "{no_price}");

    // The connection still answers valid queries afterwards.
    let ok = client.roundtrip(r#"{"query":"plan","gpu":"A100-80GB"}"#);
    let doc: Value = serde_json::from_str(&ok).expect("JSON");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{ok}");

    server.shutdown();
}
