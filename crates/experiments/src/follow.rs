//! Live terminal view over a streaming event log (`repro profile --follow`).
//!
//! [`follow`] tails `profile_events.bin` with an [`ftsim_obs::LogReader`] —
//! from a second `repro` process or a same-process reader thread — folds
//! each record into a [`FollowView`], and re-renders a small dashboard:
//! sweep progress with an ETA, the live stage-breakdown percentages, the
//! training loop's loss/epoch/tokens-per-second, and the expert-imbalance
//! gauge. On a terminal the block redraws in place (ANSI cursor-up);
//! piped/CI output gets one compact status line per change instead. The
//! loop exits 0 when the writer's footer arrives (clean shutdown) and 1 if
//! the log goes silent past a stall deadline.

use std::io::{IsTerminal, Write as _};
use std::path::Path;
use std::time::{Duration, Instant};

use ftsim_obs::timeseries::now_ns;
use ftsim_obs::{Footer, LogReader, LogRecord, WindowedSeries};

/// Aggregated state of the stream so far — pure fold, separately testable.
#[derive(Debug, Default, Clone)]
pub struct FollowView {
    /// Records seen (all kinds).
    pub events: u64,
    /// Completed spans seen, and the most recent one's `cat/name`.
    pub spans: u64,
    pub last_span: String,
    counters: std::collections::BTreeMap<String, u64>,
    gauges: std::collections::BTreeMap<String, f64>,
    /// Rolling-window view of `serve.latency_us` histogram events, keyed by
    /// *receipt* time — the stream carries values, not timestamps, so the
    /// dashboard's qps/percentiles are as-observed-by-the-tail.
    serve_latency: Option<WindowedSeries>,
    /// Set once the writer shut down cleanly.
    pub footer: Option<Footer>,
}

impl FollowView {
    /// Folds one record into the view, stamping rate-sensitive records with
    /// the current clock.
    pub fn apply(&mut self, record: &LogRecord) {
        self.apply_at(record, now_ns());
    }

    /// [`FollowView::apply`] with an explicit receipt time (tests).
    pub fn apply_at(&mut self, record: &LogRecord, t_ns: u64) {
        self.events += 1;
        match record {
            LogRecord::Span { cat, name, .. } => {
                self.spans += 1;
                self.last_span = format!("{cat}/{name}");
            }
            LogRecord::Counter { name, delta } => {
                *self.counters.entry(name.clone()).or_insert(0) += delta;
            }
            LogRecord::Gauge { name, value } => {
                self.gauges.insert(name.clone(), *value);
            }
            LogRecord::Histogram { name, value } => {
                if name == "serve.latency_us" {
                    self.serve_latency
                        .get_or_insert_with(WindowedSeries::with_defaults)
                        .record_at(t_ns, *value);
                }
            }
        }
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Sweep progress as `(done, total)`, when the stream carries a sweep.
    pub fn sweep_progress(&self) -> Option<(u64, u64)> {
        let total = self.gauge("sim.sweep.points_total")? as u64;
        Some((self.counter("sim.sweep.points_done").min(total), total))
    }

    /// Naive ETA: elapsed scaled by the remaining fraction of sweep points.
    pub fn eta_seconds(&self, elapsed_s: f64) -> Option<f64> {
        let (done, total) = self.sweep_progress()?;
        if done == 0 || done >= total {
            return None;
        }
        Some(elapsed_s / done as f64 * (total - done) as f64)
    }

    /// Renders the dashboard block (no ANSI; the caller handles redraw).
    pub fn render(&self, elapsed_s: f64) -> String {
        self.render_at(elapsed_s, now_ns())
    }

    /// [`FollowView::render`] with an explicit "now" for the rolling
    /// windows (tests).
    pub fn render_at(&self, elapsed_s: f64, now_ns: u64) -> String {
        let mut out = String::new();
        let dropped = self.footer.map(|f| f.dropped_events).unwrap_or(0);
        out.push_str(&format!(
            "profile stream: {} events ({} spans, {} dropped)  [{elapsed_s:.1}s]\n",
            self.events, self.spans, dropped
        ));
        if let Some((done, total)) = self.sweep_progress() {
            let eta = match self.eta_seconds(elapsed_s) {
                Some(eta) => format!("  ETA {eta:.0}s"),
                None => String::new(),
            };
            let last = match (
                self.gauge("sim.sweep.last_batch"),
                self.gauge("sim.sweep.last_qps"),
            ) {
                (Some(b), Some(q)) => format!("  last batch {b:.0} @ {q:.2} qps"),
                _ => String::new(),
            };
            out.push_str(&format!("sweep: {done}/{total} points{last}{eta}\n"));
        }
        if let (Some(fwd), Some(bwd), Some(opt)) = (
            self.gauge("sim.step.forward_pct"),
            self.gauge("sim.step.backward_pct"),
            self.gauge("sim.step.optimizer_pct"),
        ) {
            out.push_str(&format!(
                "stages: fwd {fwd:.1}%  bwd {bwd:.1}%  opt {opt:.1}%\n"
            ));
        }
        let steps = self.counter("sim.train.steps");
        if steps > 0 {
            let epoch = self.gauge("sim.train.epoch").unwrap_or(0.0);
            let loss = self.gauge("sim.train.loss").unwrap_or(f64::NAN);
            let tps = self
                .gauge("sim.train.tokens_per_sec")
                .map(|t| format!("  {t:.0} tok/s"))
                .unwrap_or_default();
            let imb = self
                .gauge("sim.train.imbalance")
                .map(|v| format!("  imbalance {v:.4}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "train: epoch {epoch:.0}  step {steps}  loss {loss:.3}{tps}{imb}\n"
            ));
        }
        if let Some(series) = &self.serve_latency {
            // Rolling qps and percentiles over the last 10s of received
            // latency samples, plus the all-time count for context.
            if let Some(stats) = series.stats_at("10s", now_ns) {
                out.push_str(&format!(
                    "serve: {:.0} rps (10s)  p50 {:.0}us  p90 {:.0}us  p99 {:.0}us  [{} total]\n",
                    stats.rate_per_sec,
                    stats.p50,
                    stats.p90,
                    stats.p99,
                    series.total_sketch().count()
                ));
            }
        }
        if !self.last_span.is_empty() {
            out.push_str(&format!("last span: {}\n", self.last_span));
        }
        if let Some(f) = self.footer {
            out.push_str(&format!(
                "done: {} events written, {} dropped\n",
                f.events_written, f.dropped_events
            ));
            if f.dropped_events > 0 {
                out.push_str(&format!(
                    "dropped by category: {}\n",
                    f.dropped_by.describe()
                ));
            }
        }
        out
    }
}

/// Tails `path` until the writer's footer (exit 0) or a stall/missing-file
/// deadline (exit 1). `open_deadline` bounds the wait for the log file to
/// appear; the stall deadline for a log that stops growing is fixed at 120s.
pub fn follow(path: &Path, open_deadline: Duration) -> i32 {
    let start = Instant::now();
    let mut reader = loop {
        match LogReader::open(path) {
            Ok(r) => break r,
            Err(_) if start.elapsed() < open_deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("follow: {} never appeared: {e}", path.display());
                return 1;
            }
        }
    };

    let interactive = std::io::stdout().is_terminal();
    let mut view = FollowView::default();
    let mut last_render = String::new();
    let mut rendered_lines = 0usize;
    let mut last_progress = Instant::now();
    let stall = Duration::from_secs(120);
    loop {
        let batch = match reader.poll() {
            Ok(batch) => batch,
            Err(e) => {
                eprintln!("follow: {e}");
                return 1;
            }
        };
        if !batch.is_empty() {
            last_progress = Instant::now();
        }
        for record in &batch {
            view.apply(record);
        }
        view.footer = reader.footer();

        let frame = view.render(start.elapsed().as_secs_f64());
        if frame != last_render {
            let mut stdout = std::io::stdout().lock();
            if interactive {
                // Redraw in place: cursor up over the previous block, clear
                // to end of screen, reprint.
                if rendered_lines > 0 {
                    let _ = write!(stdout, "\x1b[{rendered_lines}A\x1b[J");
                }
                let _ = stdout.write_all(frame.as_bytes());
                rendered_lines = frame.lines().count();
            } else {
                // Non-interactive: one compact line per change.
                let _ = writeln!(stdout, "{}", frame.replace('\n', "  ").trim_end());
            }
            let _ = stdout.flush();
            last_render = frame;
        }

        if view.footer.is_some() {
            return 0;
        }
        if last_progress.elapsed() > stall {
            eprintln!(
                "follow: log stalled for {}s without a footer",
                stall.as_secs()
            );
            return 1;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge(name: &str, value: f64) -> LogRecord {
        LogRecord::Gauge {
            name: name.to_string(),
            value,
        }
    }

    fn counter(name: &str, delta: u64) -> LogRecord {
        LogRecord::Counter {
            name: name.to_string(),
            delta,
        }
    }

    #[test]
    fn view_folds_progress_and_computes_eta() {
        let mut v = FollowView::default();
        v.apply(&gauge("sim.sweep.points_total", 8.0));
        for _ in 0..2 {
            v.apply(&counter("sim.sweep.points_done", 1));
        }
        assert_eq!(v.sweep_progress(), Some((2, 8)));
        // 2 points in 10s -> 6 more take ~30s.
        assert!((v.eta_seconds(10.0).unwrap() - 30.0).abs() < 1e-9);
        // Complete: no ETA.
        for _ in 0..6 {
            v.apply(&counter("sim.sweep.points_done", 1));
        }
        assert_eq!(v.eta_seconds(40.0), None);
    }

    #[test]
    fn render_includes_each_section_only_when_data_arrived() {
        let mut v = FollowView::default();
        let empty = v.render(1.0);
        assert!(empty.contains("profile stream"));
        assert!(!empty.contains("sweep:"));
        assert!(!empty.contains("train:"));

        v.apply(&gauge("sim.sweep.points_total", 4.0));
        v.apply(&counter("sim.sweep.points_done", 1));
        v.apply(&gauge("sim.step.forward_pct", 60.0));
        v.apply(&gauge("sim.step.backward_pct", 38.0));
        v.apply(&gauge("sim.step.optimizer_pct", 2.0));
        v.apply(&counter("sim.train.steps", 5));
        v.apply(&gauge("sim.train.loss", 0.5));
        v.apply(&gauge("sim.train.imbalance", 0.01));
        v.apply(&LogRecord::Span {
            cat: "sim.step".to_string(),
            name: "simulate_step".to_string(),
            ts_ns: 0,
            dur_ns: 1,
            tid: 0,
            depth: 0,
        });
        let full = v.render(2.0);
        assert!(full.contains("sweep: 1/4 points"), "{full}");
        assert!(full.contains("fwd 60.0%"), "{full}");
        assert!(full.contains("loss 0.500"), "{full}");
        assert!(full.contains("imbalance 0.0100"), "{full}");
        assert!(full.contains("last span: sim.step/simulate_step"), "{full}");
    }

    #[test]
    fn serve_latency_section_shows_rolling_qps_and_percentiles() {
        const SEC: u64 = 1_000_000_000;
        let mut v = FollowView::default();
        assert!(
            !v.render_at(1.0, SEC).contains("serve:"),
            "no section before any latency samples"
        );
        // 50 samples of 100us received over one second: 5 rps over the 10s
        // window once they are all in.
        for i in 0..50u64 {
            v.apply_at(
                &LogRecord::Histogram {
                    name: "serve.latency_us".to_string(),
                    value: 100.0,
                },
                i * 20_000_000,
            );
        }
        // Other histograms don't feed the serve section.
        v.apply_at(
            &LogRecord::Histogram {
                name: "other.hist".to_string(),
                value: 9e9,
            },
            SEC,
        );
        let out = v.render_at(2.0, SEC);
        assert!(out.contains("serve: 5 rps (10s)"), "{out}");
        assert!(out.contains("p99 "), "{out}");
        assert!(out.contains("[50 total]"), "{out}");
        // Thirty seconds later the 10s window is empty; the total remains.
        let late = v.render_at(31.0, 31 * SEC);
        assert!(late.contains("serve: 0 rps (10s)"), "{late}");
        assert!(late.contains("[50 total]"), "{late}");
    }

    #[test]
    fn footer_renders_the_done_line() {
        let v = FollowView {
            footer: Some(Footer {
                events_written: 10,
                dropped_events: 2,
                dropped_by: ftsim_obs::DroppedCounts {
                    spans: 2,
                    ..Default::default()
                },
                ..Default::default()
            }),
            ..Default::default()
        };
        let out = v.render(1.0);
        assert!(out.contains("done: 10 events written, 2 dropped"), "{out}");
        assert!(
            out.contains("dropped by category: spans=2 counters=0 gauges=0 histograms=0"),
            "{out}"
        );
    }

    #[test]
    fn follow_exits_nonzero_when_the_log_never_appears() {
        let path = std::env::temp_dir().join("ftsim-follow-missing.bin");
        let _ = std::fs::remove_file(&path);
        assert_eq!(follow(&path, Duration::from_millis(50)), 1);
    }
}
