//! `repro` — regenerates the paper's tables and figures from the ftsim
//! stack.
//!
//! ```text
//! repro all            # run everything, write results/*.json
//! repro fig8 table4    # run selected experiments
//! repro --list         # list experiment ids
//! ```
//!
//! Experiments are independent, so they fan out across the engine's worker
//! threads (`FTSIM_THREADS`); reports and artifacts are emitted in input
//! order, byte-identical to a serial run.

use ftsim_experiments::{experiment_ids, extra_experiment_ids, run, ARTIFACTS_KEY};
use ftsim_sim::parallel_map;
use serde_json::Value;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] [--out DIR] <all | id...>");
        eprintln!("ids: {}", experiment_ids().join(" "));
        eprintln!("extra (not in `all`): {}", extra_experiment_ids().join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiment_ids().into_iter().chain(extra_experiment_ids()) {
            println!("{id}");
        }
        return;
    }

    let mut out_dir = String::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = it.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                });
            }
            "all" => ids = experiment_ids().iter().map(|s| s.to_string()).collect(),
            other => ids.push(other.to_string()),
        }
    }

    let valid = experiment_ids();
    let extra = extra_experiment_ids();
    for id in &ids {
        if !valid.contains(&id.as_str()) && !extra.contains(&id.as_str()) {
            eprintln!("unknown experiment id {id:?}; use --list");
            std::process::exit(2);
        }
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        std::process::exit(1);
    }

    // Run the experiments in parallel, then report serially in input order.
    let results = parallel_map(&ids, |id| run(id));
    for result in &results {
        println!("== {} ==", result.title);
        println!("{}", result.text);

        // Extra named artifacts (e.g. the profile's Chrome trace) become
        // their own files, and are stripped from the main `{id}.json` so the
        // (potentially multi-megabyte) documents are not duplicated.
        let mut doc = result.json.clone();
        if let Value::Object(entries) = &mut doc {
            entries.retain(|(k, _)| k != ARTIFACTS_KEY);
        }
        if let Some(Value::Object(artifacts)) = result.json.get(ARTIFACTS_KEY) {
            for (name, value) in artifacts {
                let path = Path::new(&out_dir).join(name);
                // A string artifact is pre-rendered (raw file body); anything
                // else is serialized as pretty JSON.
                let body = match value {
                    Value::String(s) => s.clone(),
                    other => match serde_json::to_string_pretty(other) {
                        Ok(body) => body,
                        Err(e) => {
                            eprintln!("warning: cannot serialize {name}: {e}");
                            continue;
                        }
                    },
                };
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    println!("[artifact: {}]", path.display());
                }
            }
        }

        let path = Path::new(&out_dir).join(format!("{}.json", result.id));
        match serde_json::to_string_pretty(&doc) {
            Ok(body) => {
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    println!("[artifact: {}]\n", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {}: {e}", result.id),
        }
    }
}
