//! `repro` — regenerates the paper's tables and figures from the ftsim
//! stack.
//!
//! ```text
//! repro all                  # run everything, write results/*.json
//! repro fig8 table4          # run selected experiments
//! repro --list               # list experiment ids
//! repro profile --follow     # profile with a live in-process dashboard
//! repro --follow             # tail a live run from a second process
//! repro obs-diff a.json b.json   # metrics regression gate (exit 1 on fail)
//! repro serve                # planner-as-a-service TCP endpoint
//! repro loadgen --out results    # benchmark it, write bench_serve.json
//! ```
//!
//! Experiments are independent, so they fan out across the engine's worker
//! threads (`FTSIM_THREADS`); reports and artifacts are emitted in input
//! order, byte-identical to a serial run. When the selection includes
//! `profile`, every observability event additionally streams through a
//! lock-free ring buffer into `<out>/profile_events.bin` while the run is
//! live, and the log is replayed into `<out>/profile_flame.txt` afterwards.

use ftsim_experiments::cli::{self, Command};
use ftsim_experiments::{follow, run, ARTIFACTS_KEY};
use ftsim_obs::{BinLogWriter, RingBuffer, RingSink};
use ftsim_sim::parallel_map;
use serde_json::Value;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Event-log filename under the output directory (shared with `--follow`).
const EVENT_LOG: &str = "profile_events.bin";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    match command {
        Command::Help { exit_code } => {
            eprintln!("{}", cli::usage());
            std::process::exit(exit_code);
        }
        Command::List => {
            for id in ftsim_experiments::experiment_ids()
                .into_iter()
                .chain(ftsim_experiments::extra_experiment_ids())
            {
                println!("{id}");
            }
        }
        Command::Follow { out_dir } => {
            let path = Path::new(&out_dir).join(EVENT_LOG);
            std::process::exit(follow::follow(&path, Duration::from_secs(60)));
        }
        Command::ObsDiff {
            baseline,
            current,
            config,
            log,
        } => {
            let exit = obs_diff(&baseline, &current, &config, log.as_deref());
            std::process::exit(exit);
        }
        Command::Serve { config, events } => {
            std::process::exit(serve(config, events.as_deref()));
        }
        Command::Loadgen { config } => {
            std::process::exit(loadgen(&config));
        }
        Command::Run {
            ids,
            out_dir,
            follow,
        } => {
            let exit = run_experiments(&ids, &out_dir, follow);
            std::process::exit(exit);
        }
    }
}

fn obs_diff(
    baseline: &str,
    current: &str,
    config: &ftsim_obs::DiffConfig,
    log: Option<&str>,
) -> i32 {
    let load = |path: &str| {
        cli::load_snapshot(path).unwrap_or_else(|e| {
            eprintln!("obs-diff: {e}");
            std::process::exit(2);
        })
    };
    let mut report = ftsim_obs::compare(&load(baseline), &load(current), config);
    // `--log` annotates the report with the event stream's honesty footer:
    // how many events the ring dropped, by category. Informational only —
    // drops mean the *log* undercounts, not that the metrics regressed.
    if let Some(log) = log {
        match ftsim_obs::replay(Path::new(log)) {
            Ok((_, Some(footer))) => {
                report.notes.push(format!(
                    "event log {log}: {} events written, {} dropped",
                    footer.events_written, footer.dropped_events
                ));
                if footer.dropped_events > 0 {
                    report.notes.push(format!(
                        "dropped by category: {}",
                        footer.dropped_by.describe()
                    ));
                }
                if footer.sampler_dropped_by.total() > 0 {
                    report.notes.push(format!(
                        "sampler suppressed by category: {}",
                        footer.sampler_dropped_by.describe()
                    ));
                }
            }
            Ok((_, None)) => report
                .notes
                .push(format!("event log {log}: no footer (unclean shutdown)")),
            Err(e) => {
                eprintln!("obs-diff: cannot replay {log}: {e}");
                return 2;
            }
        }
    }
    print!("{}", report.to_text());
    i32::from(report.has_regressions())
}

fn serve(config: ftsim_serve::ServeConfig, events: Option<&str>) -> i32 {
    ftsim_obs::enable();
    // `--events`: stream per-request phase events through the adaptive
    // sampler + ring into a binary log while the server runs. Producers
    // (connection threads) never block: overload is thinned by the sampler
    // first, dropped by the ring second, and both losses are tallied
    // exactly in the log's footer.
    let writer = events.and_then(|path| {
        let ring = Arc::new(RingBuffer::with_capacity(1 << 16));
        let sampler = Arc::new(ftsim_obs::Sampler::new(ftsim_obs::SamplerConfig::default()));
        match BinLogWriter::spawn_with_sampler(
            path,
            Arc::clone(&ring),
            Duration::from_millis(25),
            Arc::clone(&sampler),
        ) {
            Ok(writer) => {
                ftsim_obs::set_sink(Arc::new(RingSink::with_sampler(ring, sampler)));
                Some(writer)
            }
            Err(e) => {
                eprintln!("warning: cannot open {path}: {e}");
                None
            }
        }
    });
    let mut server = match ftsim_serve::Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot start: {e}");
            return 1;
        }
    };
    println!("serve: listening on {}", server.local_addr());
    // Runs until a client sends {"query":"shutdown"}.
    server.wait();
    let stats = server.cache_stats();
    println!(
        "serve: done — {} hits, {} misses, {} coalesced, {} evictions",
        stats.hits, stats.misses, stats.coalesced, stats.evictions
    );
    if let Some(writer) = writer {
        ftsim_obs::clear_sink();
        match writer.finish() {
            Ok(stats) => println!(
                "[event log: {} events written, {} ring-dropped; sampler kept {} / suppressed {}]",
                stats.events_written,
                stats.dropped_events,
                stats.sampled_by.total(),
                stats.sampler_dropped_by.total()
            ),
            Err(e) => eprintln!("warning: event log shutdown failed: {e}"),
        }
    }
    0
}

fn loadgen(config: &ftsim_serve::LoadgenConfig) -> i32 {
    ftsim_obs::enable();
    let report = match ftsim_serve::loadgen::run(config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return 1;
        }
    };
    println!(
        "loadgen: {} requests in {:.3}s — {:.0} qps, p50 {:.0}us p90 {:.0}us p99 {:.0}us max {:.0}us, {} errors",
        report.requests,
        report.elapsed_secs,
        report.qps,
        report.p50_us,
        report.p90_us,
        report.p99_us,
        report.max_us,
        report.errors
    );
    i32::from(report.errors > 0)
}

fn run_experiments(ids: &[String], out_dir: &str, follow_requested: bool) -> i32 {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return 1;
    }

    // The profile experiment streams: install the ring sink and the drain
    // thread before anything runs, so the log carries events *while* the
    // run is in progress (that is what `--follow` tails).
    let log_path = Path::new(out_dir).join(EVENT_LOG);
    let streaming = ids.iter().any(|id| id == "profile");
    let writer = if streaming {
        let ring = Arc::new(RingBuffer::with_capacity(1 << 16));
        match BinLogWriter::spawn(&log_path, Arc::clone(&ring), Duration::from_millis(25)) {
            Ok(writer) => {
                ftsim_obs::set_sink(Arc::new(RingSink::new(ring)));
                Some(writer)
            }
            Err(e) => {
                eprintln!("warning: cannot open {}: {e}", log_path.display());
                None
            }
        }
    } else {
        None
    };
    if follow_requested && writer.is_none() {
        eprintln!("warning: --follow needs the `profile` experiment in the selection; ignoring");
    }
    let follower = (follow_requested && writer.is_some()).then(|| {
        let path = log_path.clone();
        std::thread::spawn(move || follow::follow(&path, Duration::from_secs(60)))
    });

    // Run the experiments in parallel, then report serially in input order.
    let results = parallel_map(ids, |id| run(id));

    // Clean shutdown of the stream before reporting: drain, footer, flush —
    // the follower (here or in another process) sees the footer and exits.
    if let Some(writer) = writer {
        ftsim_obs::clear_sink();
        match writer.finish() {
            Ok(stats) => {
                println!(
                    "[event log: {} — {} events, {} dropped]",
                    log_path.display(),
                    stats.events_written,
                    stats.dropped_events
                );
                if stats.dropped_events > 0 {
                    println!(
                        "[event log drops by category: {}]",
                        stats.dropped_by.describe()
                    );
                }
            }
            Err(e) => eprintln!("warning: event log shutdown failed: {e}"),
        }
        export_flamegraph(&log_path, out_dir);
    }
    if let Some(follower) = follower {
        match follower.join() {
            Ok(0) => {}
            Ok(code) => eprintln!("warning: follower exited with {code}"),
            Err(_) => eprintln!("warning: follower thread panicked"),
        }
    }

    for result in &results {
        println!("== {} ==", result.title);
        println!("{}", result.text);

        // Extra named artifacts (e.g. the profile's Chrome trace) become
        // their own files, and are stripped from the main `{id}.json` so the
        // (potentially multi-megabyte) documents are not duplicated.
        let mut doc = result.json.clone();
        if let Value::Object(entries) = &mut doc {
            entries.retain(|(k, _)| k != ARTIFACTS_KEY);
        }
        if let Some(Value::Object(artifacts)) = result.json.get(ARTIFACTS_KEY) {
            for (name, value) in artifacts {
                let path = Path::new(out_dir).join(name);
                // A string artifact is pre-rendered (raw file body); anything
                // else is serialized as pretty JSON.
                let body = match value {
                    Value::String(s) => s.clone(),
                    other => match serde_json::to_string_pretty(other) {
                        Ok(body) => body,
                        Err(e) => {
                            eprintln!("warning: cannot serialize {name}: {e}");
                            continue;
                        }
                    },
                };
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    println!("[artifact: {}]", path.display());
                }
            }
        }

        let path = Path::new(out_dir).join(format!("{}.json", result.id));
        match serde_json::to_string_pretty(&doc) {
            Ok(body) => {
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    println!("[artifact: {}]\n", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {}: {e}", result.id),
        }
    }
    0
}

/// Replays the event log into a collapsed-stack flamegraph
/// (`profile_flame.txt`, `flamegraph.pl`/inferno-compatible). Stacks from
/// a thinned log (ring drops or sampler suppression) carry an
/// `_(~Nx_undercounted)` suffix so they cannot pass for complete data.
fn export_flamegraph(log_path: &Path, out_dir: &str) {
    let (records, footer) = match ftsim_obs::replay(log_path) {
        Ok(replayed) => replayed,
        Err(e) => {
            eprintln!("warning: cannot replay {}: {e}", log_path.display());
            return;
        }
    };
    let flame = ftsim_obs::flame::collapse_annotated(&records, footer.as_ref());
    let path = Path::new(out_dir).join("profile_flame.txt");
    match std::fs::write(&path, flame.to_collapsed()) {
        Ok(()) => println!(
            "[artifact: {} — {} stacks]",
            path.display(),
            flame.stacks().len()
        ),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
