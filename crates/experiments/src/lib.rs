//! Experiment implementations behind the `repro` binary: one function per
//! table/figure of the paper, each returning a human-readable report and a
//! JSON artifact.

use ftsim_cost::{
    validate_combo, BatchSample, CostTable, FineTuneJob, MaxBatchModel, MemoryProjection,
    ThroughputModel,
};
use ftsim_gpu::{Breakdown, CloudProvider, CostModel, GpuSpec, PriceTable};
use ftsim_model::{presets as models, FineTuneConfig, MemoryModel, ModelConfig, Sparsity};
use ftsim_sim::report::moe_utilization_table;
use ftsim_sim::{
    moetrain, routing, MoeTrainConfig, SensitivityStudy, StepSimulator, ThroughputSweep,
    TrainabilityMatrix,
};
use ftsim_workload::{presets as data, SeqLenDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::fmt::Write as _;

pub mod cli;
pub mod follow;

/// The output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Short id (`"table1"`, `"fig8"`, …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Formatted report text.
    pub text: String,
    /// Machine-readable artifact.
    pub json: Value,
}

/// All experiment ids in paper order.
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "table1",
        "table2",
        "fig2",
        "fig3",
        "table3",
        "fig4",
        "fig5",
        "fig6",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig13",
        "fig14",
        "fig15",
        "table4",
        "sensitivity",
        "ablation",
        "scaleout",
        "cluster",
        "alltoall",
    ]
}

/// Extra experiment ids that `repro` accepts but `repro all` skips: these
/// measure the simulator itself (wall-clock timings), not the paper, so
/// they would make the default artifact set nondeterministic.
pub fn extra_experiment_ids() -> Vec<&'static str> {
    vec!["bench_engine", "bench_tensor", "profile"]
}

/// Key under which an experiment's JSON may carry extra named artifacts
/// (`{filename: document}`); the `repro` binary writes each entry as its own
/// file next to `{id}.json` and strips the key from `{id}.json` itself.
pub const ARTIFACTS_KEY: &str = "artifacts";

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id; use [`experiment_ids`] for the valid set.
pub fn run(id: &str) -> ExperimentResult {
    match id {
        "table1" => table1(),
        "table2" => table2(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "table3" => table3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "table4" => table4(),
        "sensitivity" => sensitivity(),
        "ablation" => ablation(),
        "scaleout" => scaleout(),
        "cluster" => cluster(),
        "alltoall" => alltoall(),
        "bench_engine" => bench_engine(),
        "bench_tensor" => bench_tensor(),
        "profile" => profile(),
        other => panic!("unknown experiment id {other:?}"),
    }
}

fn a40() -> CostModel {
    CostModel::new(GpuSpec::a40())
}

fn paper_recipe(model: &ModelConfig, sparse: bool) -> FineTuneConfig {
    let s = if sparse {
        Sparsity::TopK(2)
    } else {
        Sparsity::Dense
    };
    FineTuneConfig::for_model(model, s)
}

fn sim_for(model: &ModelConfig, sparse: bool, gpu: GpuSpec) -> StepSimulator {
    StepSimulator::new(
        model.clone(),
        paper_recipe(model, sparse),
        CostModel::new(gpu),
    )
}

/// The four (model, sparsity) combinations of the paper's runtime studies.
fn combos() -> Vec<(&'static str, ModelConfig, bool)> {
    vec![
        ("Mixtral-D", models::mixtral_8x7b(), false),
        ("Mixtral-S", models::mixtral_8x7b(), true),
        ("BlackMamba-D", models::blackmamba_2p8b(), false),
        ("BlackMamba-S", models::blackmamba_2p8b(), true),
    ]
}

/// Max batch size for a combo on a GPU at a sequence length.
fn max_batch(model: &ModelConfig, sparse: bool, gpu: &GpuSpec, seq: usize) -> usize {
    MemoryModel::new(model, &paper_recipe(model, sparse)).max_batch_size(gpu, seq)
}

// ---------------------------------------------------------------- Table I

fn table1() -> ExperimentResult {
    let mut text = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(
        text,
        "{:<16} {:>9} {:>12} {:>8} {:>9}",
        "model", "#params", "mem", "#layers", "#experts"
    );
    for m in models::all() {
        let ft = FineTuneConfig::for_model(&m, Sparsity::TopK(2));
        let mem = MemoryModel::new(&m, &ft);
        let counts = m.param_counts();
        let _ = writeln!(
            text,
            "{:<16} {:>8.1}B {:>10.2}GB {:>8} {:>9}",
            m.name,
            counts.total() as f64 / 1e9,
            mem.weights_gb(),
            m.num_layers,
            m.moe.num_experts
        );
        rows.push(json!({
            "model": m.name,
            "params_b": counts.total() as f64 / 1e9,
            "weights_gb": mem.weights_gb(),
            "layers": m.num_layers,
            "experts": m.moe.num_experts,
        }));
    }
    let _ = writeln!(
        text,
        "paper: Mixtral 47B / 23.35GB / 32 layers; BlackMamba 2.8B / 5.6GB / 18 layers"
    );
    ExperimentResult {
        id: "table1",
        title: "Table I: LLM models",
        text,
        json: json!({ "rows": rows }),
    }
}

// --------------------------------------------------------------- Table II

fn table2() -> ExperimentResult {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{:<18} {:>9} {:>11} {:>14}",
        "dataset", "#queries", "median len", "type"
    );
    let rows: Vec<Value> = data::table_ii()
        .into_iter()
        .map(|d| {
            let _ = writeln!(
                text,
                "{:<18} {:>9} {:>11} {:>14}",
                d.name,
                d.num_queries,
                d.median_seq_len,
                d.domain.to_string()
            );
            json!({
                "name": d.name, "code": d.code, "queries": d.num_queries,
                "median_seq_len": d.median_seq_len, "domain": d.domain.to_string(),
            })
        })
        .collect();
    ExperimentResult {
        id: "table2",
        title: "Table II: datasets",
        text,
        json: json!({ "rows": rows }),
    }
}

// ----------------------------------------------------------------- Fig. 2

fn fig2() -> ExperimentResult {
    let mut rng = StdRng::seed_from_u64(2);
    let mut text = String::new();
    let mut series = Vec::new();
    for ds in [data::commonsense_15k(), data::math_14k()] {
        let dist = SeqLenDistribution::for_dataset(&ds);
        let samples = dist.sample_many(ds.num_queries, &mut rng);
        let hist = SeqLenDistribution::histogram(&samples, 16);
        let median = SeqLenDistribution::percentile(&samples, 50.0);
        let p95 = SeqLenDistribution::percentile(&samples, 95.0);
        let _ = writeln!(
            text,
            "{} — sampled median {median} (nominal {}), p95 {p95}",
            ds.name, ds.median_seq_len
        );
        let peak = hist.iter().map(|&(_, c)| c).max().unwrap_or(1);
        for &(edge, count) in &hist {
            let bar = "#".repeat(40 * count / peak.max(1));
            let _ = writeln!(text, "  ≤{edge:>5}: {bar} {count}");
        }
        series.push(json!({
            "dataset": ds.code, "median": median, "p95": p95,
            "histogram": hist.iter().map(|&(e, c)| json!([e, c])).collect::<Vec<_>>(),
        }));
    }
    ExperimentResult {
        id: "fig2",
        title: "Fig. 2: sequence length distribution",
        text,
        json: json!({ "series": series }),
    }
}

// ----------------------------------------------------------------- Fig. 3

fn fig3() -> ExperimentResult {
    let mut text = String::new();
    let calibrated = TrainabilityMatrix::fig3();
    let _ = writeln!(text, "[calibrated reconstruction of the paper's curves]");
    for c in &calibrated.curves {
        let accs: Vec<String> = c.accuracy.iter().map(|a| format!("{:.2}", a)).collect();
        let _ = writeln!(text, "{:<16} {}", c.label, accs.join(" "));
    }

    let _ = writeln!(
        text,
        "\n[emergent: genuinely trained CPU-scale MoE (10 epochs)]"
    );
    let cs = ftsim_workload::SyntheticTask::commonsense(16, 4, 42);
    let math = ftsim_workload::SyntheticTask::math(16, 4, 42);
    let mut emergent = Vec::new();
    let runs = vec![
        ("big-D/CS", MoeTrainConfig::mixtral_like(8), &cs),
        ("big-S/CS", MoeTrainConfig::mixtral_like(2), &cs),
        ("big-S/MATH", MoeTrainConfig::mixtral_like(2), &math),
        ("small-S/CS", MoeTrainConfig::blackmamba_like(2), &cs),
    ];
    for (label, cfg, task) in runs {
        let out = moetrain::train(task, &cfg, label);
        let accs: Vec<String> = std::iter::once(out.initial_accuracy)
            .chain(out.curve.iter().map(|m| m.eval_accuracy))
            .map(|a| format!("{a:.2}"))
            .collect();
        let _ = writeln!(text, "{:<16} {}", label, accs.join(" "));
        emergent.push(json!({
            "label": label,
            "initial": out.initial_accuracy,
            "accuracy": out.curve.iter().map(|m| m.eval_accuracy).collect::<Vec<_>>(),
        }));
    }
    ExperimentResult {
        id: "fig3",
        title: "Fig. 3: testing accuracy vs epoch (dense vs sparse)",
        text,
        json: json!({
            "calibrated": calibrated.curves.iter().map(|c| json!({
                "label": c.label, "accuracy": c.accuracy,
            })).collect::<Vec<_>>(),
            "emergent": emergent,
        }),
    }
}

// --------------------------------------------------------------- Table III

fn table3() -> ExperimentResult {
    let gpu = GpuSpec::a40();
    // Paper ground truth (A40, CS median 79 / MATH median 174).
    let paper: Vec<(&str, &str, usize)> = vec![
        ("Mixtral-D", "CS", 2),
        ("Mixtral-S", "CS", 8),
        ("Mixtral-D", "MATH", 1),
        ("Mixtral-S", "MATH", 3),
        ("BlackMamba-D", "CS", 6),
        ("BlackMamba-S", "CS", 20),
        ("BlackMamba-D", "MATH", 2),
        ("BlackMamba-S", "MATH", 8),
    ];
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{:<14} {:>6} {:>6} {:>6}",
        "combo", "data", "ours", "paper"
    );
    let mut rows = Vec::new();
    let mut exact = 0;
    for (combo, ds, truth) in &paper {
        let (model, sparse) = match *combo {
            "Mixtral-D" => (models::mixtral_8x7b(), false),
            "Mixtral-S" => (models::mixtral_8x7b(), true),
            "BlackMamba-D" => (models::blackmamba_2p8b(), false),
            _ => (models::blackmamba_2p8b(), true),
        };
        let seq = if *ds == "CS" { 79 } else { 174 };
        let ours = max_batch(&model, sparse, &gpu, seq);
        if ours == *truth {
            exact += 1;
        }
        let _ = writeln!(text, "{combo:<14} {ds:>6} {ours:>6} {truth:>6}");
        rows.push(json!({ "combo": combo, "dataset": ds, "ours": ours, "paper": truth }));
    }
    let _ = writeln!(text, "exact matches: {exact}/8");

    // Fit Eq. 1 per model across GPUs (the paper's §V-A protocol).
    let mut fits = Vec::new();
    for (name, model, sparse_pairs) in [
        ("Mixtral", models::mixtral_8x7b(), [0.25, 1.0]),
        ("BlackMamba", models::blackmamba_2p8b(), [0.25, 1.0]),
    ] {
        let weights = MemoryModel::new(&model, &paper_recipe(&model, true)).weights_gb();
        let mut samples = Vec::new();
        for gpu in GpuSpec::catalog() {
            for &seq in &[79usize, 148, 174] {
                for &s in &sparse_pairs {
                    let mb = max_batch(&model, s < 1.0, &gpu, seq);
                    if mb > 0 {
                        samples.push(BatchSample {
                            gpu_mem_gb: gpu.mem_gb,
                            model_mem_gb: weights,
                            seq_len: seq,
                            sparsity: s,
                            max_batch: mb,
                        });
                    }
                }
            }
        }
        let (fit, rmse) = MaxBatchModel::fit(&samples);
        let _ = writeln!(
            text,
            "Eq.1 fit {name}: C0={:.2} C1={:.3} (rmse {:.2}, exact {:.0}%; paper C0={} C1={})",
            fit.c0,
            fit.c1,
            rmse,
            100.0 * fit.exact_match_rate(&samples),
            if name == "Mixtral" { 82 } else { 83 },
            if name == "Mixtral" { 0.95 } else { 0.88 },
        );
        fits.push(json!({ "model": name, "c0": fit.c0, "c1": fit.c1, "rmse": rmse }));
    }
    ExperimentResult {
        id: "table3",
        title: "Table III: maximum batch size (A40)",
        text,
        json: json!({ "rows": rows, "eq1_fits": fits }),
    }
}

// ----------------------------------------------------------------- Fig. 4

fn fig4() -> ExperimentResult {
    let mut text = String::new();
    let mut rows = Vec::new();
    for (label, model, sparse) in combos() {
        let seq = 128;
        let mb = max_batch(&model, sparse, &GpuSpec::a40(), seq).max(1);
        for batch in [1, mb] {
            let trace = sim_for(&model, sparse, GpuSpec::a40()).simulate_step(batch, seq);
            let b = trace.stage_breakdown();
            let _ = writeln!(
                text,
                "{label:<14} bs={batch:<3} fwd {:>5.1}%  bwd {:>5.1}%  opt {:>5.1}%  ({:.0} ms)",
                b.percent("forward"),
                b.percent("backward"),
                b.percent("optimizer"),
                trace.total_seconds() * 1e3
            );
            rows.push(json!({
                "combo": label, "batch": batch,
                "forward_pct": b.percent("forward"),
                "backward_pct": b.percent("backward"),
                "optimizer_pct": b.percent("optimizer"),
                "total_ms": trace.total_seconds() * 1e3,
            }));
        }
    }
    ExperimentResult {
        id: "fig4",
        title: "Fig. 4: execution time breakdown (fwd/bwd/optimizer)",
        text,
        json: json!({ "rows": rows }),
    }
}

// ----------------------------------------------------------------- Fig. 5

fn fig5() -> ExperimentResult {
    let mut text = String::new();
    let mut rows = Vec::new();
    let mut moe_shares = Vec::new();
    for (label, model, sparse) in combos() {
        let seq = 128;
        let mb = max_batch(&model, sparse, &GpuSpec::a40(), seq).max(1);
        for batch in [1, mb] {
            let trace = sim_for(&model, sparse, GpuSpec::a40()).simulate_step(batch, seq);
            let b = trace.section_breakdown();
            let moe = b.percent("moe");
            moe_shares.push(moe);
            let mixer = if model.is_attention() {
                "attention"
            } else {
                "mamba"
            };
            let _ = writeln!(
                text,
                "{label:<14} bs={batch:<3} moe {moe:>5.1}%  {mixer} {:>5.1}%  norm {:>5.1}%  other {:>5.1}%",
                b.percent(mixer),
                b.percent("norm"),
                100.0 - moe - b.percent(mixer) - b.percent("norm"),
            );
            rows.push(json!({
                "combo": label, "batch": batch, "moe_pct": moe,
                "mixer_pct": b.percent(mixer), "norm_pct": b.percent("norm"),
            }));
        }
    }
    let avg = moe_shares.iter().sum::<f64>() / moe_shares.len() as f64;
    let _ = writeln!(text, "average MoE share: {avg:.1}% (paper: ~85%)");
    ExperimentResult {
        id: "fig5",
        title: "Fig. 5: execution time breakdown by model layer",
        text,
        json: json!({ "rows": rows, "avg_moe_pct": avg }),
    }
}

// ----------------------------------------------------------------- Fig. 6

fn fig6() -> ExperimentResult {
    let mut text = String::new();
    let mut rows = Vec::new();
    for (label, model, sparse) in combos() {
        let seq = 128;
        let mb = max_batch(&model, sparse, &GpuSpec::a40(), seq).max(1);
        for batch in [1, mb] {
            let trace = sim_for(&model, sparse, GpuSpec::a40()).simulate_step(batch, seq);
            let b = trace.moe_kernel_breakdown();
            let mut parts: Vec<String> = b
                .sorted()
                .into_iter()
                .map(|(k, s)| format!("{k} {:.1}%", 100.0 * s / b.total()))
                .collect();
            parts.truncate(4);
            let _ = writeln!(text, "{label:<14} bs={batch:<3} {}", parts.join("  "));
            rows.push(json!({
                "combo": label, "batch": batch,
                "kernels": b.sorted().into_iter()
                    .map(|(k, s)| json!({ "kernel": k, "pct": 100.0 * s / b.total() }))
                    .collect::<Vec<_>>(),
            }));
        }
    }
    ExperimentResult {
        id: "fig6",
        title: "Fig. 6: MoE layer kernel breakdown",
        text,
        json: json!({ "rows": rows }),
    }
}

// ----------------------------------------------------------------- Fig. 8

fn fig8() -> ExperimentResult {
    let mut text = String::new();
    let mut series = Vec::new();
    let cases: Vec<(&str, ModelConfig, bool, usize)> = vec![
        ("Mixtral-D/CS", models::mixtral_8x7b(), false, 79),
        ("Mixtral-S/CS", models::mixtral_8x7b(), true, 79),
        ("Mixtral-D/MATH", models::mixtral_8x7b(), false, 174),
        ("Mixtral-S/MATH", models::mixtral_8x7b(), true, 174),
        ("BlackMamba-D/CS", models::blackmamba_2p8b(), false, 79),
        ("BlackMamba-S/CS", models::blackmamba_2p8b(), true, 79),
    ];
    for (label, model, sparse, seq) in cases {
        let mb = max_batch(&model, sparse, &GpuSpec::a40(), seq).max(1);
        let batches: Vec<usize> = (1..=mb).collect();
        let sweep = ThroughputSweep::run(
            &sim_for(&model, sparse, GpuSpec::a40()),
            label,
            seq,
            &batches,
        )
        .unwrap_or_else(|e| panic!("throughput sweep failed: {e}"));
        let pts: Vec<String> = sweep
            .points
            .iter()
            .map(|p| format!("bs{}={:.2}", p.batch, p.queries_per_second))
            .collect();
        let _ = writeln!(text, "{label:<16} {}", pts.join(" "));
        series.push(json!({
            "label": label,
            "points": sweep.points.iter()
                .map(|p| json!({ "batch": p.batch, "qps": p.queries_per_second }))
                .collect::<Vec<_>>(),
        }));
    }
    let _ = writeln!(text, "paper anchors: Mixtral-CS dense bs2 ≈ 0.5 qps, sparse bs2 ≈ 0.7 qps; sparse 1→2 ≈ 1.9x, 1→8 ≈ 4.8x");
    ExperimentResult {
        id: "fig8",
        title: "Fig. 8: query throughput (A40)",
        text,
        json: json!({ "series": series }),
    }
}

// ------------------------------------------------------------ Figs. 9, 10

fn utilization_fig(id: &'static str, title: &'static str, sm: bool) -> ExperimentResult {
    let mut text = String::new();
    let mut rows = Vec::new();
    let seq = 128;
    for (label, model, sparse) in combos() {
        let quantized = model.is_attention();
        // Paper protocol: dense at {1, maxD}; sparse at {1, maxD, maxS}.
        let max_d = max_batch(&model, false, &GpuSpec::a40(), seq).max(1);
        let max_s = max_batch(&model, true, &GpuSpec::a40(), seq).max(1);
        let batches: Vec<usize> = if sparse {
            let mut v = vec![1, max_d, max_s];
            v.dedup();
            v
        } else {
            let mut v = vec![1, max_d];
            v.dedup();
            v
        };
        for batch in batches {
            let trace = sim_for(&model, sparse, GpuSpec::a40()).simulate_step(batch, seq);
            let table = moe_utilization_table(&trace, quantized);
            let parts: Vec<String> = table
                .iter()
                .map(|r| {
                    let u = if sm { r.util.sm_util } else { r.util.dram_util };
                    format!("{} {:.0}%", r.kind.label(), 100.0 * u)
                })
                .collect();
            let overall = trace.moe_overall_utilization();
            let o = if sm {
                overall.sm_util
            } else {
                overall.dram_util
            };
            let _ = writeln!(
                text,
                "{label:<14} bs={batch:<3} overall {:.0}%  [{}]",
                o * 100.0,
                parts.join(" ")
            );
            rows.push(json!({
                "combo": label, "batch": batch, "overall": o,
                "kernels": table.iter().map(|r| json!({
                    "kernel": r.kind.label(),
                    "util": if sm { r.util.sm_util } else { r.util.dram_util },
                })).collect::<Vec<_>>(),
            }));
        }
    }
    ExperimentResult {
        id,
        title,
        text,
        json: json!({ "rows": rows }),
    }
}

fn fig9() -> ExperimentResult {
    utilization_fig("fig9", "Fig. 9: GPU SM utilization of MoE kernels", true)
}

fn fig10() -> ExperimentResult {
    utilization_fig(
        "fig10",
        "Fig. 10: GPU DRAM bandwidth utilization of MoE kernels",
        false,
    )
}

// ---------------------------------------------------------------- Fig. 11

fn fig11() -> ExperimentResult {
    let mut text = String::new();
    let _ = writeln!(text, "[calibrated to the paper's variances]");
    let mut cal = Vec::new();
    for case in routing::paper_cases() {
        let fmt = |d: &routing::TokenDistribution| {
            d.pct
                .iter()
                .map(|p| format!("{p:.0}"))
                .collect::<Vec<_>>()
                .join("/")
        };
        let _ = writeln!(
            text,
            "{:<11} {:<4} before var {:>5.0} [{}]  after var {:>5.0} [{}] dominant e{}",
            case.model,
            case.dataset,
            case.before.variance(),
            fmt(&case.before),
            case.after.variance(),
            fmt(&case.after),
            case.after.dominant_expert(),
        );
        cal.push(json!({
            "model": case.model, "dataset": case.dataset,
            "before_pct": case.before.pct, "after_pct": case.after.pct,
            "before_var": case.before.variance(), "after_var": case.after.variance(),
        }));
    }

    let _ = writeln!(text, "\n[emergent from genuinely trained MoE]");
    let mut emergent = Vec::new();
    for (label, task) in [
        (
            "CS-task",
            ftsim_workload::SyntheticTask::commonsense(16, 4, 42),
        ),
        ("MATH-task", ftsim_workload::SyntheticTask::math(16, 4, 42)),
    ] {
        let out = moetrain::train(&task, &MoeTrainConfig::mixtral_like(2), label);
        let _ = writeln!(
            text,
            "{label:<10} before var {:>6.1}  after var {:>6.1}  (Δ {:+.1})",
            out.routing_before.variance(),
            out.routing_after.variance(),
            out.imbalance_delta(),
        );
        emergent.push(json!({
            "label": label,
            "before_var": out.routing_before.variance(),
            "after_var": out.routing_after.variance(),
        }));
    }
    ExperimentResult {
        id: "fig11",
        title: "Fig. 11: token distribution across experts",
        text,
        json: json!({ "calibrated": cal, "emergent": emergent }),
    }
}

// ---------------------------------------------------------------- Fig. 13

fn fig13() -> ExperimentResult {
    let model = models::mixtral_8x7b();
    let ft = paper_recipe(&model, true);
    let mem = MemoryModel::new(&model, &ft);
    let seq = 148; // GS
                   // Fit over both sparse and dense ground truth across the catalog so C₁
                   // is identifiable; project the sparse curve to future capacities.
    let mut measured: Vec<(String, BatchSample)> = Vec::new();
    for gpu in GpuSpec::catalog() {
        for (tag, sparse, sparsity) in [("S", true, 0.25), ("D", false, 1.0)] {
            let mb = max_batch(&model, sparse, &gpu, seq);
            if mb == 0 {
                continue;
            }
            measured.push((
                format!("{}-{tag}", gpu.name),
                BatchSample {
                    gpu_mem_gb: gpu.mem_gb,
                    model_mem_gb: mem.weights_gb(),
                    seq_len: seq,
                    sparsity,
                    max_batch: mb,
                },
            ));
        }
    }
    let proj = MemoryProjection::build(&measured, &[100.0, 120.0], mem.weights_gb(), seq, 0.25);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Eq.1 fit: C0={:.2} C1={:.3} (rmse {:.2})",
        proj.model.c0, proj.model.c1, proj.fit_rmse
    );
    for p in &proj.points {
        let truth = p
            .ground_truth
            .map(|t| format!("{t}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            text,
            "{:<14} {:>5.0}GB  predicted {:>3}  measured {truth}",
            p.label, p.mem_gb, p.predicted
        );
    }
    let _ = writeln!(text, "paper projects 28 (100GB) and 35 (120GB) with its unit convention; shape (linear growth in memory) matches");
    ExperimentResult {
        id: "fig13",
        title: "Fig. 13: projected max batch size vs GPU memory (Mixtral sparse, GS)",
        text,
        json: json!({
            "c0": proj.model.c0, "c1": proj.model.c1, "rmse": proj.fit_rmse,
            "points": proj.points.iter().map(|p| json!({
                "label": p.label, "mem_gb": p.mem_gb,
                "predicted": p.predicted, "measured": p.ground_truth,
            })).collect::<Vec<_>>(),
        }),
    }
}

// ------------------------------------------------------------ Figs. 14, 15

fn fig14() -> ExperimentResult {
    let mut text = String::new();
    let mut rows = Vec::new();
    let cases: Vec<(&str, ModelConfig, usize)> = vec![
        ("Mixtral/CS", models::mixtral_8x7b(), 79),
        ("Mixtral/MATH", models::mixtral_8x7b(), 174),
        ("BlackMamba/CS", models::blackmamba_2p8b(), 79),
        ("BlackMamba/MATH", models::blackmamba_2p8b(), 174),
    ];
    for (label, model, seq) in cases {
        let v = validate_combo(format!("{label} @ A40"), &model, &a40(), seq, 2);
        let _ = writeln!(
            text,
            "{label:<16} C2={:>6.2} C3={:>6.3} C4={:>6.2}  RMSE {:.3} (relative {:.3})",
            v.model.c2,
            v.model.c3,
            v.model.c4,
            v.rmse,
            v.relative_rmse()
        );
        rows.push(json!({
            "label": label, "c2": v.model.c2, "c3": v.model.c3, "c4": v.model.c4,
            "rmse": v.rmse, "relative_rmse": v.relative_rmse(),
            "samples": v.samples.iter().map(|s| json!([s.batch, s.sparsity, s.qps])).collect::<Vec<_>>(),
        }));
    }
    let _ = writeln!(text, "paper: RMSE < 0.8 on A40 (abstract: < 0.55)");
    ExperimentResult {
        id: "fig14",
        title: "Fig. 14: throughput model fit vs simulator ground truth (A40)",
        text,
        json: json!({ "rows": rows }),
    }
}

fn fig15() -> ExperimentResult {
    let mut text = String::new();
    let mut rows = Vec::new();
    for gpu in [GpuSpec::a100_40(), GpuSpec::a100_80(), GpuSpec::h100_80()] {
        let name = gpu.name.clone();
        let v = validate_combo(
            format!("Mixtral/GS @ {name}"),
            &models::mixtral_8x7b(),
            &CostModel::new(gpu),
            148,
            2,
        );
        let _ = writeln!(
            text,
            "{name:<12} C2={:>6.2} C3={:>6.3} C4={:>6.2}  RMSE {:.3} (relative {:.3})",
            v.model.c2,
            v.model.c3,
            v.model.c4,
            v.rmse,
            v.relative_rmse()
        );
        rows.push(json!({
            "gpu": name, "c2": v.model.c2, "c3": v.model.c3, "c4": v.model.c4,
            "rmse": v.rmse, "relative_rmse": v.relative_rmse(),
        }));
    }
    let _ = writeln!(text, "paper: RMSE < 0.6 on A100/H100");
    ExperimentResult {
        id: "fig15",
        title: "Fig. 15: throughput model fit on A100/H100 (Mixtral, GS)",
        text,
        json: json!({ "rows": rows }),
    }
}

// ---------------------------------------------------------------- Table IV

fn table4() -> ExperimentResult {
    let model = models::mixtral_8x7b();
    let seq = 148; // GS
    let mem = MemoryModel::new(&model, &paper_recipe(&model, true));
    // Fit one Eq. 2 model per GPU from simulator ground truth.
    let gpus_with_models: Vec<(GpuSpec, ThroughputModel)> =
        [GpuSpec::a40(), GpuSpec::a100_80(), GpuSpec::h100_80()]
            .into_iter()
            .map(|gpu| {
                let v = validate_combo(
                    format!("Mixtral/GS @ {}", gpu.name),
                    &model,
                    &CostModel::new(gpu.clone()),
                    seq,
                    2,
                );
                (gpu, v.model)
            })
            .collect();
    let job = FineTuneJob::ten_epochs(&data::math_14k());
    let prices = PriceTable::for_provider(CloudProvider::Cudo);
    let table = CostTable::build(&gpus_with_models, &mem, 0.25, seq, job, &prices);

    let mut text = String::new();
    let _ = writeln!(text, "{table}");
    let _ = writeln!(text, "paper Table IV: A40 $32.7 (MBS 4, 1.01 q/s) | A100-80 $25.4 (17, 2.74) | H100 $17.9 (17, 4.90)");
    let cheapest = table.cheapest().expect("catalog GPUs priced").clone();
    let _ = writeln!(text, "most cost-effective: {}", cheapest.gpu);

    // OpenOrca projection (§V-C).
    let orca = table.scaled_to_queries(job, FineTuneJob::ten_epochs(&data::openorca()));
    let orca_best = orca.cheapest().expect("non-empty").clone();
    let _ = writeln!(
        text,
        "OpenOrca (2M queries, 10 epochs) on {}: ${:.0} (paper: $3460 on H100)",
        orca_best.gpu, orca_best.usd
    );
    ExperimentResult {
        id: "table4",
        title: "Table IV: estimated cost of fine-tuning Mixtral on GS (sparse)",
        text,
        json: json!({
            "rows": table.rows.iter().map(|r| json!({
                "gpu": r.gpu, "mem_gb": r.mem_gb, "mbs": r.max_batch,
                "qps": r.throughput_qps, "usd_per_hour": r.usd_per_hour, "usd": r.usd,
            })).collect::<Vec<_>>(),
            "openorca_usd": orca_best.usd,
            "openorca_gpu": orca_best.gpu,
        }),
    }
}

// -------------------------------------------------------------- §IV-B6

fn sensitivity() -> ExperimentResult {
    let seqs = [64usize, 128, 256, 512, 1024];
    let mut text = String::new();
    let mut series = Vec::new();
    for (label, model, sparse) in combos() {
        let sim = sim_for(&model, sparse, GpuSpec::a40());
        let study = SensitivityStudy::run(&sim, label, &seqs);
        if study.points.is_empty() {
            continue;
        }
        let pts: Vec<String> = study
            .points
            .iter()
            .map(|p| {
                format!(
                    "L{}:bs{} {:.0}ms",
                    p.seq_len,
                    p.max_batch,
                    p.step_seconds * 1e3
                )
            })
            .collect();
        let _ = writeln!(
            text,
            "{label:<14} {}  (latency ratio {:.2})",
            pts.join(" "),
            study.latency_ratio()
        );
        series.push(json!({
            "label": label,
            "latency_ratio": study.latency_ratio(),
            "points": study.points.iter().map(|p| json!({
                "seq": p.seq_len, "batch": p.max_batch,
                "ms": p.step_seconds * 1e3, "qps": p.queries_per_second,
            })).collect::<Vec<_>>(),
        }));
    }
    let _ = writeln!(text, "paper: Mixtral latency ~flat; BlackMamba −19%/−25% at long sequences; shorter sequences give higher throughput");
    ExperimentResult {
        id: "sensitivity",
        title: "§IV-B6: sequence-length sensitivity",
        text,
        json: json!({ "series": series }),
    }
}

// ------------------------------------------------------------ extensions

fn ablation() -> ExperimentResult {
    use ftsim_sim::ablation::{ablate_checkpointing, ablate_quantization};
    let mut text = String::new();
    let mut rows = Vec::new();
    let cost = a40();
    for (model, ft, batch) in [
        (
            models::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            2usize,
        ),
        (models::blackmamba_2p8b(), FineTuneConfig::full_sparse(), 4),
    ] {
        let ck = ablate_checkpointing(&model, ft, &cost, batch, 128);
        let _ = writeln!(
            text,
            "{:<16} {}: off/on runtime {:.2}x, backward share {:.0}% → {:.0}%",
            model.name,
            ck.name,
            ck.slowdown(),
            ck.baseline.backward_share * 100.0,
            ck.variant.backward_share * 100.0
        );
        rows.push(json!({ "model": model.name, "ablation": ck.name, "slowdown": ck.slowdown() }));
    }
    let q = ablate_quantization(
        &models::mixtral_8x7b(),
        FineTuneConfig::qlora_sparse(),
        &cost,
        1,
        128,
    );
    let _ = writeln!(
        text,
        "Mixtral {}: bf16-LoRA static {:.0} GB vs NF4 {:.0} GB; bf16 max batch {} (does not fit the A40) vs NF4 {}",
        q.name, q.variant.static_gb, q.baseline.static_gb, q.variant.max_batch, q.baseline.max_batch
    );
    rows.push(json!({
        "model": "Mixtral-8x7B", "ablation": q.name,
        "bf16_static_gb": q.variant.static_gb, "nf4_static_gb": q.baseline.static_gb,
        "bf16_max_batch": q.variant.max_batch, "nf4_max_batch": q.baseline.max_batch,
    }));
    ExperimentResult {
        id: "ablation",
        title: "Ablations: gradient checkpointing & NF4 quantization trade-offs",
        text,
        json: json!({ "rows": rows }),
    }
}

fn scaleout() -> ExperimentResult {
    use ftsim_cost::{scale_out, Interconnect};
    let mut text = String::new();
    let mut rows = Vec::new();
    let gpus = [1usize, 2, 4, 8];
    let cases = [
        (
            "Mixtral QLoRA (fp32 grads)",
            models::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            4usize,
            4.0,
        ),
        (
            "BlackMamba full (bf16 grads)",
            models::blackmamba_2p8b(),
            FineTuneConfig::full_sparse(),
            12,
            2.0,
        ),
    ];
    for (label, model, ft, batch, grad_bytes) in cases {
        let step = StepSimulator::new(model.clone(), ft, a40())
            .simulate_step(batch, 128)
            .total_seconds();
        let trainable = ft.trainable_params(&model) as f64;
        for link in [Interconnect::nvlink3(), Interconnect::pcie4()] {
            let pts = scale_out(step, batch, trainable, grad_bytes, link, &gpus);
            let series: Vec<String> = pts
                .iter()
                .map(|p| {
                    format!(
                        "{}x{:.1}q/s({:.0}%)",
                        p.gpus,
                        p.queries_per_second,
                        p.efficiency * 100.0
                    )
                })
                .collect();
            let _ = writeln!(text, "{label:<30} {:<9} {}", link.name, series.join("  "));
            rows.push(json!({
                "case": label, "link": link.name,
                "points": pts.iter().map(|p| json!({
                    "gpus": p.gpus, "qps": p.queries_per_second, "efficiency": p.efficiency,
                })).collect::<Vec<_>>(),
            }));
        }
    }
    let _ = writeln!(
        text,
        "extension of §VII future work: data-parallel scaling with ring all-reduce"
    );
    ExperimentResult {
        id: "scaleout",
        title: "Extension: multi-GPU data-parallel scaling estimate",
        text,
        json: json!({ "rows": rows }),
    }
}

// ------------------------------------------- Distributed cluster composition

/// One priced composition in the cluster cost table.
struct ClusterRow {
    gpu: String,
    world: usize,
    parallelism: &'static str,
    link: &'static str,
    max_batch: usize,
    fits: bool,
    step_seconds: f64,
    compute_seconds: f64,
    comm_seconds: f64,
    comm_pct: f64,
    qps: f64,
    usd_per_hour: f64,
    usd_per_million_queries: f64,
}

impl ClusterRow {
    fn to_json(&self) -> Value {
        json!({
            "gpu": self.gpu, "world": self.world, "parallelism": self.parallelism,
            "link": self.link, "max_batch": self.max_batch, "fits": self.fits,
            "step_seconds": self.step_seconds,
            "compute_seconds": self.compute_seconds,
            "comm_seconds": self.comm_seconds,
            "comm_pct": self.comm_pct,
            "qps": self.qps,
            "usd_per_hour": self.usd_per_hour,
            "usd_per_million_queries": self.usd_per_million_queries,
        })
    }
}

fn cluster_row(
    plan: &ftsim_cost::DistributedPlan,
    gpu: &GpuSpec,
    world: usize,
    par: ftsim_cost::Parallelism,
    seq: usize,
    rate: f64,
) -> ClusterRow {
    use ftsim_cost::Topology;
    let topo = Topology::homogeneous(gpu.clone(), world, Topology::default_link_for(gpu));
    let mut row = ClusterRow {
        gpu: gpu.name.clone(),
        world,
        parallelism: par.key(),
        link: topo.link().name,
        max_batch: plan.max_batch(&topo, par, seq),
        fits: false,
        step_seconds: 0.0,
        compute_seconds: 0.0,
        comm_seconds: 0.0,
        comm_pct: 0.0,
        qps: 0.0,
        usd_per_hour: rate * world as f64,
        usd_per_million_queries: f64::INFINITY,
    };
    if row.max_batch == 0 {
        return row;
    }
    let step = plan.simulate_step(&topo, par, row.max_batch, seq);
    row.fits = true;
    row.step_seconds = step.total_seconds();
    row.compute_seconds = step.compute_seconds;
    row.comm_seconds = step.comm_seconds;
    row.comm_pct = 100.0 * step.comm_fraction();
    row.qps = step.queries_per_second();
    // Dollars to push one million queries through one fine-tuning epoch.
    row.usd_per_million_queries = row.usd_per_hour / (row.qps * 3600.0) * 1e6;
    row
}

/// Extension: the cost-optimal cluster-composition table. Prices every
/// (GPU type × world size × parallelism strategy) composition for the
/// paper's headline scenario (Mixtral-8x7B, QLoRA top-2, seq 79, CUDO
/// rates) with the distributed step simulator, at each point's largest
/// fitting global batch, and ranks compositions by dollars per million
/// queries. Pure math over the memoized traces — byte-stable, so CI diffs
/// the artifact across runs and against `baselines/cluster_baseline.json`.
fn cluster() -> ExperimentResult {
    use ftsim_cost::{DistributedPlan, Parallelism};

    let seq = 79usize;
    let model = models::mixtral_8x7b();
    let plan = DistributedPlan::new(model.clone(), FineTuneConfig::qlora_sparse());
    let prices = PriceTable::for_provider(CloudProvider::Cudo);
    let gpus = [GpuSpec::a40(), GpuSpec::a100_80(), GpuSpec::h100_80()];
    let worlds = [1usize, 2, 4, 8];

    let mut rows: Vec<ClusterRow> = Vec::new();
    for gpu in &gpus {
        let rate = prices
            .usd_per_hour(&gpu.name)
            .expect("CUDO lists every catalog GPU");
        for &world in &worlds {
            for par in Parallelism::all() {
                rows.push(cluster_row(&plan, gpu, world, par, seq, rate));
            }
        }
    }

    let best = rows
        .iter()
        .filter(|r| r.fits)
        .min_by(|a, b| {
            a.usd_per_million_queries
                .partial_cmp(&b.usd_per_million_queries)
                .expect("costs are finite")
        })
        .expect("at least one composition fits");

    // Deterministic metrics snapshot from a private registry (global obs
    // state untouched, so `repro all` concurrency cannot contaminate it);
    // the raw export doubles as the CI obs-diff baseline.
    let registry = ftsim_obs::Registry::default();
    registry.counter("cluster.rows").store(rows.len() as u64);
    registry
        .counter("cluster.rows.fit")
        .store(rows.iter().filter(|r| r.fits).count() as u64);
    registry
        .gauge("cluster.best.usd_per_million_queries")
        .store(best.usd_per_million_queries);
    registry
        .gauge("cluster.best.world")
        .store(best.world as f64);
    for r in &rows {
        // Reference point for the comm/compute split: the largest fleet of
        // the paper's baseline GPU.
        if r.gpu == "A40" && r.world == 8 && r.fits {
            registry
                .gauge(&format!("cluster.a40x8.{}.comm_pct", r.parallelism))
                .store(r.comm_pct);
        }
    }
    let metrics = registry.snapshot();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "cluster composition: Mixtral-S QLoRA, seq {seq}, CUDO rates, max-batch per point"
    );
    let _ = writeln!(
        text,
        "{:<10} {:>5} {:<7} {:<12} {:>6} {:>9} {:>7} {:>10}",
        "gpu", "world", "par", "link", "batch", "qps", "comm%", "$/Mquery"
    );
    for r in &rows {
        if r.fits {
            let _ = writeln!(
                text,
                "{:<10} {:>5} {:<7} {:<12} {:>6} {:>9.2} {:>6.1}% {:>10.2}",
                r.gpu,
                r.world,
                r.parallelism,
                r.link,
                r.max_batch,
                r.qps,
                r.comm_pct,
                r.usd_per_million_queries,
            );
        } else {
            let _ = writeln!(
                text,
                "{:<10} {:>5} {:<7} {:<12}   does not fit",
                r.gpu, r.world, r.parallelism, r.link,
            );
        }
    }
    let _ = writeln!(
        text,
        "cost-optimal: {}x{} {} at ${:.2}/Mquery",
        best.world, best.gpu, best.parallelism, best.usd_per_million_queries,
    );

    let table = json!({
        "scenario": json!({
            "model": "Mixtral-8x7B", "recipe": "qlora", "sparsity": "top-2",
            "seq_len": seq, "provider": "cudo",
        }),
        "rows": rows.iter().map(ClusterRow::to_json).collect::<Vec<_>>(),
        "best": best.to_json(),
    });
    ExperimentResult {
        id: "cluster",
        title: "Extension: cost-optimal cluster composition (distributed simulator)",
        text,
        json: Value::Object(vec![
            ("table".to_string(), table.clone()),
            (
                ARTIFACTS_KEY.to_string(),
                Value::Object(vec![
                    ("cluster_costs.json".to_string(), table),
                    (
                        "cluster_metrics.json".to_string(),
                        Value::String(metrics.to_json_string()),
                    ),
                ]),
            ),
        ]),
    }
}

/// Extension: expert-parallel all-to-all sensitivity. Fixes the fleet to
/// homogeneous A100-80GB and sweeps (link tier × world size × routing
/// density), reporting how much of each step the dispatch/combine
/// all-to-alls eat. Dense routing moves every token to all 8 experts —
/// the pathological upper bound the top-2 paper configuration avoids.
fn alltoall() -> ExperimentResult {
    use ftsim_cost::{DistributedPlan, Interconnect, Parallelism, Topology};

    let seq = 79usize;
    let batch = 8usize;
    let model = models::mixtral_8x7b();
    let cases = [
        ("top-2", FineTuneConfig::qlora_sparse()),
        ("dense", paper_recipe(&model, false)),
    ];

    let mut text = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(
        text,
        "expert-parallel all-to-all sensitivity: Mixtral on A100-80GB, batch {batch}, seq {seq}"
    );
    for (routing, ft) in cases {
        let plan = DistributedPlan::new(model.clone(), ft);
        for link in Interconnect::catalog() {
            let mut series = Vec::new();
            for world in [2usize, 4, 8, 16] {
                let topo = Topology::homogeneous(GpuSpec::a100_80(), world, link);
                let step = plan.simulate_step(&topo, Parallelism::Expert, batch, seq);
                series.push(format!("{}gpu {:.0}%", world, 100.0 * step.comm_fraction()));
                rows.push(json!({
                    "routing": routing, "link": link.name, "world": world,
                    "comm_seconds": step.comm_seconds,
                    "step_seconds": step.total_seconds(),
                    "comm_pct": 100.0 * step.comm_fraction(),
                    "qps": step.queries_per_second(),
                }));
            }
            let _ = writeln!(
                text,
                "{routing:<6} {:<12} comm share: {}",
                link.name,
                series.join("  ")
            );
        }
    }
    let _ = writeln!(
        text,
        "all-to-all bytes scale with activated experts: top-2 stays usable on \
         Ethernet, dense needs NVLink"
    );
    ExperimentResult {
        id: "alltoall",
        title: "Extension: expert-parallel all-to-all sensitivity sweep",
        text,
        json: json!({ "batch": batch, "seq_len": seq, "rows": rows }),
    }
}

// ------------------------------------------------- Performance engine bench

/// Benchmarks the simulator itself on a Fig. 8-style sweep: serial naive
/// emission vs. serial memoized traces vs. the multi-threaded engine.
/// Excluded from `repro all` because its output is wall-clock timings.
fn bench_engine() -> ExperimentResult {
    use std::time::Instant;

    let sim = sim_for(&models::mixtral_8x7b(), true, GpuSpec::a40());
    let seq = 79;
    let batches: Vec<usize> = (1..=16).collect();
    let threads = ftsim_sim::thread_count();

    // Serial, naive per-layer emission (no trace cache).
    let t = Instant::now();
    let naive: Vec<f64> = batches
        .iter()
        .map(|&b| sim.simulate_step_naive(b, seq).total_seconds())
        .collect();
    let naive_s = t.elapsed().as_secs_f64();

    // Serial, memoized layer traces (fresh cache via clone).
    let memo_sim = sim.clone();
    let t = Instant::now();
    let memo: Vec<f64> = batches
        .iter()
        .map(|&b| memo_sim.simulate_step(b, seq).total_seconds())
        .collect();
    let memo_s = t.elapsed().as_secs_f64();
    let stats = memo_sim.cache_stats();

    // Memoized + fanned across the engine's worker threads.
    let par_sim = sim.clone();
    let t = Instant::now();
    let par: Vec<f64> =
        ftsim_sim::parallel_map(&batches, |&b| par_sim.simulate_step(b, seq).total_seconds());
    let par_s = t.elapsed().as_secs_f64();

    let identical = naive
        .iter()
        .zip(&memo)
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && naive
            .iter()
            .zip(&par)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        identical,
        "memoized/parallel results diverged from naive emission"
    );

    let probe = sim.simulate_step(8, seq);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "sweep: Mixtral-S/CS on A40, {} steps (bs 1..={}), seq {seq}, {threads} thread(s)",
        batches.len(),
        batches.len()
    );
    let _ = writeln!(
        text,
        "kernels per step (bs8): {} emitted from {} unique ({:.0}x run-length compression)",
        probe.kernel_count(),
        probe.unique_kernel_count(),
        probe.kernel_count() as f64 / probe.unique_kernel_count() as f64
    );
    let _ = writeln!(text, "serial naive      {:>9.2} ms", naive_s * 1e3);
    let _ = writeln!(
        text,
        "serial memoized   {:>9.2} ms  ({:.1}x vs naive)",
        memo_s * 1e3,
        naive_s / memo_s
    );
    let _ = writeln!(
        text,
        "parallel memoized {:>9.2} ms  ({:.1}x vs naive, {threads} threads)",
        par_s * 1e3,
        naive_s / par_s
    );
    let _ = writeln!(
        text,
        "trace cache: {} entries, {} misses, {} hits; all variants bit-identical",
        stats.entries, stats.misses, stats.hits
    );

    ExperimentResult {
        id: "bench_engine",
        title: "Engine benchmark: memoized traces + multi-threaded sweep",
        text,
        json: json!({
            "sweep": json!({ "label": "Mixtral-S/CS", "gpu": "A40", "seq_len": seq, "steps": batches.len() }),
            "threads": threads,
            "kernels_per_step_bs8": json!({
                "emitted": probe.kernel_count(),
                "unique": probe.unique_kernel_count(),
            }),
            "wall_seconds": json!({
                "serial_naive": naive_s,
                "serial_memoized": memo_s,
                "parallel_memoized": par_s,
            }),
            "speedup_vs_serial_naive": json!({
                "serial_memoized": naive_s / memo_s,
                "parallel_memoized": naive_s / par_s,
            }),
            "trace_cache": json!({
                "entries": stats.entries,
                "misses": stats.misses,
                "hits": stats.hits,
            }),
            "bit_identical": identical,
        }),
    }
}

// -------------------------------------------------- Tensor runtime bench

/// Benchmarks the tensor runtime on repeated training steps of a small MoE
/// classifier: the retained naive op path with buffer pooling disabled
/// (serial-naive) vs. the fused matmul+bias+activation kernels backed by the
/// thread-local buffer pool and reusable autograd tape (pooled-fused). The
/// two paths are bit-identical in losses — only wall-clock and allocation
/// behavior differ — and the pool's fresh-allocation counter proves the
/// steady state allocates no tensor storage after the warm-up step.
/// Excluded from `repro all` because its output is wall-clock timings.
fn bench_tensor() -> ExperimentResult {
    /// Signature shared by the three matmul kernels under benchmark:
    /// `(lhs, rhs, out, m, k, n)`.
    type MatmulKernel<'a> = &'a dyn Fn(&[f32], &[f32], &mut [f32], usize, usize, usize);
    use ftsim_tensor::nn::{AdamW, ExpertKind, Linear, MoeLayer};
    use ftsim_tensor::{autograd, ops, parallel, pool, Activation, Tensor, Var};
    use rand::Rng;
    use std::hint::black_box;
    use std::time::Instant;

    // Dense routing (top_k == experts) keeps the per-step op structure
    // identical step after step, which makes zero steady-state allocation a
    // provable property of the pool rather than a statistical one.
    let (hidden, ffn, experts, classes, batch, steps) = (32, 64, 8, 8, 64, 30);

    let mut rng = StdRng::seed_from_u64(4242);
    let bx = Tensor::rand_normal([batch, hidden], 1.0, &mut rng);
    let by: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..classes)).collect();

    // One full training step on the fixed batch; returns its loss.
    let step = |moe: &MoeLayer, head: &Linear, opt: &mut AdamW, params: &[Var], fused: bool| {
        let x = Var::constant(bx.clone());
        let (mixed, _) = moe.forward_with(&x, fused).expect("moe forward");
        let logits = if fused {
            head.forward_act(&mixed, Activation::Identity)
        } else {
            head.forward_naive(&mixed, Activation::Identity)
        }
        .expect("head projection");
        let loss = logits.cross_entropy(&by).expect("labels in range");
        let out = loss.with_value(Tensor::item);
        loss.backward();
        opt.step(params);
        out
    };

    // Trains a freshly-seeded model for `steps` steps, recording per-step
    // loss, wall-clock, pool fresh-allocation count, and autograd-node
    // fresh-allocation count. The node arena rides the same switch as the
    // pool: the "naive" baseline allocates every graph node, the pooled
    // configuration recycles them through the thread-local arena.
    let run = |fused: bool, pooled: bool| {
        pool::set_enabled(pooled);
        pool::clear();
        autograd::set_arena_enabled(pooled);
        autograd::arena_clear();
        let mut rng = StdRng::seed_from_u64(7);
        let moe = MoeLayer::new(ExpertKind::SwiGlu, hidden, ffn, experts, experts, &mut rng)
            .expect("valid MoE configuration");
        let head = Linear::new(hidden, classes, &mut rng);
        let mut params = moe.parameters();
        params.extend(head.parameters());
        let mut opt = AdamW::new(1e-2, params.len());
        let mut losses = Vec::with_capacity(steps);
        let mut seconds = Vec::with_capacity(steps);
        let mut allocs = Vec::with_capacity(steps);
        let mut node_allocs = Vec::with_capacity(steps);
        for _ in 0..steps {
            let before = pool::stats();
            let nodes_before = autograd::arena_stats();
            let t = Instant::now();
            losses.push(step(&moe, &head, &mut opt, &params, fused));
            seconds.push(t.elapsed().as_secs_f64());
            allocs.push(pool::stats().allocs_since(&before));
            node_allocs.push(autograd::arena_stats().allocs_since(&nodes_before));
        }
        pool::set_enabled(true);
        autograd::set_arena_enabled(true);
        (losses, seconds, allocs, node_allocs)
    };

    fn median(xs: &[f64]) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    let (naive_loss, naive_s, naive_allocs, naive_nodes) = run(false, false);
    let (fused_loss, fused_s, fused_allocs, fused_nodes) = run(true, true);
    let resident = pool::resident();
    let nodes_resident = autograd::arena_resident();
    pool::clear();
    autograd::arena_clear();

    let identical = naive_loss
        .iter()
        .zip(&fused_loss)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "pooled-fused losses diverged from serial-naive");
    // Two warm-up steps: the first fills the pool shelves and node arena,
    // the second settles the arena's one-step-deferred value release
    // (a reclaimed node keeps its value tensor until it is reused).
    let steady_allocs: u64 = fused_allocs[2..].iter().sum();
    assert_eq!(
        steady_allocs, 0,
        "pool allocated in steady state: {fused_allocs:?}"
    );
    let steady_nodes: u64 = fused_nodes[2..].iter().sum();
    assert_eq!(
        steady_nodes, 0,
        "graph nodes allocated in steady state: {fused_nodes:?}"
    );

    // Exclude the warm-up steps from the timing comparison: they pay the
    // one-time pool fill that later steps are measured without.
    let naive_step = median(&naive_s[2..]);
    let fused_step = median(&fused_s[2..]);

    // Kernel-level microbenchmark: the fusion and pooling win measured on
    // the kernels alone, undiluted by the routing/autograd bookkeeping that
    // the end-to-end step shares between both paths.
    let (km, kk, kn, iters) = (256, 64, 256, 60);
    let mut rng = StdRng::seed_from_u64(11);
    let kx = Tensor::rand_normal([km, kk], 1.0, &mut rng);
    let kw = Tensor::rand_normal([kk, kn], 0.5, &mut rng);
    let kb = Tensor::rand_normal([1, kn], 0.5, &mut rng);
    let logits = Tensor::rand_normal([2048, 64], 1.0, &mut rng);

    // Composed reference: matmul, then the set2/get2 row-bias loop and the
    // map pass exactly as the retained naive ops perform them, every output
    // freshly allocated (pool disabled).
    let composed_linear = |x: &Tensor, w: &Tensor, b: &Tensor| {
        let y = x.matmul(w).expect("conforming shapes");
        let mut biased = Tensor::zeros(y.shape().clone());
        for r in 0..km {
            for c in 0..kn {
                biased.set2(r, c, y.get2(r, c) + b.get2(0, c));
            }
        }
        biased.map(|v| Activation::Silu.apply(v))
    };

    pool::set_enabled(false);
    let t = Instant::now();
    for _ in 0..iters {
        black_box(composed_linear(&kx, &kw, &kb));
    }
    let naive_linear = t.elapsed().as_secs_f64() / f64::from(iters);
    let t = Instant::now();
    for _ in 0..iters {
        black_box(ops::softmax_rows_naive(&logits).expect("matrix"));
    }
    let naive_softmax = t.elapsed().as_secs_f64() / f64::from(iters);

    pool::set_enabled(true);
    let fused_once = ops::matmul_bias_act(&kx, &kw, Some(&kb), Activation::Silu).expect("shapes");
    let kernels_identical = fused_once.data() == composed_linear(&kx, &kw, &kb).data();
    assert!(kernels_identical, "fused kernel diverged from composed ops");
    drop(fused_once);
    let t = Instant::now();
    for _ in 0..iters {
        black_box(ops::matmul_bias_act(&kx, &kw, Some(&kb), Activation::Silu).expect("shapes"));
    }
    let fused_linear = t.elapsed().as_secs_f64() / f64::from(iters);
    drop(black_box(ops::softmax_rows(&logits).expect("matrix")));
    let t = Instant::now();
    for _ in 0..iters {
        black_box(ops::softmax_rows(&logits).expect("matrix"));
    }
    let fused_softmax = t.elapsed().as_secs_f64() / f64::from(iters);
    pool::clear();

    // Matmul kernel family on identical raw buffers, serial: the naive
    // i-j-p oracle, the previous cache-blocked kernel, and the
    // register-tiled microkernel now behind `Tensor::matmul`. Median of
    // several interleaved samples so frequency drift hits all three alike.
    let mut mm_out = vec![0.0f32; km * kn];
    let mut mm_samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let kernels: [MatmulKernel; 3] = [
        &parallel::matmul_naive_into,
        &parallel::matmul_blocked_into,
        &parallel::matmul_microkernel_into,
    ];
    for _ in 0..2 {
        for f in &kernels {
            mm_out.fill(0.0);
            f(kx.data(), kw.data(), &mut mm_out, km, kk, kn);
        }
    }
    for _ in 0..5 {
        for (f, samples) in kernels.iter().zip(&mut mm_samples) {
            let t = Instant::now();
            for _ in 0..iters {
                mm_out.fill(0.0);
                f(kx.data(), kw.data(), &mut mm_out, km, kk, kn);
                black_box(mm_out[0]);
            }
            samples.push(t.elapsed().as_secs_f64() / f64::from(iters));
        }
    }
    let mm_naive = median(&mm_samples[0]);
    let mm_blocked = median(&mm_samples[1]);
    let mm_micro = median(&mm_samples[2]);

    // Scalar-forced vs SIMD-forced microkernel at the same shape. On a host
    // without AVX2 the forced-SIMD mode downgrades to scalar, so the
    // speedup honestly reads ~1.0 there; the JSON host block records which
    // case this run measured. Bit-equality is asserted before timing —
    // the AVX2 bodies round identically to scalar by construction.
    use ftsim_tensor::simd;
    let mut mm_scalar_out = vec![0.0f32; km * kn];
    simd::force(Some(false));
    parallel::matmul_microkernel_into(kx.data(), kw.data(), &mut mm_scalar_out, km, kk, kn);
    simd::force(Some(true));
    mm_out.fill(0.0);
    parallel::matmul_microkernel_into(kx.data(), kw.data(), &mut mm_out, km, kk, kn);
    assert_eq!(
        mm_scalar_out, mm_out,
        "SIMD microkernel diverged from scalar"
    );
    let mut dispatch_samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for _ in 0..5 {
        for (forced, samples) in [false, true].into_iter().zip(&mut dispatch_samples) {
            simd::force(Some(forced));
            let t = Instant::now();
            for _ in 0..iters {
                mm_out.fill(0.0);
                parallel::matmul_microkernel_into(kx.data(), kw.data(), &mut mm_out, km, kk, kn);
                black_box(mm_out[0]);
            }
            samples.push(t.elapsed().as_secs_f64() / f64::from(iters));
        }
    }
    simd::force(None);
    let mm_forced_scalar = median(&dispatch_samples[0]);
    let mm_forced_simd = median(&dispatch_samples[1]);

    // Data-parallel step scaling: one short end-to-end training run per
    // worker count. The microbatch grid fixes the reduction order, so every
    // row of this table is the same bit-exact run — only wall-clock moves.
    // On a single-core host the curve is honestly flat.
    let mut scale_cfg = ftsim_sim::MoeTrainConfig::mixtral_like(2);
    scale_cfg.epochs = 1;
    scale_cfg.train_examples = 64;
    scale_cfg.eval_examples = 32;
    scale_cfg.batch = 32;
    scale_cfg.microbatch = 8;
    let scale_task = ftsim_workload::task::SyntheticTask::commonsense(16, 4, 4242);
    let mut step_scaling: Vec<(usize, f64)> = Vec::new();
    let mut scale_reference: Option<ftsim_sim::MoeTrainOutcome> = None;
    for threads in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let out = ftsim_sim::moetrain::train_with_options(
            &scale_task,
            &scale_cfg,
            "bench",
            true,
            threads,
        );
        step_scaling.push((threads, t.elapsed().as_secs_f64()));
        match &scale_reference {
            None => scale_reference = Some(out),
            Some(r) => assert_eq!(*r, out, "training diverged at {threads} threads"),
        }
    }

    // Fused backward epilogue vs the composed chain at the training hot-loop
    // shape: one `linear_act` forward + backward per call, gradients for
    // weight and bias. Both run pooled with the arena on, so the measured
    // difference is the backward algorithm (streaming epilogue, no `dpre`
    // materialization) and the two saved graph nodes, not the allocator.
    let (bm, bk, bn, biters) = (batch, hidden, ffn, 200u32);
    let mut rng = StdRng::seed_from_u64(17);
    let bwx = Tensor::rand_normal([bm, bk], 1.0, &mut rng);
    let bww = Tensor::rand_normal([bk, bn], 0.5, &mut rng);
    let bwb = Tensor::rand_normal([1, bn], 0.5, &mut rng);
    let backward_pass = |fused: bool| {
        let x = Var::constant(bwx.clone());
        let w = Var::parameter(bww.clone());
        let b = Var::parameter(bwb.clone());
        let out = if fused {
            x.linear_act(&w, &b, Activation::Silu).expect("shapes")
        } else {
            x.matmul(&w)
                .expect("shapes")
                .add_row(&b)
                .expect("shapes")
                .activate(Activation::Silu)
        };
        let loss = out.mean();
        loss.backward();
        loss.with_value(Tensor::item)
    };
    for _ in 0..10 {
        let fused_out = backward_pass(true);
        let composed_out = backward_pass(false);
        assert_eq!(
            fused_out.to_bits(),
            composed_out.to_bits(),
            "fused backward loss diverged from composed chain"
        );
    }
    let time_backward = |fused: bool| {
        let t = Instant::now();
        for _ in 0..biters {
            black_box(backward_pass(fused));
        }
        t.elapsed().as_secs_f64() / f64::from(biters)
    };
    let mut bw_fused_samples = Vec::new();
    let mut bw_composed_samples = Vec::new();
    for _ in 0..5 {
        bw_fused_samples.push(time_backward(true));
        bw_composed_samples.push(time_backward(false));
    }
    let bw_fused = median(&bw_fused_samples);
    let bw_composed = median(&bw_composed_samples);
    pool::clear();
    autograd::arena_clear();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "model: SwiGLU MoE, {experts} experts (dense routing), hidden {hidden}, ffn {ffn}; batch {batch}, {steps} steps"
    );
    let _ = writeln!(
        text,
        "serial naive  {:>9.3} ms/step  (pool disabled, per-op kernels)",
        naive_step * 1e3
    );
    let _ = writeln!(
        text,
        "pooled fused  {:>9.3} ms/step  ({:.2}x vs naive)",
        fused_step * 1e3,
        naive_step / fused_step
    );
    let _ = writeln!(
        text,
        "pool fresh allocs per step (fused): warmup = {} + {}, steps 3..{steps} = {} total",
        fused_allocs[0], fused_allocs[1], steady_allocs
    );
    let _ = writeln!(
        text,
        "graph-node fresh allocs per step (fused): warmup = {} + {}, steps 3..{steps} = {} total",
        fused_nodes[0], fused_nodes[1], steady_nodes
    );
    let _ = writeln!(
        text,
        "pool resident buffers after run: {resident}; arena resident nodes: {nodes_resident}; losses bit-identical across paths"
    );
    let _ = writeln!(
        text,
        "matmul kernels ({km}x{kk}x{kn}, serial, {iters} iters x 5 samples):"
    );
    let _ = writeln!(
        text,
        "  naive {:>8.3} ms  blocked {:>8.3} ms  microkernel {:>8.3} ms  ({:.2}x vs blocked, {:.2}x vs naive)",
        mm_naive * 1e3,
        mm_blocked * 1e3,
        mm_micro * 1e3,
        mm_blocked / mm_micro,
        mm_naive / mm_micro
    );
    let _ = writeln!(
        text,
        "  forced scalar {:>8.3} ms  forced simd {:>8.3} ms  ({:.2}x, host avx2+fma: {})",
        mm_forced_scalar * 1e3,
        mm_forced_simd * 1e3,
        mm_forced_scalar / mm_forced_simd,
        simd::host_supported()
    );
    let _ = writeln!(
        text,
        "data-parallel step scaling (batch {}, microbatch {}, bit-identical at every width):",
        scale_cfg.batch, scale_cfg.microbatch
    );
    for (threads, secs) in &step_scaling {
        let _ = writeln!(
            text,
            "  {threads} thread(s) {:>9.3} ms/run  ({:.2}x vs 1 thread)",
            secs * 1e3,
            step_scaling[0].1 / secs
        );
    }
    let _ = writeln!(
        text,
        "linear_act forward+backward ({bm}x{bk}x{bn}, silu, {biters} iters x 5 samples):"
    );
    let _ = writeln!(
        text,
        "  fused epilogue {:>8.3} ms  composed chain {:>8.3} ms  ({:.2}x)",
        bw_fused * 1e3,
        bw_composed * 1e3,
        bw_composed / bw_fused
    );
    let _ = writeln!(
        text,
        "kernel microbench ({km}x{kk}x{kn} linear, 2048x64 softmax, {iters} iters):"
    );
    let _ = writeln!(
        text,
        "  linear   naive {:>8.3} ms  fused {:>8.3} ms  ({:.2}x)",
        naive_linear * 1e3,
        fused_linear * 1e3,
        naive_linear / fused_linear
    );
    let _ = writeln!(
        text,
        "  softmax  naive {:>8.3} ms  fused {:>8.3} ms  ({:.2}x)",
        naive_softmax * 1e3,
        fused_softmax * 1e3,
        naive_softmax / fused_softmax
    );

    ExperimentResult {
        id: "bench_tensor",
        title: "Tensor runtime benchmark: microkernel matmul + fused kernels + pool/arena",
        text,
        json: json!({
            "config": json!({
                "expert_kind": "swiglu", "hidden": hidden, "ffn": ffn,
                "experts": experts, "top_k": experts, "classes": classes,
                "batch": batch, "steps": steps,
            }),
            "median_step_seconds": json!({
                "serial_naive": naive_step,
                "pooled_fused": fused_step,
            }),
            "speedup_pooled_fused_vs_naive": naive_step / fused_step,
            "per_step_seconds": json!({
                "serial_naive": naive_s,
                "pooled_fused": fused_s,
            }),
            "pool_fresh_allocs_per_step": json!({
                "serial_naive": naive_allocs,
                "pooled_fused": fused_allocs,
            }),
            "node_fresh_allocs_per_step": json!({
                "serial_naive": naive_nodes,
                "pooled_fused": fused_nodes,
            }),
            "steady_state_fresh_allocs": steady_allocs,
            "steady_state_fresh_nodes": steady_nodes,
            "resident_buffers_after_run": resident,
            "resident_arena_nodes_after_run": nodes_resident,
            "bit_identical_losses": identical,
            "losses": fused_loss,
            "matmul_kernels": json!({
                "shape": json!({ "m": km, "k": kk, "n": kn }),
                "iters": iters,
                "samples": 5,
                "seconds_per_call": json!({
                    "naive": mm_naive,
                    "blocked": mm_blocked,
                    "microkernel": mm_micro,
                }),
                "speedup": json!({
                    "microkernel_vs_blocked": mm_blocked / mm_micro,
                    "microkernel_vs_naive": mm_naive / mm_micro,
                }),
            }),
            "simd_dispatch": json!({
                "shape": json!({ "m": km, "k": kk, "n": kn }),
                "iters": iters,
                "samples": 5,
                "seconds_per_call": json!({
                    "forced_scalar": mm_forced_scalar,
                    "forced_simd": mm_forced_simd,
                }),
                "speedup_simd_vs_scalar": mm_forced_scalar / mm_forced_simd,
                "bit_identical": true,
            }),
            "step_scaling": json!({
                "config": json!({
                    "batch": scale_cfg.batch,
                    "microbatch": scale_cfg.microbatch,
                    "epochs": scale_cfg.epochs,
                    "train_examples": scale_cfg.train_examples,
                }),
                "seconds_per_run": Value::Object(
                    step_scaling
                        .iter()
                        .map(|(t, s)| (format!("threads_{t}"), json!(s)))
                        .collect(),
                ),
                "bit_identical_across_widths": true,
            }),
            "host": json!({
                "simd_host_supported": simd::host_supported(),
                "simd_active": simd::active(),
                "no_simd_env": std::env::var(simd::NO_SIMD_ENV).ok(),
                "threads_env": std::env::var("FTSIM_THREADS").ok(),
                "thread_count": ftsim_sim::thread_count(),
                "available_parallelism": std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            }),
            "fused_backward": json!({
                "shape": json!({ "m": bm, "k": bk, "n": bn }),
                "iters": biters,
                "samples": 5,
                "seconds_per_call": json!({
                    "fused_epilogue": bw_fused,
                    "composed_chain": bw_composed,
                }),
                "speedup_fused_vs_composed": bw_composed / bw_fused,
            }),
            "kernel_microbench": json!({
                "linear_shape": json!({ "m": km, "k": kk, "n": kn }),
                "softmax_shape": json!({ "rows": 2048, "cols": 64 }),
                "iters": iters,
                "seconds_per_call": json!({
                    "linear_naive": naive_linear,
                    "linear_fused": fused_linear,
                    "softmax_naive": naive_softmax,
                    "softmax_fused": fused_softmax,
                }),
                "speedup": json!({
                    "linear_fused": naive_linear / fused_linear,
                    "softmax_fused": naive_softmax / fused_softmax,
                }),
                "bit_identical": kernels_identical,
            }),
        }),
    }
}

// ----------------------------------------------------------------- Profile

/// Renders a [`Breakdown`] as `{key: {seconds, pct}}`.
fn breakdown_json(b: &Breakdown) -> Value {
    let total = b.total();
    Value::Object(
        b.sorted()
            .into_iter()
            .map(|(k, s)| (k, json!({ "seconds": s, "pct": 100.0 * s / total })))
            .collect(),
    )
}

/// Self-profile of the simulator under full observability: writes a
/// Chrome-trace (Perfetto-loadable) timeline and an aggregated summary as
/// named artifacts. Excluded from `repro all` because the recorded spans are
/// wall-clock timings.
///
/// Two process lanes share the trace document. `pid 1` is the *simulated*
/// A40 timeline: every priced kernel of one Mixtral-S step laid end to end
/// at its modeled latency — the Nsight-style view the paper's Figs. 4–6 are
/// read from. `pid 2` is the *wall-clock* timeline of the simulator's own
/// spans while it ran the Fig. 8 Mixtral-S/CS sweep and a small genuine MoE
/// training run.
///
/// The summary's stage/section/MoE-kernel percentages are computed from the
/// same `simulate_step` call the fig4/fig5/fig6 experiments price, so they
/// agree with those artifacts by construction.
/// Replays a priced step into the installed [`ftsim_obs`] sink as synthetic
/// spans: category `sim.gpu`, a dedicated tid, depth 0 = stage, depth 1 =
/// section, depth 2 = kernel, timestamps from a cursor over the *modeled*
/// latencies. Wall-clock guards would record pricing time, not device time;
/// this is what makes the streamed event log's flamegraph agree with
/// `profile_summary.json`'s stage breakdown by construction.
fn emit_simulated_timeline(trace: &ftsim_sim::StepTrace, attention: bool) {
    if !ftsim_obs::enabled() {
        return;
    }
    // Clear of the sequential wall-clock thread ids.
    const TID: u64 = 1_000_000;
    const CAT: &str = "sim.gpu";
    let ns = |s: f64| (s * 1e9).round() as u64;
    let mut cursor = 0u64;
    let mut stage: Option<(&'static str, u64, u64)> = None; // (label, start, dur)
    let mut section: Option<(&'static str, u64, u64)> = None;
    for r in trace.records() {
        let dur = ns(r.cost.latency_s);
        let stage_label = r.stage.label();
        let section_label = r.section.label(attention);
        if stage.map(|(l, _, _)| l) != Some(stage_label) {
            // A stage boundary also closes the open section.
            if let Some((l, start, d)) = section.take() {
                ftsim_obs::emit_span(CAT, l, start, d, TID, 1);
            }
            if let Some((l, start, d)) = stage.take() {
                ftsim_obs::emit_span(CAT, l, start, d, TID, 0);
            }
            stage = Some((stage_label, cursor, 0));
        }
        if section.map(|(l, _, _)| l) != Some(section_label) {
            if let Some((l, start, d)) = section.take() {
                ftsim_obs::emit_span(CAT, l, start, d, TID, 1);
            }
            section = Some((section_label, cursor, 0));
        }
        ftsim_obs::emit_span(CAT, r.desc.kind.label(), cursor, dur, TID, 2);
        if let Some(s) = stage.as_mut() {
            s.2 += dur;
        }
        if let Some(s) = section.as_mut() {
            s.2 += dur;
        }
        cursor += dur;
    }
    if let Some((l, start, d)) = section {
        ftsim_obs::emit_span(CAT, l, start, d, TID, 1);
    }
    if let Some((l, start, d)) = stage {
        ftsim_obs::emit_span(CAT, l, start, d, TID, 0);
    }
}

fn profile() -> ExperimentResult {
    let model = models::mixtral_8x7b();
    let sparse = true;
    let gpu = GpuSpec::a40();
    let seq = 79; // Fig. 8's commonsense sequence length.
    let sim = sim_for(&model, sparse, gpu.clone());
    let mb = max_batch(&model, sparse, &gpu, seq).max(1);

    ftsim_obs::reset();
    ftsim_obs::enable();

    // Wall-clock work under the tracer: the Fig. 8 sweep (sim.sweep/sim.step
    // spans, trace-cache and record-pool counters, per-kernel-class cost
    // counters) ...
    let batches: Vec<usize> = (1..=mb).collect();
    let sweep = ThroughputSweep::run(&sim, "Mixtral-S/CS", seq, &batches)
        .unwrap_or_else(|e| panic!("throughput sweep failed: {e}"));

    // ... plus a genuine MoE training run (sim.train spans, loss and
    // tokens/sec gauges, the expert-token histogram and imbalance gauge).
    let task = ftsim_workload::SyntheticTask::commonsense(16, 4, 42);
    let outcome = moetrain::train(&task, &MoeTrainConfig::mixtral_like(2), "profile");

    // The simulated timeline: re-price the peak-batch step (served from the
    // sweep-warmed trace cache) and read its Nsight-style gauges.
    let trace = sim.simulate_step(mb, seq);
    trace
        .moe_overall_utilization()
        .publish_gauges("gpu.profile.moe");
    emit_simulated_timeline(&trace, model.is_attention());

    let metrics = ftsim_obs::registry().snapshot();
    ftsim_obs::disable();
    let events = ftsim_obs::drain_events();
    let tree = ftsim_obs::SpanTree::build(&events);

    let mut chrome = ftsim_obs::ChromeTrace::new();
    chrome.name_process(1, format!("simulated {} (modeled time)", gpu.name));
    chrome.name_thread(1, 0, "kernel stream");
    let attention = model.is_attention();
    let mut cursor_us = 0.0;
    for r in trace.records() {
        let dur_us = r.cost.latency_s * 1e6;
        chrome.add_complete(
            1,
            0,
            r.desc.kind.label(),
            format!("{}:{}", r.stage.label(), r.section.label(attention)),
            cursor_us,
            dur_us,
        );
        cursor_us += dur_us;
    }
    chrome.name_process(2, "ftsim (wall clock)");
    chrome.add_recorded(&events, 2);

    let stage = trace.stage_breakdown();
    let section = trace.section_breakdown();
    let moe_kernels = trace.moe_kernel_breakdown();
    let util = trace.moe_overall_utilization();
    let cache = sim.cache_stats();
    let pool = ftsim_sim::record_pool_stats();

    let summary = json!({
        "config": json!({
            "model": "Mixtral-8x7B", "recipe": "qlora", "sparsity": "top-2",
            "gpu": gpu.name.clone(), "seq_len": seq, "batch": mb,
        }),
        "step": json!({
            "total_seconds": trace.total_seconds(),
            "kernels": trace.kernel_count(),
            "unique_kernels": trace.unique_kernel_count(),
            "stage_breakdown": breakdown_json(&stage),
            "section_breakdown": breakdown_json(&section),
            "moe_kernel_breakdown": breakdown_json(&moe_kernels),
            "moe_utilization": json!({
                "sm": util.sm_util, "dram": util.dram_util, "seconds": util.seconds,
            }),
        }),
        "sweep": json!({
            "label": sweep.label.clone(), "seq_len": sweep.seq_len,
            "points": sweep.points.len(),
            "qps_at_batch_1": sweep.qps_at(1).unwrap_or(0.0),
            "peak_qps": sweep.peak_qps(),
        }),
        "training": json!({
            "final_accuracy": outcome.final_accuracy(),
            "imbalance_delta": outcome.imbalance_delta(),
        }),
        "trace_cache": json!({ "hits": cache.hits, "misses": cache.misses }),
        "record_pool": json!({
            "fresh_allocs": pool.fresh_allocs, "reuses": pool.reuses,
            "returns": pool.returns, "discards": pool.discards,
        }),
        "span_count": events.len(),
        "chrome_event_count": chrome.len(),
        "metrics": serde_json::from_str(&metrics.to_json_string())
            .expect("registry snapshot is valid JSON"),
    });

    let mut text = String::new();
    let _ = writeln!(
        text,
        "profile: Mixtral-S/CS on {}, seq {seq}, batch {mb}",
        gpu.name
    );
    let _ = writeln!(
        text,
        "simulated step: {:.0} ms, {} kernels ({} unique)",
        trace.total_seconds() * 1e3,
        trace.kernel_count(),
        trace.unique_kernel_count()
    );
    let _ = writeln!(
        text,
        "  stages: fwd {:.1}%  bwd {:.1}%  opt {:.1}%",
        stage.percent("forward"),
        stage.percent("backward"),
        stage.percent("optimizer")
    );
    let _ = writeln!(
        text,
        "  moe utilization: sm {:.0}%  dram {:.0}%",
        util.sm_util * 100.0,
        util.dram_util * 100.0
    );
    let _ = writeln!(
        text,
        "sweep: {} points, peak {:.2} qps; training: final acc {:.2}",
        sweep.points.len(),
        sweep.peak_qps(),
        outcome.final_accuracy()
    );
    let _ = writeln!(
        text,
        "trace cache: {} hits / {} misses; record pool: {} reuses / {} fresh",
        cache.hits, cache.misses, pool.reuses, pool.fresh_allocs
    );
    let _ = writeln!(
        text,
        "{} wall-clock spans, {} chrome events; span tree:",
        events.len(),
        chrome.len()
    );
    text.push_str(&tree.render());

    ExperimentResult {
        id: "profile",
        title: "Self-profile: Chrome trace + metrics across the full stack",
        text,
        json: Value::Object(vec![
            ("summary".to_string(), summary.clone()),
            (
                ARTIFACTS_KEY.to_string(),
                Value::Object(vec![
                    (
                        "profile_trace.json".to_string(),
                        Value::String(chrome.to_json_string()),
                    ),
                    ("profile_summary.json".to_string(), summary),
                    // The raw registry export, byte-stable (sorted keys), so
                    // it can serve directly as an `obs-diff` baseline.
                    (
                        "profile_metrics.json".to_string(),
                        Value::String(metrics.to_json_string()),
                    ),
                ]),
            ),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that run the `profile` experiment: it toggles the
    /// process-global obs enable flag, resets the registry, and (in the
    /// streaming test) installs the global sink.
    fn profile_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn all_ids_run_and_produce_output() {
        // fig3/fig11 do real training; keep them but this is the slowest test.
        for id in experiment_ids() {
            let r = run(id);
            assert_eq!(r.id, id);
            assert!(!r.text.is_empty(), "{id} produced no text");
            assert!(!r.json.is_null(), "{id} produced no json");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run("fig99");
    }

    /// Unwraps an array value.
    fn rows_of<'a>(v: &'a Value, key: &str) -> &'a Vec<Value> {
        match v.get(key) {
            Some(Value::Array(rows)) => rows,
            other => panic!("expected {key} array, got {other:?}"),
        }
    }

    /// Unwraps a float (ints promote, matching the artifact encoding).
    fn num_of(v: &Value, key: &str) -> f64 {
        match v.get(key) {
            Some(Value::Float(f)) => *f,
            Some(Value::Int(i)) => *i as f64,
            other => panic!("expected number {key}, got {other:?}"),
        }
    }

    #[test]
    fn cluster_table_covers_the_grid_and_is_byte_stable() {
        let r = run("cluster");
        let table = r.json.get("table").expect("table");
        let rows = rows_of(table, "rows");
        // ≥3 GPU types × ≥3 world sizes × {data, tensor, expert}.
        assert_eq!(rows.len(), 3 * 4 * 3);
        let distinct = |key: &str| {
            let mut v: Vec<String> = rows
                .iter()
                .map(|r| format!("{:?}", r.get(key).expect(key)))
                .collect();
            v.sort();
            v.dedup();
            v.len()
        };
        assert_eq!(distinct("gpu"), 3);
        assert_eq!(distinct("world"), 4);
        assert_eq!(distinct("parallelism"), 3);
        let best = table.get("best").expect("best");
        assert_eq!(best.get("fits"), Some(&Value::Bool(true)));
        assert!(num_of(best, "usd_per_million_queries") > 0.0);

        // Pure math over memoized traces: a second run is byte-identical.
        let again = run("cluster");
        assert_eq!(
            serde_json::to_string(&r.json).unwrap(),
            serde_json::to_string(&again.json).unwrap()
        );
    }

    #[test]
    fn cluster_degenerate_row_matches_the_single_gpu_estimate() {
        let r = run("cluster");
        let rows = rows_of(r.json.get("table").expect("table"), "rows");
        let row = rows
            .iter()
            .find(|r| {
                r.get("gpu") == Some(&json!("A40"))
                    && r.get("world") == Some(&json!(1))
                    && r.get("parallelism") == Some(&json!("data"))
            })
            .expect("degenerate A40 row");
        // Bit-identical to the paper's single-GPU path: same Eq. 1 max
        // batch, same simulated step time.
        let model = models::mixtral_8x7b();
        let ft = FineTuneConfig::qlora_sparse();
        let batch = MemoryModel::new(&model, &ft).max_batch_size(&GpuSpec::a40(), 79);
        assert_eq!(row.get("max_batch"), Some(&json!(batch)));
        let step = StepSimulator::new(model, ft, a40())
            .simulate_step(batch, 79)
            .total_seconds();
        assert_eq!(num_of(row, "step_seconds").to_bits(), step.to_bits());
        assert_eq!(num_of(row, "comm_seconds"), 0.0);
    }

    #[test]
    fn alltoall_comm_share_grows_with_world_and_shrinks_with_bandwidth() {
        let r = run("alltoall");
        let rows = rows_of(&r.json, "rows");
        let pct = |routing: &str, link: &str, world: usize| -> f64 {
            let row = rows
                .iter()
                .find(|r| {
                    r.get("routing") == Some(&json!(routing))
                        && r.get("link") == Some(&json!(link))
                        && r.get("world") == Some(&json!(world))
                })
                .unwrap_or_else(|| panic!("missing row {routing}/{link}/{world}"));
            num_of(row, "comm_pct")
        };
        for routing in ["top-2", "dense"] {
            assert!(pct(routing, "NVLink3", 16) > pct(routing, "NVLink3", 2));
            assert!(pct(routing, "Ethernet100G", 8) > pct(routing, "NVLink3", 8));
        }
        // Dense routing moves 4x the bytes of top-2.
        assert!(pct("dense", "PCIe4x16", 8) > pct("top-2", "PCIe4x16", 8));
    }

    #[test]
    fn bench_engine_runs_and_results_stay_identical() {
        // Also asserts internally that naive/memoized/parallel agree bit-for-bit.
        let r = run("bench_engine");
        assert_eq!(r.id, "bench_engine");
        assert!(r.text.contains("bit-identical"), "{}", r.text);
        assert!(!experiment_ids().contains(&"bench_engine"));
        assert!(extra_experiment_ids().contains(&"bench_engine"));
    }

    #[test]
    fn bench_tensor_runs_zero_alloc_and_bit_identical() {
        // Asserts internally that pooled-fused losses match serial-naive
        // bit-for-bit and that steady-state steps allocate nothing.
        let r = run("bench_tensor");
        assert_eq!(r.id, "bench_tensor");
        assert!(r.text.contains("bit-identical"), "{}", r.text);
        assert_eq!(
            r.json
                .get("steady_state_fresh_allocs")
                .map(Value::to_string),
            Some("0".to_string())
        );
        assert!(!experiment_ids().contains(&"bench_tensor"));
        assert!(extra_experiment_ids().contains(&"bench_tensor"));
    }

    #[test]
    fn profile_artifacts_parse_and_agree_with_figure_aggregates() {
        let _g = profile_lock();
        let r = run("profile");
        assert_eq!(r.id, "profile");
        assert!(!experiment_ids().contains(&"profile"));
        assert!(extra_experiment_ids().contains(&"profile"));

        let artifacts = match r.json.get(ARTIFACTS_KEY) {
            Some(Value::Object(a)) => a,
            other => panic!("missing artifacts object: {other:?}"),
        };
        let lookup = |name: &str| -> &Value {
            artifacts
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing artifact {name}"))
        };

        // The Chrome trace parses back and has complete events on both the
        // simulated-GPU lane (pid 1) and the wall-clock lane (pid 2).
        let raw = match lookup("profile_trace.json") {
            Value::String(s) => s,
            other => panic!("trace artifact should be a raw string: {other:?}"),
        };
        let trace = serde_json::from_str(raw).expect("trace is valid JSON");
        let events = match trace.get("traceEvents") {
            Some(Value::Array(events)) => events,
            other => panic!("missing traceEvents: {other:?}"),
        };
        let lane = |pid: i64| {
            events
                .iter()
                .filter(|e| {
                    matches!(e.get("ph"), Some(Value::String(p)) if p == "X")
                        && matches!(e.get("pid"), Some(Value::Int(p)) if *p == pid)
                })
                .count()
        };
        assert!(lane(1) > 100, "simulated lane has {} events", lane(1));
        assert!(lane(2) > 10, "wall-clock lane has {} events", lane(2));

        // The summary's stage shares come from the same simulate_step the
        // figure experiments price; re-derive the reference breakdown and
        // require agreement within 5 percentage points.
        let summary = lookup("profile_summary.json");
        let pct = |stage: &str| -> f64 {
            let v = summary
                .get("step")
                .and_then(|s| s.get("stage_breakdown"))
                .and_then(|b| b.get(stage))
                .and_then(|s| s.get("pct"));
            match v {
                Some(Value::Float(f)) => *f,
                Some(Value::Int(i)) => *i as f64,
                other => panic!("missing {stage} pct: {other:?}"),
            }
        };
        let model = models::mixtral_8x7b();
        let mb = max_batch(&model, true, &GpuSpec::a40(), 79).max(1);
        let reference = sim_for(&model, true, GpuSpec::a40())
            .simulate_step(mb, 79)
            .stage_breakdown();
        for stage in ["forward", "backward", "optimizer"] {
            let got = pct(stage);
            let want = reference.percent(stage);
            assert!(
                (got - want).abs() < 5.0,
                "{stage}: profile {got:.1}% vs reference {want:.1}%"
            );
        }
    }

    #[test]
    fn streamed_log_replays_into_a_flamegraph_matching_the_summary() {
        let _g = profile_lock();
        let dir = std::env::temp_dir().join(format!("ftsim-flame-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.bin");

        // Same topology as the `repro` binary: ring sink + drain thread
        // installed before the profile run, clean shutdown after.
        let ring = std::sync::Arc::new(ftsim_obs::RingBuffer::with_capacity(1 << 16));
        let writer = ftsim_obs::BinLogWriter::spawn(
            &path,
            std::sync::Arc::clone(&ring),
            std::time::Duration::from_millis(10),
        )
        .unwrap();
        ftsim_obs::set_sink(std::sync::Arc::new(ftsim_obs::RingSink::new(ring)));
        let r = run("profile");
        ftsim_obs::clear_sink();
        let stats = writer.finish().unwrap();
        assert_eq!(stats.dropped_events, 0, "ring sized for a profile run");
        assert!(
            stats.events_written > 100,
            "{} events",
            stats.events_written
        );

        let (records, footer) = ftsim_obs::replay(&path).unwrap();
        assert_eq!(footer.unwrap().events_written, records.len() as u64);

        // Acceptance: the replayed flamegraph's simulated stage totals agree
        // with profile_summary.json's stage breakdown within 5pp.
        let flame = ftsim_obs::collapse(&records);
        let gpu_total = flame.total_under("gpu") as f64;
        assert!(gpu_total > 0.0, "simulated timeline reached the log");
        let summary_pct = |stage: &str| -> f64 {
            let v = r
                .json
                .get("summary")
                .and_then(|s| s.get("step"))
                .and_then(|s| s.get("stage_breakdown"))
                .and_then(|b| b.get(stage))
                .and_then(|s| s.get("pct"));
            match v {
                Some(Value::Float(f)) => *f,
                Some(Value::Int(i)) => *i as f64,
                other => panic!("missing {stage} pct: {other:?}"),
            }
        };
        for stage in ["forward", "backward", "optimizer"] {
            let flame_pct = 100.0 * flame.total_under(&format!("gpu;{stage}")) as f64 / gpu_total;
            let want = summary_pct(stage);
            assert!(
                (flame_pct - want).abs() < 5.0,
                "{stage}: flame {flame_pct:.1}% vs summary {want:.1}%"
            );
        }
        // The wall-clock side of the run landed in the same flame file.
        assert!(flame.total_under("ftsim") > 0, "wall-clock stacks present");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table3_reports_exact_matches() {
        let r = run("table3");
        assert!(
            r.text.contains("exact matches: 7/8") || r.text.contains("exact matches: 8/8"),
            "{}",
            r.text
        );
    }

    #[test]
    fn table4_ranks_h100_cheapest() {
        let r = run("table4");
        assert!(
            r.text.contains("most cost-effective: H100-80GB"),
            "{}",
            r.text
        );
    }
}
