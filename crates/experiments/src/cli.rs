//! Argument parsing and snapshot I/O for the `repro` binary.
//!
//! Parsing is up-front and strict: an unknown flag or experiment id is a
//! [`Err`] carrying the full valid-id list, which `main` prints before
//! exiting nonzero — nothing is deferred to fail (or silently no-op) after
//! experiments have already started running.

use ftsim_obs::metrics::HistogramSnapshot;
use ftsim_obs::{DiffConfig, QuantileSketch, SketchConfig, Snapshot};
use ftsim_serve::{LoadgenConfig, Mix, ServeConfig};
use serde_json::Value;

use crate::{experiment_ids, extra_experiment_ids};

/// One-screen usage text (the id lists are appended by [`usage`]).
pub const USAGE: &str = "usage: repro [--list] [--out DIR] [--follow] <all | id...>
       repro --follow [--out DIR]
           tail a live run's event log (results/profile_events.bin)
       repro cluster
           distributed-simulator cost table over GPU type x world size x
           {data,tensor,expert} parallelism; writes results/cluster_costs.json
           plus cluster_metrics.json (obs-diff gate input)
       repro alltoall
           expert-parallel all-to-all sensitivity sweep across link tiers,
           world sizes, and routing density (top-2 vs dense)
       repro obs-diff <baseline.json> <current.json>
                      [--threshold FRACTION] [--ignore SUBSTR]... [--log EVENTS.bin]
           compare metric snapshots (counters, gauges, histogram/sketch
           count+mean+p50+p99); exit 1 on regression
       repro serve [--addr HOST:PORT] [--cache-capacity N] [--shards N]
                   [--slo-target-p99-us US] [--slo-error-budget FRACTION]
                   [--events FILE]
           answer plan/estimate/sweep queries over a line protocol
           (one JSON scenario per line; {\"query\":\"shutdown\"} stops it,
           {\"query\":\"metrics\"} answers a Prometheus-style exposition
           ending with `# EOF`); --events streams sampled phase events
           into a binary log
       repro loadgen [--addr HOST:PORT] [--connections N] [--requests N]
                     [--pipeline N] [--scenarios N]
                     [--mix plan=8,estimate=3,sweep=1] [--seed N]
                     [--slo-target-p99-us US] [--slo-error-budget FRACTION]
                     [--out DIR] [--shutdown]
           closed-loop planner benchmark; without --addr it spawns an
           in-process server; --out writes bench_serve.json +
           serve_metrics.json + serve_slo.json";

/// Usage text plus the valid experiment ids.
pub fn usage() -> String {
    format!("{USAGE}\n{}", valid_ids_help())
}

fn valid_ids_help() -> String {
    format!(
        "valid ids: {}\nextra ids (not in `all`): {}",
        experiment_ids().join(" "),
        extra_experiment_ids().join(" ")
    )
}

/// A fully validated `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage and exit with this code.
    Help { exit_code: i32 },
    /// Print every experiment id.
    List,
    /// Run experiments (optionally with a live follower attached).
    Run {
        ids: Vec<String>,
        out_dir: String,
        follow: bool,
    },
    /// Tail-only mode: render `<out_dir>/profile_events.bin` live.
    Follow { out_dir: String },
    /// Metrics regression gate over two snapshot files.
    ObsDiff {
        baseline: String,
        current: String,
        config: DiffConfig,
        /// Optional event log whose footer (events written, drops by
        /// category) is appended to the report as informational notes.
        log: Option<String>,
    },
    /// Long-running planner-as-a-service TCP server.
    Serve {
        config: ServeConfig,
        /// When set, stream sampled observability events into this binary
        /// log while serving (drained ring + adaptive sampler).
        events: Option<String>,
    },
    /// Closed-loop load generator against a serve endpoint.
    Loadgen { config: LoadgenConfig },
}

/// Parses `args` (without the program name). Errors are user-facing
/// messages that already include the valid-id list where relevant.
pub fn parse(args: &[String]) -> Result<Command, String> {
    if args.is_empty() {
        return Ok(Command::Help { exit_code: 2 });
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::Help { exit_code: 0 });
    }
    if args[0] == "obs-diff" {
        return parse_obs_diff(&args[1..]);
    }
    if args[0] == "serve" {
        return parse_serve(&args[1..]);
    }
    if args[0] == "loadgen" {
        return parse_loadgen(&args[1..]);
    }

    let valid = experiment_ids();
    let extra = extra_experiment_ids();
    let mut out_dir = String::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut follow = false;
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--follow" => follow = true,
            "--out" => {
                out_dir = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--out requires a directory".to_string())?;
            }
            "all" => {
                for id in &valid {
                    if !ids.iter().any(|i| i == id) {
                        ids.push(id.to_string());
                    }
                }
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage()));
            }
            id => {
                if !valid.contains(&id) && !extra.contains(&id) {
                    return Err(format!(
                        "unknown experiment id {id:?}\n{}",
                        valid_ids_help()
                    ));
                }
                if !ids.iter().any(|i| i == id) {
                    ids.push(id.to_string());
                }
            }
        }
    }
    if list {
        return Ok(Command::List);
    }
    if ids.is_empty() {
        if follow {
            return Ok(Command::Follow { out_dir });
        }
        return Err(format!("no experiments selected\n{}", valid_ids_help()));
    }
    Ok(Command::Run {
        ids,
        out_dir,
        follow,
    })
}

fn parse_obs_diff(args: &[String]) -> Result<Command, String> {
    let mut config = DiffConfig::default();
    let mut paths: Vec<String> = Vec::new();
    let mut log = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log" => {
                let p = it
                    .next()
                    .ok_or_else(|| "--log requires an event-log path".to_string())?;
                log = Some(p.clone());
            }
            "--threshold" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threshold requires a value".to_string())?;
                let t: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid threshold {v:?} (want a fraction, e.g. 0.25)"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(format!("threshold must be a nonnegative fraction, got {v}"));
                }
                config.threshold = t;
            }
            "--ignore" => {
                let s = it
                    .next()
                    .ok_or_else(|| "--ignore requires a substring".to_string())?;
                config.ignore.push(s.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown obs-diff flag {flag:?}\n{USAGE}"));
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        return Err(format!(
            "obs-diff requires exactly <baseline.json> <current.json>, got {} path(s)\n{USAGE}",
            paths.len()
        ));
    }
    let current = paths.pop().expect("len 2");
    let baseline = paths.pop().expect("len 2");
    Ok(Command::ObsDiff {
        baseline,
        current,
        config,
        log,
    })
}

/// Parses a flag value that must be a positive integer.
fn positive<T: std::str::FromStr + PartialOrd + From<u8>>(
    flag: &str,
    v: Option<&String>,
) -> Result<T, String> {
    let v = v.ok_or_else(|| format!("{flag} requires a value"))?;
    let n: T = v
        .parse()
        .map_err(|_| format!("invalid {flag} value {v:?} (want a positive integer)"))?;
    if n < T::from(1u8) {
        return Err(format!("{flag} must be at least 1, got {v}"));
    }
    Ok(n)
}

/// Parses a flag value that must be a positive finite float.
fn positive_f64(flag: &str, v: Option<&String>) -> Result<f64, String> {
    let v = v.ok_or_else(|| format!("{flag} requires a value"))?;
    let n: f64 = v
        .parse()
        .map_err(|_| format!("invalid {flag} value {v:?} (want a positive number)"))?;
    if !n.is_finite() || n <= 0.0 {
        return Err(format!("{flag} must be a positive number, got {v}"));
    }
    Ok(n)
}

fn parse_serve(args: &[String]) -> Result<Command, String> {
    let mut config = ServeConfig::default();
    let mut events = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--addr requires HOST:PORT".to_string())?;
            }
            "--cache-capacity" => {
                config.cache_capacity = positive("--cache-capacity", it.next())?;
            }
            "--shards" => config.shards = positive("--shards", it.next())?,
            "--slo-target-p99-us" => {
                config.slo_target_p99_us = positive_f64("--slo-target-p99-us", it.next())?;
            }
            "--slo-error-budget" => {
                let budget = positive_f64("--slo-error-budget", it.next())?;
                if budget >= 1.0 {
                    return Err(format!(
                        "--slo-error-budget must be a fraction below 1, got {budget}"
                    ));
                }
                config.slo_error_budget = budget;
            }
            "--events" => {
                events = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--events requires a file path".to_string())?,
                );
            }
            other => return Err(format!("unknown serve argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Command::Serve { config, events })
}

/// Parses `plan=8,estimate=3,sweep=1` (any subset; omitted kinds keep their
/// default weight).
fn parse_mix(spec: &str) -> Result<Mix, String> {
    let mut mix = Mix::default();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (kind, weight) = part
            .split_once('=')
            .ok_or_else(|| format!("invalid mix component {part:?} (want kind=weight)"))?;
        let weight: u32 = weight
            .parse()
            .map_err(|_| format!("invalid mix weight in {part:?}"))?;
        match kind {
            "plan" => mix.plan = weight,
            "estimate" => mix.estimate = weight,
            "sweep" => mix.sweep = weight,
            other => return Err(format!("unknown mix kind {other:?} in {spec:?}")),
        }
    }
    if mix.plan == 0 && mix.estimate == 0 && mix.sweep == 0 {
        return Err(format!("mix {spec:?} has zero total weight"));
    }
    Ok(mix)
}

fn parse_loadgen(args: &[String]) -> Result<Command, String> {
    let mut config = LoadgenConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let a = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--addr requires HOST:PORT".to_string())?;
                config.addr = Some(a);
            }
            "--connections" => config.connections = positive("--connections", it.next())?,
            "--requests" => config.requests = positive("--requests", it.next())?,
            "--pipeline" => config.pipeline = positive("--pipeline", it.next())?,
            "--scenarios" => config.scenarios = positive("--scenarios", it.next())?,
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--seed requires a value".to_string())?;
                config.seed = v
                    .parse()
                    .map_err(|_| format!("invalid --seed value {v:?}"))?;
            }
            "--mix" => {
                let spec = it
                    .next()
                    .ok_or_else(|| "--mix requires plan=W,estimate=W,sweep=W".to_string())?;
                config.mix = parse_mix(spec)?;
            }
            "--out" => {
                let dir = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--out requires a directory".to_string())?;
                config.out_dir = Some(dir);
            }
            "--shutdown" => config.shutdown = true,
            "--slo-target-p99-us" => {
                config.slo_target_p99_us = positive_f64("--slo-target-p99-us", it.next())?;
            }
            "--slo-error-budget" => {
                let budget = positive_f64("--slo-error-budget", it.next())?;
                if budget >= 1.0 {
                    return Err(format!(
                        "--slo-error-budget must be a fraction below 1, got {budget}"
                    ));
                }
                config.slo_error_budget = budget;
            }
            other => return Err(format!("unknown loadgen argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Command::Loadgen { config })
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::Float(f) if *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

/// Locates the registry-export object inside `doc`: either the document
/// itself, or nested under `metrics` / `summary.metrics` (so both
/// `profile_metrics.json` and `profile.json` work as gate inputs).
fn find_metrics(doc: &Value) -> Option<&Value> {
    if doc.get("counters").is_some() {
        return Some(doc);
    }
    [
        doc.get("metrics"),
        doc.get("summary").and_then(|s| s.get("metrics")),
    ]
    .into_iter()
    .flatten()
    .find(|nested| nested.get("counters").is_some())
}

/// Parses a [`Snapshot`] back from its JSON export
/// ([`Snapshot::to_json_string`]) or from a document embedding one.
pub fn snapshot_from_json(text: &str) -> Result<Snapshot, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let metrics = find_metrics(&doc).ok_or_else(|| {
        "no metrics object found (expected counters/gauges/histograms)".to_string()
    })?;
    let mut snapshot = Snapshot::default();
    if let Some(Value::Object(entries)) = metrics.get("counters") {
        for (name, v) in entries {
            let v = as_u64(v).ok_or_else(|| format!("counter {name:?} is not a count"))?;
            snapshot.counters.insert(name.clone(), v);
        }
    }
    if let Some(Value::Object(entries)) = metrics.get("gauges") {
        for (name, v) in entries {
            let v = as_f64(v).ok_or_else(|| format!("gauge {name:?} is not a number"))?;
            snapshot.gauges.insert(name.clone(), v);
        }
    }
    if let Some(Value::Object(entries)) = metrics.get("histograms") {
        for (name, h) in entries {
            let arr = |key: &str| -> Vec<&Value> {
                match h.get(key) {
                    Some(Value::Array(items)) => items.iter().collect(),
                    _ => Vec::new(),
                }
            };
            let bounds: Option<Vec<f64>> = arr("bounds").into_iter().map(as_f64).collect();
            let buckets: Option<Vec<u64>> = arr("buckets").into_iter().map(as_u64).collect();
            let hist = HistogramSnapshot {
                bounds: bounds.ok_or_else(|| format!("histogram {name:?}: bad bounds"))?,
                buckets: buckets.ok_or_else(|| format!("histogram {name:?}: bad buckets"))?,
                count: h
                    .get("count")
                    .and_then(as_u64)
                    .ok_or_else(|| format!("histogram {name:?}: bad count"))?,
                sum: h
                    .get("sum")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("histogram {name:?}: bad sum"))?,
            };
            snapshot.histograms.insert(name.clone(), hist);
        }
    }
    if let Some(Value::Object(entries)) = metrics.get("sketches") {
        for (name, s) in entries {
            let field = |key: &str| -> Result<f64, String> {
                s.get(key)
                    .and_then(as_f64)
                    .ok_or_else(|| format!("sketch {name:?}: bad {key}"))
            };
            let config = SketchConfig {
                alpha: field("alpha")?,
                min_value: field("min_value")?,
                max_value: field("max_value")?,
            };
            let mut buckets: Vec<(usize, u64)> = Vec::new();
            if let Some(Value::Object(sparse)) = s.get("buckets") {
                for (index, n) in sparse {
                    let index: usize = index
                        .parse()
                        .map_err(|_| format!("sketch {name:?}: bad bucket index {index:?}"))?;
                    let n =
                        as_u64(n).ok_or_else(|| format!("sketch {name:?}: bad bucket count"))?;
                    buckets.push((index, n));
                }
            }
            let count = s
                .get("count")
                .and_then(as_u64)
                .ok_or_else(|| format!("sketch {name:?}: bad count"))?;
            let sketch = QuantileSketch::from_parts(
                config,
                &buckets,
                count,
                field("sum")?,
                // Empty sketches export min > max sentinels as JSON null;
                // fall back to the empty-sketch identities.
                field("min").unwrap_or(f64::INFINITY),
                field("max").unwrap_or(f64::NEG_INFINITY),
            )
            .map_err(|e| format!("sketch {name:?}: {e}"))?;
            snapshot.sketches.insert(name.clone(), sketch);
        }
    }
    Ok(snapshot)
}

/// Reads and parses a snapshot file.
pub fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    snapshot_from_json(&text).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_id_is_rejected_up_front_with_the_valid_list() {
        let err = parse(&args(&["fig99"])).unwrap_err();
        assert!(err.contains("unknown experiment id \"fig99\""), "{err}");
        assert!(err.contains("fig8"), "lists valid ids: {err}");
        assert!(err.contains("profile"), "lists extra ids: {err}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse(&args(&["--folow", "profile"])).unwrap_err();
        assert!(err.contains("unknown flag \"--folow\""), "{err}");
    }

    #[test]
    fn run_parses_ids_flags_and_dedups() {
        let cmd = parse(&args(&[
            "--out", "o", "fig8", "fig8", "--follow", "profile",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                ids: vec!["fig8".to_string(), "profile".to_string()],
                out_dir: "o".to_string(),
                follow: true,
            }
        );
    }

    #[test]
    fn all_expands_to_every_default_id() {
        let Command::Run { ids, .. } = parse(&args(&["all"])).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(ids.len(), experiment_ids().len());
    }

    #[test]
    fn bare_follow_is_tail_only_mode() {
        assert_eq!(
            parse(&args(&["--follow"])).unwrap(),
            Command::Follow {
                out_dir: "results".to_string()
            }
        );
    }

    #[test]
    fn empty_and_help_map_to_usage_exit_codes() {
        assert_eq!(parse(&[]).unwrap(), Command::Help { exit_code: 2 });
        assert_eq!(
            parse(&args(&["--help"])).unwrap(),
            Command::Help { exit_code: 0 }
        );
    }

    #[test]
    fn obs_diff_parses_threshold_and_ignores() {
        let cmd = parse(&args(&[
            "obs-diff",
            "base.json",
            "cur.json",
            "--threshold",
            "0.1",
            "--ignore",
            "tokens_per_sec",
        ]))
        .unwrap();
        let Command::ObsDiff {
            baseline,
            current,
            config,
            log,
        } = cmd
        else {
            panic!("expected ObsDiff");
        };
        assert_eq!(
            (baseline.as_str(), current.as_str()),
            ("base.json", "cur.json")
        );
        assert_eq!(config.threshold, 0.1);
        assert_eq!(config.ignore, vec!["tokens_per_sec".to_string()]);
        assert_eq!(log, None);
    }

    #[test]
    fn obs_diff_accepts_an_event_log_for_footer_notes() {
        let cmd = parse(&args(&["obs-diff", "a.json", "b.json", "--log", "ev.bin"])).unwrap();
        let Command::ObsDiff { log, .. } = cmd else {
            panic!("expected ObsDiff");
        };
        assert_eq!(log.as_deref(), Some("ev.bin"));
        assert!(parse(&args(&["obs-diff", "a", "b", "--log"])).is_err());
    }

    #[test]
    fn serve_parses_addr_capacity_and_shards() {
        let cmd = parse(&args(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--cache-capacity",
            "128",
            "--shards",
            "4",
        ]))
        .unwrap();
        let Command::Serve { config, events } = cmd else {
            panic!("expected Serve");
        };
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.cache_capacity, 128);
        assert_eq!(config.shards, 4);
        assert_eq!(events, None);
        // Strict: positional junk and zero values are rejected.
        assert!(parse(&args(&["serve", "extra"])).is_err());
        assert!(parse(&args(&["serve", "--shards", "0"])).is_err());
        assert!(parse(&args(&["serve", "--cache-capacity", "many"])).is_err());
    }

    #[test]
    fn serve_parses_slo_knobs_and_event_log() {
        let cmd = parse(&args(&[
            "serve",
            "--slo-target-p99-us",
            "2500",
            "--slo-error-budget",
            "0.01",
            "--events",
            "serve_events.bin",
        ]))
        .unwrap();
        let Command::Serve { config, events } = cmd else {
            panic!("expected Serve");
        };
        assert_eq!(config.slo_target_p99_us, 2500.0);
        assert_eq!(config.slo_error_budget, 0.01);
        assert_eq!(events.as_deref(), Some("serve_events.bin"));
        assert!(parse(&args(&["serve", "--slo-target-p99-us", "-5"])).is_err());
        assert!(parse(&args(&["serve", "--slo-error-budget", "1.5"])).is_err());
        assert!(parse(&args(&["serve", "--events"])).is_err());
    }

    #[test]
    fn loadgen_parses_the_full_flag_set() {
        let cmd = parse(&args(&[
            "loadgen",
            "--addr",
            "127.0.0.1:7878",
            "--connections",
            "8",
            "--requests",
            "1000",
            "--pipeline",
            "16",
            "--scenarios",
            "12",
            "--mix",
            "plan=5,sweep=2",
            "--seed",
            "7",
            "--slo-target-p99-us",
            "5000000",
            "--slo-error-budget",
            "0.005",
            "--out",
            "results",
            "--shutdown",
        ]))
        .unwrap();
        let Command::Loadgen { config } = cmd else {
            panic!("expected Loadgen");
        };
        assert_eq!(config.addr.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(config.connections, 8);
        assert_eq!(config.requests, 1000);
        assert_eq!(config.pipeline, 16);
        assert_eq!(config.scenarios, 12);
        assert_eq!(
            (config.mix.plan, config.mix.estimate, config.mix.sweep),
            (5, 3, 2)
        );
        assert_eq!(config.seed, 7);
        assert_eq!(config.out_dir.as_deref(), Some("results"));
        assert!(config.shutdown);
        assert_eq!(config.slo_target_p99_us, 5_000_000.0);
        assert_eq!(config.slo_error_budget, 0.005);
        assert!(parse(&args(&["loadgen", "--slo-error-budget", "1.0"])).is_err());
    }

    #[test]
    fn loadgen_defaults_and_bad_mixes_are_strict() {
        let Command::Loadgen { config } = parse(&args(&["loadgen"])).unwrap() else {
            panic!("expected Loadgen");
        };
        assert_eq!(config.addr, None, "no addr means in-process server");
        assert!(parse(&args(&["loadgen", "--mix", "plan"])).is_err());
        assert!(parse(&args(&["loadgen", "--mix", "train=3"])).is_err());
        assert!(parse(&args(&["loadgen", "--mix", "plan=0,estimate=0,sweep=0"])).is_err());
        assert!(parse(&args(&["loadgen", "--requests", "0"])).is_err());
        assert!(parse(&args(&["loadgen", "junk"])).is_err());
    }

    #[test]
    fn usage_lists_every_subcommand() {
        for needle in [
            "obs-diff",
            "serve",
            "loadgen",
            "--follow",
            "--mix",
            "--log",
            "--events",
            "--slo-target-p99-us",
            "--slo-error-budget",
            "metrics",
            "serve_slo.json",
            "cluster",
            "alltoall",
            "cluster_costs.json",
            "cluster_metrics.json",
        ] {
            assert!(USAGE.contains(needle), "usage is stale: missing {needle}");
        }
    }

    #[test]
    fn obs_diff_requires_two_paths_and_valid_threshold() {
        assert!(parse(&args(&["obs-diff", "only.json"])).is_err());
        assert!(parse(&args(&["obs-diff", "a", "b", "--threshold", "nope"])).is_err());
        assert!(parse(&args(&["obs-diff", "a", "b", "--threshold", "-1"])).is_err());
    }

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("steps".to_string(), 42);
        snapshot.gauges.insert("qps".to_string(), 1.5);
        snapshot.histograms.insert(
            "lat".to_string(),
            HistogramSnapshot {
                bounds: vec![1.0, 2.0],
                buckets: vec![3, 1, 0],
                count: 4,
                sum: 5.25,
            },
        );
        let mut sketch = QuantileSketch::new(SketchConfig::default());
        for v in [80.0, 95.0, 120.0, 4000.0] {
            sketch.record(v);
        }
        snapshot.sketches.insert("lat_us".to_string(), sketch);
        // An empty sketch exercises the min/max sentinel path.
        snapshot.sketches.insert(
            "quiet".to_string(),
            QuantileSketch::new(SketchConfig::default()),
        );
        let parsed = snapshot_from_json(&snapshot.to_json_string()).unwrap();
        assert_eq!(parsed, snapshot);
        assert_eq!(parsed.sketches["lat_us"].count(), 4);
    }

    #[test]
    fn snapshot_parses_from_nested_summary_documents() {
        let doc = r#"{"summary":{"metrics":{"counters":{"c":1},"gauges":{},"histograms":{}}}}"#;
        let parsed = snapshot_from_json(doc).unwrap();
        assert_eq!(parsed.counters["c"], 1);
        assert!(snapshot_from_json(r#"{"other":1}"#).is_err());
    }
}
