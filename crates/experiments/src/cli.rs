//! Argument parsing and snapshot I/O for the `repro` binary.
//!
//! Parsing is up-front and strict: an unknown flag or experiment id is a
//! [`Err`] carrying the full valid-id list, which `main` prints before
//! exiting nonzero — nothing is deferred to fail (or silently no-op) after
//! experiments have already started running.

use ftsim_obs::metrics::HistogramSnapshot;
use ftsim_obs::{DiffConfig, Snapshot};
use serde_json::Value;

use crate::{experiment_ids, extra_experiment_ids};

/// One-screen usage text (the id lists are appended by [`usage`]).
pub const USAGE: &str = "usage: repro [--list] [--out DIR] [--follow] <all | id...>
       repro --follow [--out DIR]
           tail a live run's event log (results/profile_events.bin)
       repro obs-diff <baseline.json> <current.json>
                      [--threshold FRACTION] [--ignore SUBSTR]...
           compare metric snapshots; exit 1 on regression";

/// Usage text plus the valid experiment ids.
pub fn usage() -> String {
    format!("{USAGE}\n{}", valid_ids_help())
}

fn valid_ids_help() -> String {
    format!(
        "valid ids: {}\nextra ids (not in `all`): {}",
        experiment_ids().join(" "),
        extra_experiment_ids().join(" ")
    )
}

/// A fully validated `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage and exit with this code.
    Help { exit_code: i32 },
    /// Print every experiment id.
    List,
    /// Run experiments (optionally with a live follower attached).
    Run {
        ids: Vec<String>,
        out_dir: String,
        follow: bool,
    },
    /// Tail-only mode: render `<out_dir>/profile_events.bin` live.
    Follow { out_dir: String },
    /// Metrics regression gate over two snapshot files.
    ObsDiff {
        baseline: String,
        current: String,
        config: DiffConfig,
    },
}

/// Parses `args` (without the program name). Errors are user-facing
/// messages that already include the valid-id list where relevant.
pub fn parse(args: &[String]) -> Result<Command, String> {
    if args.is_empty() {
        return Ok(Command::Help { exit_code: 2 });
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Command::Help { exit_code: 0 });
    }
    if args[0] == "obs-diff" {
        return parse_obs_diff(&args[1..]);
    }

    let valid = experiment_ids();
    let extra = extra_experiment_ids();
    let mut out_dir = String::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut follow = false;
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--follow" => follow = true,
            "--out" => {
                out_dir = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--out requires a directory".to_string())?;
            }
            "all" => {
                for id in &valid {
                    if !ids.iter().any(|i| i == id) {
                        ids.push(id.to_string());
                    }
                }
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage()));
            }
            id => {
                if !valid.contains(&id) && !extra.contains(&id) {
                    return Err(format!(
                        "unknown experiment id {id:?}\n{}",
                        valid_ids_help()
                    ));
                }
                if !ids.iter().any(|i| i == id) {
                    ids.push(id.to_string());
                }
            }
        }
    }
    if list {
        return Ok(Command::List);
    }
    if ids.is_empty() {
        if follow {
            return Ok(Command::Follow { out_dir });
        }
        return Err(format!("no experiments selected\n{}", valid_ids_help()));
    }
    Ok(Command::Run {
        ids,
        out_dir,
        follow,
    })
}

fn parse_obs_diff(args: &[String]) -> Result<Command, String> {
    let mut config = DiffConfig::default();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threshold requires a value".to_string())?;
                let t: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid threshold {v:?} (want a fraction, e.g. 0.25)"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(format!("threshold must be a nonnegative fraction, got {v}"));
                }
                config.threshold = t;
            }
            "--ignore" => {
                let s = it
                    .next()
                    .ok_or_else(|| "--ignore requires a substring".to_string())?;
                config.ignore.push(s.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown obs-diff flag {flag:?}\n{USAGE}"));
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        return Err(format!(
            "obs-diff requires exactly <baseline.json> <current.json>, got {} path(s)\n{USAGE}",
            paths.len()
        ));
    }
    let current = paths.pop().expect("len 2");
    let baseline = paths.pop().expect("len 2");
    Ok(Command::ObsDiff {
        baseline,
        current,
        config,
    })
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::Float(f) if *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

/// Locates the registry-export object inside `doc`: either the document
/// itself, or nested under `metrics` / `summary.metrics` (so both
/// `profile_metrics.json` and `profile.json` work as gate inputs).
fn find_metrics(doc: &Value) -> Option<&Value> {
    if doc.get("counters").is_some() {
        return Some(doc);
    }
    [
        doc.get("metrics"),
        doc.get("summary").and_then(|s| s.get("metrics")),
    ]
    .into_iter()
    .flatten()
    .find(|nested| nested.get("counters").is_some())
}

/// Parses a [`Snapshot`] back from its JSON export
/// ([`Snapshot::to_json_string`]) or from a document embedding one.
pub fn snapshot_from_json(text: &str) -> Result<Snapshot, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let metrics = find_metrics(&doc).ok_or_else(|| {
        "no metrics object found (expected counters/gauges/histograms)".to_string()
    })?;
    let mut snapshot = Snapshot::default();
    if let Some(Value::Object(entries)) = metrics.get("counters") {
        for (name, v) in entries {
            let v = as_u64(v).ok_or_else(|| format!("counter {name:?} is not a count"))?;
            snapshot.counters.insert(name.clone(), v);
        }
    }
    if let Some(Value::Object(entries)) = metrics.get("gauges") {
        for (name, v) in entries {
            let v = as_f64(v).ok_or_else(|| format!("gauge {name:?} is not a number"))?;
            snapshot.gauges.insert(name.clone(), v);
        }
    }
    if let Some(Value::Object(entries)) = metrics.get("histograms") {
        for (name, h) in entries {
            let arr = |key: &str| -> Vec<&Value> {
                match h.get(key) {
                    Some(Value::Array(items)) => items.iter().collect(),
                    _ => Vec::new(),
                }
            };
            let bounds: Option<Vec<f64>> = arr("bounds").into_iter().map(as_f64).collect();
            let buckets: Option<Vec<u64>> = arr("buckets").into_iter().map(as_u64).collect();
            let hist = HistogramSnapshot {
                bounds: bounds.ok_or_else(|| format!("histogram {name:?}: bad bounds"))?,
                buckets: buckets.ok_or_else(|| format!("histogram {name:?}: bad buckets"))?,
                count: h
                    .get("count")
                    .and_then(as_u64)
                    .ok_or_else(|| format!("histogram {name:?}: bad count"))?,
                sum: h
                    .get("sum")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("histogram {name:?}: bad sum"))?,
            };
            snapshot.histograms.insert(name.clone(), hist);
        }
    }
    Ok(snapshot)
}

/// Reads and parses a snapshot file.
pub fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    snapshot_from_json(&text).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_id_is_rejected_up_front_with_the_valid_list() {
        let err = parse(&args(&["fig99"])).unwrap_err();
        assert!(err.contains("unknown experiment id \"fig99\""), "{err}");
        assert!(err.contains("fig8"), "lists valid ids: {err}");
        assert!(err.contains("profile"), "lists extra ids: {err}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse(&args(&["--folow", "profile"])).unwrap_err();
        assert!(err.contains("unknown flag \"--folow\""), "{err}");
    }

    #[test]
    fn run_parses_ids_flags_and_dedups() {
        let cmd = parse(&args(&[
            "--out", "o", "fig8", "fig8", "--follow", "profile",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                ids: vec!["fig8".to_string(), "profile".to_string()],
                out_dir: "o".to_string(),
                follow: true,
            }
        );
    }

    #[test]
    fn all_expands_to_every_default_id() {
        let Command::Run { ids, .. } = parse(&args(&["all"])).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(ids.len(), experiment_ids().len());
    }

    #[test]
    fn bare_follow_is_tail_only_mode() {
        assert_eq!(
            parse(&args(&["--follow"])).unwrap(),
            Command::Follow {
                out_dir: "results".to_string()
            }
        );
    }

    #[test]
    fn empty_and_help_map_to_usage_exit_codes() {
        assert_eq!(parse(&[]).unwrap(), Command::Help { exit_code: 2 });
        assert_eq!(
            parse(&args(&["--help"])).unwrap(),
            Command::Help { exit_code: 0 }
        );
    }

    #[test]
    fn obs_diff_parses_threshold_and_ignores() {
        let cmd = parse(&args(&[
            "obs-diff",
            "base.json",
            "cur.json",
            "--threshold",
            "0.1",
            "--ignore",
            "tokens_per_sec",
        ]))
        .unwrap();
        let Command::ObsDiff {
            baseline,
            current,
            config,
        } = cmd
        else {
            panic!("expected ObsDiff");
        };
        assert_eq!(
            (baseline.as_str(), current.as_str()),
            ("base.json", "cur.json")
        );
        assert_eq!(config.threshold, 0.1);
        assert_eq!(config.ignore, vec!["tokens_per_sec".to_string()]);
    }

    #[test]
    fn obs_diff_requires_two_paths_and_valid_threshold() {
        assert!(parse(&args(&["obs-diff", "only.json"])).is_err());
        assert!(parse(&args(&["obs-diff", "a", "b", "--threshold", "nope"])).is_err());
        assert!(parse(&args(&["obs-diff", "a", "b", "--threshold", "-1"])).is_err());
    }

    #[test]
    fn snapshot_json_round_trips_through_the_parser() {
        let mut snapshot = Snapshot::default();
        snapshot.counters.insert("steps".to_string(), 42);
        snapshot.gauges.insert("qps".to_string(), 1.5);
        snapshot.histograms.insert(
            "lat".to_string(),
            HistogramSnapshot {
                bounds: vec![1.0, 2.0],
                buckets: vec![3, 1, 0],
                count: 4,
                sum: 5.25,
            },
        );
        let parsed = snapshot_from_json(&snapshot.to_json_string()).unwrap();
        assert_eq!(parsed, snapshot);
    }

    #[test]
    fn snapshot_parses_from_nested_summary_documents() {
        let doc = r#"{"summary":{"metrics":{"counters":{"c":1},"gauges":{},"histograms":{}}}}"#;
        let parsed = snapshot_from_json(doc).unwrap();
        assert_eq!(parsed.counters["c"], 1);
        assert!(snapshot_from_json(r#"{"other":1}"#).is_err());
    }
}
