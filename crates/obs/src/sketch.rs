//! Log-bucketed quantile sketch with a bounded relative error.
//!
//! [`QuantileSketch`] is the HDR/DDSketch-style answer to "what is p99?"
//! under fixed memory: values map into geometrically spaced buckets
//! (`bucket i` covers `(min·γ^(i-1), min·γ^i]` with `γ = (1+α)/(1−α)`), so
//! any quantile estimate is within relative error `α` of some recorded
//! sample at that rank — independent of the distribution, with no
//! per-sample allocation and no sorting. Sketches over the same
//! [`SketchConfig`] **merge** by bucket-wise addition, which is exact:
//! merge is associative and commutative, and a merged sketch answers
//! quantiles as if every sample had been recorded directly. That is what
//! the windowed time-series engine ([`mod@crate::timeseries`]) is built on —
//! ring slots hold small sketches and "p99 over the last 10s" is a merge.
//!
//! Error contract (property-tested in `tests/sketch_prop.rs`):
//! * for values inside `[min_value, max_value]`, `quantile(q)` is within
//!   `α` relative error of the exact rank-`⌈q·n⌉` order statistic;
//! * `count`/`sum` (and therefore `mean`) are exact;
//! * values at or below `min_value` collapse into the first bucket and
//!   report as `min_value`; values above `max_value` clamp into the last
//!   bucket (the only places the bound does not hold).
//!
//! [`Sketch`] is the lock-free shared-handle variant for the metrics
//! registry: same bucket mapping, atomic counters, snapshots back into a
//! plain [`QuantileSketch`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket-scheme parameters. Two sketches merge only if their configs are
/// identical (same `α`, same value range ⇒ same bucket boundaries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Relative-error bound for quantile estimates (e.g. `0.01` = 1%).
    pub alpha: f64,
    /// Values at or below this collapse into bucket 0.
    pub min_value: f64,
    /// Values above this clamp into the last bucket.
    pub max_value: f64,
}

impl Default for SketchConfig {
    /// 1% relative error over `[1e-3, 1e9]` — sized for latencies in
    /// microseconds, from sub-nanosecond to ~17 minutes (1389 buckets,
    /// ~11 KiB per sketch).
    fn default() -> SketchConfig {
        SketchConfig {
            alpha: 0.01,
            min_value: 1e-3,
            max_value: 1e9,
        }
    }
}

impl SketchConfig {
    /// `γ = (1+α)/(1−α)`: the bucket growth factor.
    pub fn gamma(&self) -> f64 {
        (1.0 + self.alpha) / (1.0 - self.alpha)
    }

    /// Number of buckets the config needs (fixed at construction).
    pub fn bucket_count(&self) -> usize {
        let span = (self.max_value / self.min_value).ln() / self.gamma().ln();
        span.ceil() as usize + 1
    }

    /// Bucket index for `value` (clamped into `[0, bucket_count)`).
    fn index(&self, value: f64) -> usize {
        // NaN also lands in bucket 0: the comparison is false and the
        // NaN-valued `raw` below casts to 0 anyway.
        if value <= self.min_value {
            return 0;
        }
        let raw = (value / self.min_value).ln() / self.gamma().ln();
        (raw.ceil() as usize).min(self.bucket_count() - 1)
    }

    /// Representative value of bucket `i`: the point minimizing the worst
    /// relative error over the bucket's range, `min·γ^i · 2/(1+γ)`.
    fn value(&self, index: usize) -> f64 {
        if index == 0 {
            return self.min_value;
        }
        let gamma = self.gamma();
        self.min_value * gamma.powi(index as i32) * 2.0 / (1.0 + gamma)
    }
}

/// The plain (single-owner) sketch. See module docs for the error contract.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    config: SketchConfig,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// An empty sketch over `config`'s bucket scheme.
    pub fn new(config: SketchConfig) -> QuantileSketch {
        QuantileSketch {
            config,
            buckets: vec![0; config.bucket_count()],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket scheme.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// Records one sample. Non-finite values are dropped.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buckets[self.config.index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`. Exact: quantiles of the
    /// result match a sketch that recorded both sample streams directly.
    ///
    /// # Panics
    /// If the configs (and therefore bucket boundaries) differ.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.config, other.config,
            "merging sketches with different bucket schemes"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (exact; 0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact; 0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Clears every bucket (the scheme is kept).
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Estimates the `q`-quantile (`q` clamped into `[0, 1]`; 0 when
    /// empty): the representative value of the bucket holding the
    /// rank-`max(1, ⌈q·n⌉)` order statistic, within `α` relative error of
    /// that sample (clamped tails aside — see module docs).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                // Clamp into the exact envelope so the estimate never
                // leaves [min, max] (tightens the tails for free).
                return self.config.value(i).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Number of recorded samples whose *bucket* lies strictly above the
    /// bucket of `threshold` — the sketch's answer to "how many requests
    /// exceeded the target?", exact up to bucket resolution (a sample
    /// within `α` of the threshold may land on either side).
    pub fn count_above(&self, threshold: f64) -> u64 {
        let cut = self.config.index(threshold);
        self.buckets[cut + 1..].iter().sum()
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending — the sparse
    /// form used by snapshot JSON.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Rebuilds a sketch from its sparse snapshot form. Out-of-range
    /// indices are an error (a corrupt or mismatched snapshot).
    pub fn from_parts(
        config: SketchConfig,
        buckets: &[(usize, u64)],
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Result<QuantileSketch, String> {
        let mut sketch = QuantileSketch::new(config);
        for &(index, n) in buckets {
            let slot = sketch
                .buckets
                .get_mut(index)
                .ok_or_else(|| format!("sketch bucket index {index} out of range"))?;
            *slot = n;
        }
        sketch.count = count;
        sketch.sum = sum;
        sketch.min = if count == 0 { f64::INFINITY } else { min };
        sketch.max = if count == 0 { f64::NEG_INFINITY } else { max };
        Ok(sketch)
    }

    /// `self - earlier`, bucket-wise (saturating), for snapshot diffs. The
    /// exact `min`/`max` envelope is not subtractable, so the later
    /// sketch's values are kept.
    pub fn diff(&self, earlier: &QuantileSketch) -> QuantileSketch {
        let mut out = self.clone();
        if earlier.config == self.config {
            for (mine, theirs) in out.buckets.iter_mut().zip(&earlier.buckets) {
                *mine = mine.saturating_sub(*theirs);
            }
            out.count = out.count.saturating_sub(earlier.count);
            out.sum -= earlier.sum;
        }
        out
    }
}

#[derive(Debug)]
struct SketchInner {
    config: SketchConfig,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of samples, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Handle to a shared, lock-free sketch (the registry's latency metric
/// type). Updates through a handle are atomic ops — recording never blocks
/// and never allocates.
#[derive(Debug, Clone)]
pub struct Sketch(Arc<SketchInner>);

/// CAS-update an `f64`-bits atomic with a monotone combiner.
fn update_f64(cell: &AtomicU64, value: f64, pick: impl Fn(f64, f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = pick(f64::from_bits(current), value).to_bits();
        if next == current {
            return;
        }
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

impl Sketch {
    /// An empty shared sketch over `config`.
    pub fn new(config: SketchConfig) -> Sketch {
        Sketch(Arc::new(SketchInner {
            config,
            buckets: (0..config.bucket_count())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }

    /// Records one sample. Gated on [`crate::enabled`]; non-finite values
    /// are dropped.
    #[inline]
    pub fn record(&self, value: f64) {
        if !crate::enabled() || !value.is_finite() {
            return;
        }
        let inner = &*self.0;
        inner.buckets[inner.config.index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        update_f64(&inner.sum_bits, value, |acc, v| acc + v);
        update_f64(&inner.min_bits, value, f64::min);
        update_f64(&inner.max_bits, value, f64::max);
    }

    /// Point-in-time copy as a plain sketch.
    pub fn snapshot(&self) -> QuantileSketch {
        let inner = &*self.0;
        let count = inner.count.load(Ordering::Relaxed);
        QuantileSketch {
            config: inner.config,
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(inner.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(inner.max_bits.load(Ordering::Relaxed)),
        }
    }

    /// Zeroes the sketch (handles stay valid).
    pub fn reset(&self) {
        let inner = &*self.0;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        inner
            .min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        inner
            .max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn quantiles_are_within_alpha_of_exact_order_statistics() {
        let config = SketchConfig::default();
        let mut sketch = QuantileSketch::new(config);
        // A deliberately skewed latency-like distribution.
        let mut values: Vec<f64> = (1..=1000)
            .map(|i| 3.0 + (i as f64).powf(1.7) * 0.01)
            .collect();
        for &v in &values {
            sketch.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let est = sketch.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= config.alpha + 1e-9,
                "q={q}: {est} vs {exact} ({rel})"
            );
        }
        assert_eq!(sketch.count(), 1000);
        let exact_sum: f64 = values.iter().sum();
        assert!((sketch.sum() - exact_sum).abs() < 1e-6);
        assert_eq!(sketch.min(), values[0]);
        assert_eq!(sketch.max(), values[999]);
    }

    #[test]
    fn merge_equals_direct_recording() {
        let config = SketchConfig::default();
        let mut all = QuantileSketch::new(config);
        let mut a = QuantileSketch::new(config);
        let mut b = QuantileSketch::new(config);
        for i in 0..500 {
            let v = 1.0 + (i as f64) * 0.37;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all, "merge is exact, not approximate");
    }

    #[test]
    fn out_of_range_values_clamp_instead_of_growing() {
        let config = SketchConfig::default();
        let mut sketch = QuantileSketch::new(config);
        sketch.record(0.0); // at/below min_value -> bucket 0
        sketch.record(-5.0);
        sketch.record(1e18); // beyond max_value -> last bucket
        assert_eq!(sketch.count(), 3);
        assert_eq!(sketch.buckets.len(), config.bucket_count());
        assert!(sketch.quantile(0.1) >= 0.0);
    }

    #[test]
    fn count_above_splits_at_the_threshold_bucket() {
        let mut sketch = QuantileSketch::new(SketchConfig::default());
        for v in [10.0, 20.0, 30.0, 400.0, 5000.0] {
            sketch.record(v);
        }
        assert_eq!(sketch.count_above(100.0), 2);
        assert_eq!(sketch.count_above(1e8), 0);
        assert_eq!(sketch.count_above(1e-6), 5);
    }

    #[test]
    fn sparse_round_trip_preserves_the_sketch() {
        let mut sketch = QuantileSketch::new(SketchConfig::default());
        for v in [1.5, 88.0, 88.2, 1e7] {
            sketch.record(v);
        }
        let parts: Vec<(usize, u64)> = sketch.nonzero_buckets().collect();
        let rebuilt = QuantileSketch::from_parts(
            sketch.config(),
            &parts,
            sketch.count(),
            sketch.sum(),
            sketch.min(),
            sketch.max(),
        )
        .unwrap();
        assert_eq!(rebuilt, sketch);
        assert!(QuantileSketch::from_parts(
            SketchConfig::default(),
            &[(usize::MAX, 1)],
            1,
            1.0,
            1.0,
            1.0
        )
        .is_err());
    }

    #[test]
    fn shared_handle_matches_plain_recording() {
        let _g = test_lock();
        crate::enable();
        let shared = Sketch::new(SketchConfig::default());
        let mut plain = QuantileSketch::new(SketchConfig::default());
        for i in 0..100 {
            let v = 0.5 + i as f64 * 2.25;
            shared.record(v);
            plain.record(v);
        }
        crate::disable();
        shared.record(999.0); // disabled: dropped
        assert_eq!(shared.snapshot(), plain);
        shared.reset();
        assert!(shared.snapshot().is_empty());
    }
}
