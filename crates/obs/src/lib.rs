//! `ftsim-obs` — observability substrate for the ftsim workspace.
//!
//! The source paper is a *characterization* study: its headline artifacts are
//! Nsight-Compute execution-time breakdowns, SM/DRAM utilization curves, and
//! expert-load histograms. This crate is the reproduction's measurement
//! substrate — the simulated analogue of the paper's profiling toolchain —
//! and the self-profiling harness for the repo's own hot paths:
//!
//! * [`fn@span`] / [`SpanGuard`] — thread-local RAII span tracing with nesting,
//!   monotonic timestamps, and stable thread ids. Recorded spans serialize to
//!   Chrome Trace Event JSON ([`chrome::ChromeTrace`], loadable in Perfetto or
//!   `chrome://tracing`) and aggregate into an in-process tree
//!   ([`tree::SpanTree`]).
//! * [`metrics`] — a global registry of named counters, gauges, and
//!   fixed-bucket histograms with a snapshot/diff API and JSON export.
//! * [`sink::ObsSink`] — a hook trait for shipping events elsewhere; the
//!   built-in tracer + registry are the default destination, and an installed
//!   sink receives every span/counter/gauge/histogram event in addition.
//! * [`ring`] / [`binlog`] — the streaming leg: a bounded lock-free MPSC
//!   ring-buffer sink (producers never block or allocate; overload drops and
//!   counts) drained by a background thread into a length-prefixed binary
//!   event log that a second process can tail while the run is live.
//! * [`flame`] / [`diff`] — offline exporters over that log: collapsed-stack
//!   flamegraphs and a thresholded metrics regression gate.
//!
//! # Cost discipline
//!
//! Observability is **off by default** and every recording entry point starts
//! with [`enabled()`], a single relaxed atomic load behind `#[inline]` — the
//! disabled path is branch-predictable and allocation-free (guarded by a
//! bench-style test in `tests/overhead.rs`). Compiling the crate without the
//! `enabled` cargo feature removes the instrumentation bodies entirely.
//!
//! No external dependencies: JSON is emitted by hand (the workspace's vendored
//! `serde_json` is used only in tests, to parse the output back).
#![deny(missing_docs)]

pub mod binlog;
pub mod chrome;
pub mod diff;
pub mod flame;
pub mod metrics;
pub mod ring;
pub mod sink;
pub mod sketch;
pub mod slo;
pub mod span;
pub mod timeseries;
pub mod tree;

pub use binlog::{replay, BinLogWriter, Footer, LogReader, LogRecord, RingSink, WriterStats};
pub use chrome::ChromeTrace;
pub use diff::{compare, DiffConfig, DiffReport};
pub use flame::{collapse, FlameGraph};
pub use metrics::{registry, Counter, Gauge, Histogram, Registry, Snapshot};
pub use ring::{CategoryCounts, DroppedCounts, RingBuffer, RingEvent, Sampler, SamplerConfig};
pub use sink::{clear_sink, set_sink, ObsSink};
pub use sketch::{QuantileSketch, Sketch, SketchConfig};
pub use slo::{SloSpec, SloStatus};
pub use span::{drain_events, emit_span, span, span_lazy, Event, SpanGuard};
pub use timeseries::{
    default_windows, timeseries, SeriesHandle, TimeSeriesRegistry, WindowSpec, WindowStats,
    WindowedSeries,
};
pub use tree::SpanTree;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "enabled")]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when instrumentation is compiled in *and* runtime-enabled.
///
/// This is the gate every recording entry point checks first; it is a single
/// relaxed atomic load, so leaving instrumentation in hot paths costs one
/// predictable branch when observability is off.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Turns recording on. No-op without the `enabled` cargo feature.
pub fn enable() {
    #[cfg(feature = "enabled")]
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-recorded events and metric values persist
/// until [`reset`].
pub fn disable() {
    #[cfg(feature = "enabled")]
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all recorded spans, all registered metric values, and all
/// windowed time-series.
pub fn reset() {
    span::clear_events();
    metrics::registry().reset();
    timeseries::timeseries().reset();
}

/// Serializes unit tests that toggle the process-global enable flag.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        // Tests share the process-global flag, so restore state.
        let was = enabled();
        disable();
        assert!(!enabled());
        enable();
        assert!(enabled());
        if !was {
            disable();
        }
    }
}
