//! SLO definitions and burn-rate evaluation over rolling windows.
//!
//! An [`SloSpec`] pins a latency series to a target: "p99 of
//! `serve.latency_us` stays under `target_p99`, with at most
//! `error_budget` of requests allowed over the target". Evaluation is pure
//! arithmetic over the series' sketches ([`mod@crate::timeseries`]):
//!
//! * `violations` — samples whose sketch bucket lies above the target
//!   ([`crate::sketch::QuantileSketch::count_above`]; exact up to bucket
//!   resolution, i.e. a sample within `α` of the target may land on either
//!   side).
//! * `burn_rate` — `(violations / count) / error_budget`: the rate at
//!   which the error budget is being consumed. `1.0` means "spending
//!   budget exactly as fast as allowed"; above `1.0` the SLO will be
//!   breached if the window's behavior persists; `0.0` means no
//!   violations at all. Evaluated per rolling window (fast-burn alerts
//!   come from short windows, slow burns from long ones) and cumulatively.
//!
//! The cumulative status is what CI gates on (`baselines/serve_slo.json`):
//! wall-clock noise moves windowed counts, but a healthy deterministic run
//! has cumulative `violations == 0` and `burn_rate == 0` exactly.

use crate::timeseries::WindowedSeries;

/// An SLO over a latency series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// SLO name (used in `stats`/exposition output).
    pub name: String,
    /// The windowed series the SLO is evaluated against.
    pub series: String,
    /// Latency target, same unit as the series' samples (µs for the serve
    /// latency series): a sample above this is a violation.
    pub target_p99: f64,
    /// Fraction of samples allowed over the target (e.g. `0.001` = 99.9%
    /// of requests must meet the target).
    pub error_budget: f64,
}

impl SloSpec {
    /// A serve-latency SLO: `p99(series) <= target_p99_us` for
    /// `1 - error_budget` of requests.
    pub fn latency(series: &str, target_p99_us: f64, error_budget: f64) -> SloSpec {
        SloSpec {
            name: format!("{series}.p99"),
            series: series.to_string(),
            target_p99: target_p99_us,
            error_budget: error_budget.max(f64::MIN_POSITIVE),
        }
    }

    /// Evaluates the SLO against `series` as of `now_ns`: one status per
    /// rolling window (in configuration order) plus the cumulative status
    /// (window label `"total"`) last.
    pub fn evaluate_at(&self, series: &WindowedSeries, now_ns: u64) -> Vec<SloStatus> {
        let mut out = Vec::new();
        for window in series.window_names() {
            if let Some(sketch) = series.window_sketch_at(window, now_ns) {
                out.push(self.status_for(window, &sketch));
            }
        }
        out.push(self.status_for("total", series.total_sketch()));
        out
    }

    fn status_for(&self, window: &str, sketch: &crate::sketch::QuantileSketch) -> SloStatus {
        let count = sketch.count();
        let violations = sketch.count_above(self.target_p99);
        let violation_rate = if count == 0 {
            0.0
        } else {
            violations as f64 / count as f64
        };
        let burn_rate = violation_rate / self.error_budget;
        SloStatus {
            window: window.to_string(),
            count,
            violations,
            p99: sketch.quantile(0.99),
            burn_rate,
            healthy: burn_rate <= 1.0,
        }
    }
}

/// The evaluated state of an SLO over one window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Window label (`"total"` for the cumulative status).
    pub window: String,
    /// Samples in the window.
    pub count: u64,
    /// Samples over the target (bucket-resolution exact).
    pub violations: u64,
    /// Observed p99 in the window (α-bounded).
    pub p99: f64,
    /// Budget burn rate (`0` = clean, `1` = spending exactly the budget,
    /// `>1` = on track to breach).
    pub burn_rate: f64,
    /// `burn_rate <= 1`.
    pub healthy: bool,
}

impl SloSpec {
    /// Appends Prometheus-style burn/violation lines for `statuses` to
    /// `out` (deterministic order: statuses as produced by
    /// [`SloSpec::evaluate_at`]).
    pub fn render_into(&self, out: &mut String, statuses: &[SloStatus]) {
        let metric = crate::timeseries::prometheus_name(&self.name);
        out.push_str("# TYPE slo_");
        out.push_str(&metric);
        out.push_str("_burn_rate gauge\n");
        for s in statuses {
            out.push_str("slo_");
            out.push_str(&metric);
            out.push_str("_burn_rate{window=\"");
            out.push_str(&s.window);
            out.push_str("\"} ");
            out.push_str(&crate::chrome::format_json_f64(s.burn_rate));
            out.push('\n');
        }
        out.push_str("# TYPE slo_");
        out.push_str(&metric);
        out.push_str("_violations counter\n");
        for s in statuses {
            out.push_str("slo_");
            out.push_str(&metric);
            out.push_str("_violations{window=\"");
            out.push_str(&s.window);
            out.push_str("\"} ");
            out.push_str(&s.violations.to_string());
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::WindowedSeries;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn clean_series_has_zero_burn_everywhere() {
        let mut series = WindowedSeries::with_defaults();
        for i in 0..1000u64 {
            series.record_at(i * 1_000_000, 50.0 + (i % 7) as f64);
        }
        let slo = SloSpec::latency("serve.latency_us", 1000.0, 0.001);
        let statuses = slo.evaluate_at(&series, SEC);
        assert_eq!(statuses.len(), 4, "three windows + total");
        assert_eq!(statuses.last().unwrap().window, "total");
        for s in &statuses {
            assert_eq!(s.violations, 0);
            assert_eq!(s.burn_rate, 0.0);
            assert!(s.healthy);
        }
        assert_eq!(statuses.last().unwrap().count, 1000);
    }

    #[test]
    fn violations_burn_the_budget_at_the_documented_rate() {
        let mut series = WindowedSeries::with_defaults();
        // 990 fast + 10 slow out of 1000 with a 1% budget: violation rate
        // 1%, burn exactly 1.0 (healthy boundary).
        for i in 0..1000u64 {
            let v = if i % 100 == 0 { 50_000.0 } else { 80.0 };
            series.record_at(i * 1_000_000, v);
        }
        let slo = SloSpec::latency("serve.latency_us", 1000.0, 0.01);
        let total = slo.evaluate_at(&series, SEC).pop().unwrap();
        assert_eq!(total.violations, 10);
        assert!((total.burn_rate - 1.0).abs() < 1e-9);
        assert!(total.healthy);
        // Halve the budget: burn 2.0, unhealthy.
        let strict = SloSpec::latency("serve.latency_us", 1000.0, 0.005);
        let total = strict.evaluate_at(&series, SEC).pop().unwrap();
        assert!((total.burn_rate - 2.0).abs() < 1e-9);
        assert!(!total.healthy);
        assert!(total.p99 < 1000.0, "p99 itself is still under target");
    }

    #[test]
    fn windowed_burn_reflects_only_recent_samples() {
        let mut series = WindowedSeries::with_defaults();
        // Violations only in the first second; clean traffic at t=30s.
        for i in 0..10u64 {
            series.record_at(i * 1_000_000, 10_000.0);
        }
        for i in 0..10u64 {
            series.record_at(30 * SEC + i * 1_000_000, 10.0);
        }
        let slo = SloSpec::latency("serve.latency_us", 1000.0, 0.001);
        let statuses = slo.evaluate_at(&series, 30 * SEC + SEC / 2);
        let by_window = |w: &str| statuses.iter().find(|s| s.window == w).unwrap().clone();
        assert_eq!(by_window("1s").violations, 0, "old burst rolled out");
        assert_eq!(by_window("10s").violations, 0);
        assert_eq!(by_window("60s").violations, 10, "still in the 60s window");
        assert_eq!(by_window("total").violations, 10);
        assert!(!by_window("total").healthy);
    }

    #[test]
    fn exposition_lines_are_deterministic() {
        let mut series = WindowedSeries::with_defaults();
        series.record_at(0, 5.0);
        let slo = SloSpec::latency("serve.latency_us", 1000.0, 0.001);
        let statuses = slo.evaluate_at(&series, SEC);
        let mut a = String::new();
        slo.render_into(&mut a, &statuses);
        let mut b = String::new();
        slo.render_into(&mut b, &statuses);
        assert_eq!(a, b);
        assert!(a.contains("# TYPE slo_serve_latency_us_p99_burn_rate gauge\n"));
        assert!(a.contains("slo_serve_latency_us_p99_burn_rate{window=\"total\"} 0.0\n"));
        assert!(a.contains("slo_serve_latency_us_p99_violations{window=\"1s\"} 0\n"));
    }
}
