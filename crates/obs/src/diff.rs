//! Metrics regression gate: compare two registry [`Snapshot`]s.
//!
//! [`compare`] walks every counter, gauge, histogram, and quantile sketch
//! in a baseline and a current snapshot and classifies each metric by the
//! *symmetric relative difference* `|cur − base| / max(|base|, |cur|)`
//! against a configurable threshold. Distributions (histograms and
//! sketches) contribute four derived entries each — `<name>.count`,
//! `<name>.mean`, `<name>.p50`, `<name>.p99` — so the gate catches tail
//! regressions, and the substring ignore list composes naturally into
//! per-percentile exemptions (`--ignore .p99`, `--ignore lat.p50`). The
//! result renders as a human-readable report and answers
//! [`DiffReport::has_regressions`], which is what `repro obs-diff` turns
//! into its exit code (and CI into a gate against a checked-in baseline).
//!
//! Policy choices, made for a *simulated* workload with some wall-clock
//! metrics mixed in:
//! * The gate is two-sided — an unexplained improvement is drift too, and
//!   drift is what invalidates a checked-in baseline.
//! * Metrics present on one side only are `Missing` (regression: the run
//!   stopped emitting something the baseline had) or `Added` (informational
//!   only — new instrumentation must not fail the gate retroactively).
//! * An ignore list of substrings exempts inherently nondeterministic
//!   metrics (e.g. wall-clock tokens/sec) without loosening the threshold
//!   for everything else.

use std::fmt::Write as _;

use crate::metrics::Snapshot;

/// How one metric compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within threshold.
    Ok,
    /// Relative change beyond threshold, or present only in the baseline.
    Regressed,
    /// Present only in the baseline (a species of regression).
    Missing,
    /// Present only in the current snapshot (informational).
    Added,
    /// Matched the ignore list; never fails the gate.
    Ignored,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Regressed => "REGRESSED",
            Status::Missing => "MISSING",
            Status::Added => "added",
            Status::Ignored => "ignored",
        }
    }

    /// Whether this status fails the gate.
    pub fn is_failure(self) -> bool {
        matches!(self, Status::Regressed | Status::Missing)
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Metric name; histograms and sketches contribute `<name>.count`,
    /// `<name>.mean`, `<name>.p50`, and `<name>.p99`.
    pub name: String,
    /// `"counter"`, `"gauge"`, `"histogram"`, or `"sketch"`.
    pub kind: &'static str,
    /// Baseline value (`None` for [`Status::Added`]).
    pub baseline: Option<f64>,
    /// Current value (`None` for [`Status::Missing`]).
    pub current: Option<f64>,
    /// Symmetric relative difference in `[0, 1]` (0 when either side is
    /// absent or both are zero).
    pub rel_change: f64,
    /// Classification of this metric's change.
    pub status: Status,
}

/// Gate configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffConfig {
    /// Maximum allowed symmetric relative difference (e.g. `0.25` = 25%).
    pub threshold: f64,
    /// Metrics whose name contains any of these substrings are [`Status::Ignored`].
    pub ignore: Vec<String>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            threshold: 0.25,
            ignore: Vec::new(),
        }
    }
}

/// The full comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Every compared metric, name-sorted within baseline order.
    pub entries: Vec<Entry>,
    /// The threshold the entries were judged against.
    pub threshold: f64,
    /// Informational context lines appended to the text report (e.g. the
    /// event-log footer's drop breakdown). Never affect the gate.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when any entry fails the gate.
    pub fn has_regressions(&self) -> bool {
        self.entries.iter().any(|e| e.status.is_failure())
    }

    /// Count of gate-failing entries.
    pub fn regression_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.status.is_failure())
            .count()
    }

    /// Human-readable report: one line per metric, regressions first-class.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "obs-diff: {} metrics compared, threshold {:.1}%",
            self.entries.len(),
            self.threshold * 100.0
        );
        for e in &self.entries {
            let fmt = |v: Option<f64>| match v {
                Some(v) => format!("{v:.6}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  [{:>9}] {:<9} {:<44} {} -> {} ({:+.2}%)",
                e.status.label(),
                e.kind,
                e.name,
                fmt(e.baseline),
                fmt(e.current),
                signed_pct(e.baseline, e.current, e.rel_change),
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        let failures = self.regression_count();
        if failures > 0 {
            let _ = writeln!(out, "obs-diff: FAIL — {failures} regression(s)");
        } else {
            let _ = writeln!(out, "obs-diff: PASS");
        }
        out
    }
}

fn signed_pct(baseline: Option<f64>, current: Option<f64>, rel: f64) -> f64 {
    let sign = match (baseline, current) {
        (Some(b), Some(c)) if c < b => -1.0,
        _ => 1.0,
    };
    sign * rel * 100.0
}

/// `|cur − base| / max(|base|, |cur|)`; 0 when both are (near) zero.
pub fn relative_difference(base: f64, cur: f64) -> f64 {
    let scale = base.abs().max(cur.abs());
    if scale < 1e-12 {
        0.0
    } else {
        (cur - base).abs() / scale
    }
}

/// Compares `current` against `baseline` under `config`.
pub fn compare(baseline: &Snapshot, current: &Snapshot, config: &DiffConfig) -> DiffReport {
    let mut entries = Vec::new();
    let ignored = |name: &str| config.ignore.iter().any(|s| name.contains(s.as_str()));

    let mut push = |name: String, kind: &'static str, base: Option<f64>, cur: Option<f64>| {
        let (rel, status) = if ignored(&name) {
            (0.0, Status::Ignored)
        } else {
            match (base, cur) {
                (Some(b), Some(c)) => {
                    let rel = relative_difference(b, c);
                    let status = if rel > config.threshold {
                        Status::Regressed
                    } else {
                        Status::Ok
                    };
                    (rel, status)
                }
                (Some(_), None) => (0.0, Status::Missing),
                (None, Some(_)) => (0.0, Status::Added),
                (None, None) => (0.0, Status::Ok),
            }
        };
        entries.push(Entry {
            name,
            kind,
            baseline: base,
            current: cur,
            rel_change: rel,
            status,
        });
    };

    for (name, &b) in &baseline.counters {
        push(
            name.clone(),
            "counter",
            Some(b as f64),
            current.counters.get(name).map(|&c| c as f64),
        );
    }
    for (name, &c) in &current.counters {
        if !baseline.counters.contains_key(name) {
            push(name.clone(), "counter", None, Some(c as f64));
        }
    }

    for (name, &b) in &baseline.gauges {
        push(
            name.clone(),
            "gauge",
            Some(b),
            current.gauges.get(name).copied(),
        );
    }
    for (name, &c) in &current.gauges {
        if !baseline.gauges.contains_key(name) {
            push(name.clone(), "gauge", None, Some(c));
        }
    }

    // Distributions compare by derived statistics — bucket-exact comparison
    // would make the gate flaky under any timing or float jitter. Count and
    // mean are exact; p50/p99 are bucket-bound estimates for histograms and
    // α-bounded for sketches, and the `.p50`/`.p99` entry names make
    // per-percentile ignores a plain substring match.
    for (name, b) in &baseline.histograms {
        let cur = current.histograms.get(name);
        push(
            format!("{name}.count"),
            "histogram",
            Some(b.count as f64),
            cur.map(|h| h.count as f64),
        );
        push(
            format!("{name}.mean"),
            "histogram",
            Some(b.mean()),
            cur.map(|h| h.mean()),
        );
        push(
            format!("{name}.p50"),
            "histogram",
            Some(b.quantile(0.50)),
            cur.map(|h| h.quantile(0.50)),
        );
        push(
            format!("{name}.p99"),
            "histogram",
            Some(b.quantile(0.99)),
            cur.map(|h| h.quantile(0.99)),
        );
    }
    for (name, c) in &current.histograms {
        if !baseline.histograms.contains_key(name) {
            push(
                format!("{name}.count"),
                "histogram",
                None,
                Some(c.count as f64),
            );
            push(format!("{name}.mean"), "histogram", None, Some(c.mean()));
            push(
                format!("{name}.p50"),
                "histogram",
                None,
                Some(c.quantile(0.50)),
            );
            push(
                format!("{name}.p99"),
                "histogram",
                None,
                Some(c.quantile(0.99)),
            );
        }
    }

    for (name, b) in &baseline.sketches {
        let cur = current.sketches.get(name);
        push(
            format!("{name}.count"),
            "sketch",
            Some(b.count() as f64),
            cur.map(|s| s.count() as f64),
        );
        push(
            format!("{name}.mean"),
            "sketch",
            Some(b.mean()),
            cur.map(|s| s.mean()),
        );
        push(
            format!("{name}.p50"),
            "sketch",
            Some(b.quantile(0.50)),
            cur.map(|s| s.quantile(0.50)),
        );
        push(
            format!("{name}.p99"),
            "sketch",
            Some(b.quantile(0.99)),
            cur.map(|s| s.quantile(0.99)),
        );
    }
    for (name, c) in &current.sketches {
        if !baseline.sketches.contains_key(name) {
            push(
                format!("{name}.count"),
                "sketch",
                None,
                Some(c.count() as f64),
            );
            push(format!("{name}.mean"), "sketch", None, Some(c.mean()));
            push(
                format!("{name}.p50"),
                "sketch",
                None,
                Some(c.quantile(0.50)),
            );
            push(
                format!("{name}.p99"),
                "sketch",
                None,
                Some(c.quantile(0.99)),
            );
        }
    }

    DiffReport {
        entries,
        threshold: config.threshold,
        notes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    fn snap(counters: &[(&str, u64)], gauges: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: Default::default(),
            sketches: Default::default(),
        }
    }

    #[test]
    fn within_threshold_passes_beyond_fails() {
        let base = snap(&[("steps", 100)], &[("qps", 2.0)]);
        let ok = snap(&[("steps", 110)], &[("qps", 2.2)]);
        let cfg = DiffConfig {
            threshold: 0.25,
            ignore: Vec::new(),
        };
        assert!(!compare(&base, &ok, &cfg).has_regressions());

        let bad = snap(&[("steps", 100)], &[("qps", 1.0)]);
        let report = compare(&base, &bad, &cfg);
        assert!(report.has_regressions());
        let qps = report.entries.iter().find(|e| e.name == "qps").unwrap();
        assert_eq!(qps.status, Status::Regressed);
        assert!((qps.rel_change - 0.5).abs() < 1e-12, "{}", qps.rel_change);
        assert!(report.to_text().contains("FAIL"));
    }

    #[test]
    fn gate_is_two_sided() {
        let base = snap(&[], &[("latency", 1.0)]);
        let faster = snap(&[], &[("latency", 0.5)]);
        let cfg = DiffConfig::default();
        assert!(
            compare(&base, &faster, &cfg).has_regressions(),
            "unexplained improvement is drift"
        );
    }

    #[test]
    fn missing_fails_added_does_not() {
        let base = snap(&[("old", 1)], &[]);
        let cur = snap(&[("new", 1)], &[]);
        let report = compare(&base, &cur, &DiffConfig::default());
        let by_name = |n: &str| report.entries.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("old").status, Status::Missing);
        assert_eq!(by_name("new").status, Status::Added);
        assert!(report.has_regressions(), "missing is a regression");
        assert_eq!(report.regression_count(), 1, "added is not");
    }

    #[test]
    fn ignore_list_exempts_by_substring() {
        let base = snap(&[], &[("sim.train.tokens_per_sec", 1000.0)]);
        let cur = snap(&[], &[("sim.train.tokens_per_sec", 10.0)]);
        let cfg = DiffConfig {
            threshold: 0.25,
            ignore: vec!["tokens_per_sec".to_string()],
        };
        let report = compare(&base, &cur, &cfg);
        assert!(!report.has_regressions());
        assert_eq!(report.entries[0].status, Status::Ignored);
    }

    #[test]
    fn notes_render_without_affecting_the_gate() {
        let base = snap(&[("steps", 100)], &[]);
        let mut report = compare(&base, &base, &DiffConfig::default());
        report
            .notes
            .push("event log: 2 events dropped (spans=2 ...)".to_string());
        assert!(!report.has_regressions(), "notes are informational");
        let text = report.to_text();
        assert!(text.contains("note: event log: 2 events dropped"), "{text}");
        assert!(text.contains("PASS"), "{text}");
    }

    #[test]
    fn zero_to_zero_is_ok_and_histograms_compare_count_and_mean() {
        let hist = |count: u64, sum: f64| HistogramSnapshot {
            bounds: vec![1.0],
            buckets: vec![count, 0],
            count,
            sum,
        };
        let mut base = snap(&[("idle", 0)], &[]);
        base.histograms.insert("lat".to_string(), hist(10, 50.0));
        let mut cur = snap(&[("idle", 0)], &[]);
        cur.histograms.insert("lat".to_string(), hist(10, 51.0));
        let report = compare(&base, &cur, &DiffConfig::default());
        assert!(!report.has_regressions());
        for suffix in [".count", ".mean", ".p50", ".p99"] {
            assert!(
                report
                    .entries
                    .iter()
                    .any(|e| e.name == format!("lat{suffix}")),
                "missing lat{suffix}"
            );
        }
    }

    #[test]
    fn histogram_tail_shift_is_caught_by_p99() {
        // Same count, nearly same mean, but the tail moves a bucket: only
        // the p99 entry regresses.
        let hist = |tail_bucket: usize| {
            let mut buckets = vec![98, 0, 0, 0];
            buckets[tail_bucket] += 2;
            HistogramSnapshot {
                bounds: vec![1.0, 10.0, 100.0],
                buckets,
                count: 100,
                sum: 100.0,
            }
        };
        let mut base = snap(&[], &[]);
        base.histograms.insert("lat".to_string(), hist(1));
        let mut cur = snap(&[], &[]);
        cur.histograms.insert("lat".to_string(), hist(2));
        let cfg = DiffConfig {
            threshold: 0.25,
            ignore: Vec::new(),
        };
        let report = compare(&base, &cur, &cfg);
        let by_name = |n: &str| report.entries.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("lat.count").status, Status::Ok);
        assert_eq!(by_name("lat.mean").status, Status::Ok);
        assert_eq!(by_name("lat.p50").status, Status::Ok);
        assert_eq!(by_name("lat.p99").status, Status::Regressed);

        // Per-percentile ignore is a plain substring match on the entry
        // name: exempt the tail without loosening anything else.
        let cfg = DiffConfig {
            threshold: 0.25,
            ignore: vec!["lat.p99".to_string()],
        };
        assert!(!compare(&base, &cur, &cfg).has_regressions());
    }

    #[test]
    fn sketches_compare_percentiles_and_missing_fails() {
        use crate::sketch::{QuantileSketch, SketchConfig};
        let sketch = |tail: f64| {
            let mut s = QuantileSketch::new(SketchConfig::default());
            for _ in 0..98 {
                s.record(100.0);
            }
            s.record(tail);
            s.record(tail);
            s
        };
        let mut base = snap(&[], &[]);
        base.sketches
            .insert("serve.latency_us".to_string(), sketch(120.0));
        let mut cur = snap(&[], &[]);
        cur.sketches
            .insert("serve.latency_us".to_string(), sketch(9000.0));
        let report = compare(&base, &cur, &DiffConfig::default());
        let by_name = |n: &str| report.entries.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("serve.latency_us.count").status, Status::Ok);
        assert_eq!(by_name("serve.latency_us.p50").status, Status::Ok);
        assert_eq!(by_name("serve.latency_us.p99").status, Status::Regressed);
        assert_eq!(by_name("serve.latency_us.p99").kind, "sketch");

        // A sketch present only in the baseline is a regression; one only
        // in the current snapshot is informational.
        let report = compare(&base, &snap(&[], &[]), &DiffConfig::default());
        assert_eq!(report.regression_count(), 4, "all four entries missing");
        let report = compare(&snap(&[], &[]), &cur, &DiffConfig::default());
        assert!(!report.has_regressions());
        assert!(report
            .entries
            .iter()
            .all(|e| e.status == Status::Added && e.kind == "sketch"));
    }
}
