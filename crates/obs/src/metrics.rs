//! Global metrics registry: named counters, gauges, fixed-bucket
//! histograms, and quantile sketches.
//!
//! Metrics are created on first use and live for the process. The cheap way
//! to update a hot metric is to hold a handle ([`Counter`], [`Gauge`],
//! [`Histogram`], [`Sketch`]) — updates through a handle are lock-free
//! atomic ops. The name-based free functions ([`Registry::counter_add`]
//! etc.) look the handle up under a registry lock each call and are meant
//! for cold paths.
//!
//! Histograms and sketches both record value distributions; the split is
//! deliberate: histograms have caller-chosen coarse bounds (cheap, good for
//! shapes like "fraction under 1ms"), while sketches ([`crate::sketch`])
//! answer arbitrary quantiles with a bounded relative error and merge
//! exactly — latency metrics that feed percentile gates or SLOs belong in
//! sketches.
//!
//! [`Registry::snapshot`] captures all current values; [`Snapshot::diff`]
//! subtracts an earlier snapshot (counters and histogram buckets subtract,
//! gauges keep the later value) so a caller can meter exactly one region of
//! work. Snapshots export to JSON by hand (no dependencies).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::sink;
use crate::sketch::{QuantileSketch, Sketch, SketchConfig};

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta`. Gated on [`crate::enabled`] so instrumented hot paths
    /// pay one relaxed load when observability is off.
    #[inline]
    pub fn add(&self, delta: u64) {
        if crate::enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Overwrites the value (for mirroring an externally maintained count).
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a gauge: a last-write-wins `f64` stored as bits in an atomic.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge. Gated on [`crate::enabled`].
    #[inline]
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Overwrites the value unconditionally (for mirroring an externally
    /// computed figure into a private [`Registry`] regardless of the
    /// global enable flag), mirroring [`Counter::store`].
    pub fn store(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Handle to a fixed-bucket histogram.
///
/// Bucket `i` counts samples `<= bounds[i]`; one overflow bucket counts the
/// rest. Sum and count are tracked exactly, so the mean is exact even though
/// quantiles are bucket-resolution.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; last is overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of samples, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Records one sample. Gated on [`crate::enabled`].
    #[inline]
    pub fn record(&self, value: f64) {
        if !crate::enabled() {
            return;
        }
        let inner = &*self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut current = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Registry of metrics, keyed by name.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    sketches: Mutex<BTreeMap<String, Sketch>>,
}

impl Registry {
    /// Returns (creating if needed) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter map");
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter(Arc::new(AtomicU64::new(0)));
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// Returns (creating if needed) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge map");
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())));
                map.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// Returns (creating if needed) the histogram named `name` with the given
    /// upper bucket bounds (must be sorted ascending). Bounds are fixed at
    /// creation; later calls with different bounds return the existing
    /// histogram unchanged.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds sorted");
        let mut map = self.histograms.lock().expect("histogram map");
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram(Arc::new(HistogramInner {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                }));
                map.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Returns (creating if needed) the quantile sketch named `name`.
    /// Sketches use the process-wide default [`SketchConfig`] (1% relative
    /// error over the µs latency range) so any two sketches merge; the
    /// scheme is fixed at creation.
    pub fn sketch(&self, name: &str) -> Sketch {
        let mut map = self.sketches.lock().expect("sketch map");
        match map.get(name) {
            Some(s) => s.clone(),
            None => {
                let s = Sketch::new(SketchConfig::default());
                map.insert(name.to_string(), s.clone());
                s
            }
        }
    }

    /// Cold-path convenience: record into a sketch by name, creating it on
    /// first use (unlike histograms, sketches need no per-metric bounds).
    /// Forwards to the installed sink as a histogram-sample event, so the
    /// binlog/follow pipeline sees sketch samples without a new wire tag.
    #[inline]
    pub fn sketch_record(&self, name: &str, value: f64) {
        if !crate::enabled() {
            return;
        }
        self.sketch(name).record(value);
        sink::forward_histogram(name, value);
    }

    /// Cold-path convenience: add to a counter by name (and forward to the
    /// installed sink).
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !crate::enabled() {
            return;
        }
        self.counter(name).add(delta);
        sink::forward_counter(name, delta);
    }

    /// Cold-path convenience: set a gauge by name (and forward to the sink).
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !crate::enabled() {
            return;
        }
        self.gauge(name).set(value);
        sink::forward_gauge(name, value);
    }

    /// Cold-path convenience: record into a histogram by name (and forward to
    /// the sink). The histogram must already exist (created via
    /// [`Registry::histogram`]); otherwise the sample is dropped, because
    /// bucket bounds can't be invented here.
    #[inline]
    pub fn histogram_record(&self, name: &str, value: f64) {
        if !crate::enabled() {
            return;
        }
        let existing = self
            .histograms
            .lock()
            .expect("histogram map")
            .get(name)
            .cloned();
        if let Some(h) = existing {
            h.record(value);
            sink::forward_histogram(name, value);
        }
    }

    /// Captures every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("counter map")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauge map")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("histogram map")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            sketches: self
                .sketches
                .lock()
                .expect("sketch map")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric (handles stay valid).
    pub fn reset(&self) {
        for c in self.counters.lock().expect("counter map").values() {
            c.store(0);
        }
        for g in self.gauges.lock().expect("gauge map").values() {
            g.0.store(0.0f64.to_bits(), Ordering::Relaxed);
        }
        for h in self.histograms.lock().expect("histogram map").values() {
            for b in &h.0.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.0.count.store(0, Ordering::Relaxed);
            h.0.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        }
        for s in self.sketches.lock().expect("sketch map").values() {
            s.reset();
        }
    }
}

/// Point-in-time copy of a histogram's contents.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `buckets[bounds.len()]` is overflow.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution `q`-quantile estimate: the upper bound of the
    /// bucket holding the rank-`max(1, ⌈q·n⌉)` sample, saturating at the
    /// last finite bound when the rank falls in the overflow bucket (the
    /// fixed-bucket scheme cannot say more — latency metrics needing real
    /// tail accuracy use [`QuantileSketch`] instead). 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return self.bounds[i.min(self.bounds.len() - 1)];
            }
        }
        *self.bounds.last().expect("non-empty bounds")
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values keyed by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values keyed by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram state keyed by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Quantile-sketch state keyed by name (empty for snapshots parsed from
    /// files written before sketches existed).
    pub sketches: BTreeMap<String, QuantileSketch>,
}

impl Snapshot {
    /// `self - earlier`: counters and histogram buckets/sums subtract
    /// (saturating at zero for counts); gauges keep `self`'s value. Metrics
    /// absent from `earlier` pass through unchanged.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut h = h.clone();
                if let Some(before) = earlier.histograms.get(k) {
                    if before.bounds == h.bounds {
                        for (b, &prev) in h.buckets.iter_mut().zip(&before.buckets) {
                            *b = b.saturating_sub(prev);
                        }
                        h.count = h.count.saturating_sub(before.count);
                        h.sum -= before.sum;
                    }
                }
                (k.clone(), h)
            })
            .collect();
        let sketches = self
            .sketches
            .iter()
            .map(|(k, s)| {
                let s = match earlier.sketches.get(k) {
                    Some(before) => s.diff(before),
                    None => s.clone(),
                };
                (k.clone(), s)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            sketches,
        }
    }

    /// Renders the snapshot as a compact JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...},"sketches":{...}}`.
    /// Sketches serialize sparsely (`"buckets"` maps non-empty bucket index
    /// to count) plus the exact `count`/`sum`/`min`/`max` and the bucket
    /// scheme, so a parsed snapshot answers the same quantiles.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::chrome::write_json_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::chrome::write_json_string(&mut out, k);
            out.push(':');
            out.push_str(&crate::chrome::format_json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::chrome::write_json_string(&mut out, k);
            out.push_str(":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&crate::chrome::format_json_f64(*b));
            }
            out.push_str("],\"buckets\":[");
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("],\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&crate::chrome::format_json_f64(h.sum));
            out.push('}');
        }
        out.push_str("},\"sketches\":{");
        for (i, (k, s)) in self.sketches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::chrome::write_json_string(&mut out, k);
            let config = s.config();
            out.push_str(":{\"alpha\":");
            out.push_str(&crate::chrome::format_json_f64(config.alpha));
            out.push_str(",\"min_value\":");
            out.push_str(&crate::chrome::format_json_f64(config.min_value));
            out.push_str(",\"max_value\":");
            out.push_str(&crate::chrome::format_json_f64(config.max_value));
            out.push_str(",\"count\":");
            out.push_str(&s.count().to_string());
            out.push_str(",\"sum\":");
            out.push_str(&crate::chrome::format_json_f64(s.sum()));
            out.push_str(",\"min\":");
            out.push_str(&crate::chrome::format_json_f64(s.min()));
            out.push_str(",\"max\":");
            out.push_str(&crate::chrome::format_json_f64(s.max()));
            out.push_str(",\"buckets\":{");
            for (j, (index, n)) in s.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&index.to_string());
                out.push_str("\":");
                out.push_str(&n.to_string());
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counters_gauges_histograms_record_and_diff() {
        let _g = test_lock();
        crate::enable();
        let c = registry().counter("test.metrics.counter");
        let g = registry().gauge("test.metrics.gauge");
        let h = registry().histogram("test.metrics.hist", &[1.0, 10.0]);
        c.store(0);
        let before = registry().snapshot();
        c.add(3);
        g.set(2.5);
        h.record(0.5);
        h.record(5.0);
        h.record(100.0);
        crate::disable();
        let after = registry().snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counters["test.metrics.counter"], 3);
        assert_eq!(d.gauges["test.metrics.gauge"], 2.5);
        let hs = &d.histograms["test.metrics.hist"];
        assert_eq!(hs.buckets, vec![1, 1, 1]);
        assert_eq!(hs.count, 3);
        assert!((hs.sum - 105.5).abs() < 1e-12);
        assert!((hs.mean() - 105.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_store_bypasses_the_enable_gate() {
        // A private registry stays writable with global obs off — the
        // cluster experiment relies on this for deterministic snapshots.
        let private = Registry::default();
        let g = private.gauge("test.metrics.private");
        g.set(1.0); // gated: dropped unless obs happens to be enabled
        g.store(7.25);
        assert_eq!(g.get(), 7.25);
        assert_eq!(private.snapshot().gauges["test.metrics.private"], 7.25);
    }

    #[test]
    fn snapshot_json_export_is_deterministic_and_key_sorted() {
        // obs-diff baselines and results/*.json metric blocks must be
        // byte-stable across runs and thread schedules: same contents in any
        // insertion order -> identical bytes, keys sorted.
        let mut a = Snapshot::default();
        let mut b = Snapshot::default();
        for (k, v) in [("z.last", 1u64), ("a.first", 2), ("m.mid", 3)] {
            a.counters.insert(k.to_string(), v);
        }
        for (k, v) in [("m.mid", 3u64), ("a.first", 2), ("z.last", 1)] {
            b.counters.insert(k.to_string(), v);
        }
        a.gauges.insert("g.b".to_string(), 1.5);
        a.gauges.insert("g.a".to_string(), 2.5);
        b.gauges.insert("g.a".to_string(), 2.5);
        b.gauges.insert("g.b".to_string(), 1.5);
        let hist = HistogramSnapshot {
            bounds: vec![1.0],
            buckets: vec![1, 0],
            count: 1,
            sum: 0.5,
        };
        a.histograms.insert("h.two".to_string(), hist.clone());
        a.histograms.insert("h.one".to_string(), hist.clone());
        b.histograms.insert("h.one".to_string(), hist.clone());
        b.histograms.insert("h.two".to_string(), hist);

        let json = a.to_json_string();
        assert_eq!(json, b.to_json_string(), "insertion order must not leak");
        let pos = |needle: &str| {
            json.find(needle)
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        assert!(pos("a.first") < pos("m.mid"));
        assert!(pos("m.mid") < pos("z.last"));
        assert!(pos("g.a") < pos("g.b"));
        assert!(pos("h.one") < pos("h.two"));
    }

    #[test]
    fn sketches_register_record_and_diff() {
        let _g = test_lock();
        crate::enable();
        let s = registry().sketch("test.metrics.sketch");
        s.reset();
        let before = registry().snapshot();
        // Name-based recording creates nothing new (same handle) and
        // forwards like a histogram sample.
        registry().sketch_record("test.metrics.sketch", 100.0);
        registry().sketch_record("test.metrics.sketch", 200.0);
        crate::disable();
        let after = registry().snapshot();
        let d = after.diff(&before);
        let ds = &d.sketches["test.metrics.sketch"];
        assert_eq!(ds.count(), 2);
        assert!((ds.sum() - 300.0).abs() < 1e-9);
        assert!((ds.quantile(0.5) - 100.0).abs() <= 100.0 * 0.01 + 1e-9);
        let json = after.to_json_string();
        assert!(json.contains("\"sketches\":{\"test.metrics.sketch\":{\"alpha\":0.01"));
        assert!(json.contains("\"count\":2"));

        // Quantile estimates from a histogram snapshot saturate at the
        // bucket bounds.
        let h = HistogramSnapshot {
            bounds: vec![1.0, 10.0],
            buckets: vec![5, 4, 1],
            count: 10,
            sum: 20.0,
        };
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.9), 10.0);
        assert_eq!(h.quantile(1.0), 10.0, "overflow saturates at last bound");
        assert_eq!(
            HistogramSnapshot {
                bounds: vec![],
                buckets: vec![],
                count: 0,
                sum: 0.0
            }
            .quantile(0.5),
            0.0
        );
    }

    #[test]
    fn disabled_updates_are_dropped() {
        let _g = test_lock();
        crate::disable();
        let c = registry().counter("test.metrics.disabled");
        c.store(0);
        c.add(7);
        assert_eq!(c.get(), 0);
    }
}
