//! The profiling hook trait.
//!
//! The built-in tracer and registry are always the primary destination for
//! instrumentation; an installed [`ObsSink`] additionally receives a callback
//! for every completed span and every metric update, so a harness can stream
//! events elsewhere (stderr, a file, a test collector) without the hot paths
//! knowing. All callbacks fire only while [`crate::enabled`] — when
//! observability is off, instrumented code never reaches this module.

use std::sync::{Arc, Mutex, OnceLock};

use crate::span::Event;

/// Receiver for observability events. All methods have no-op defaults, so a
/// sink implements only what it cares about.
pub trait ObsSink: Send + Sync {
    /// A span completed (called at guard drop, before the event is buffered).
    fn on_span(&self, _event: &Event) {}
    /// A named counter was incremented through the registry's name-based API.
    fn on_counter(&self, _name: &str, _delta: u64) {}
    /// A named gauge was set through the registry's name-based API.
    fn on_gauge(&self, _name: &str, _value: f64) {}
    /// A named histogram recorded a sample through the name-based API.
    fn on_histogram(&self, _name: &str, _value: f64) {}
}

fn slot() -> &'static Mutex<Option<Arc<dyn ObsSink>>> {
    static SINK: OnceLock<Mutex<Option<Arc<dyn ObsSink>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Installs `sink`, replacing any previous one.
pub fn set_sink(sink: Arc<dyn ObsSink>) {
    *slot().lock().expect("sink slot") = Some(sink);
}

/// Removes the installed sink.
pub fn clear_sink() {
    *slot().lock().expect("sink slot") = None;
}

fn with_sink(f: impl FnOnce(&dyn ObsSink)) {
    let sink = slot().lock().expect("sink slot").clone();
    if let Some(sink) = sink {
        f(&*sink);
    }
}

pub(crate) fn forward_span(event: &Event) {
    with_sink(|s| s.on_span(event));
}

pub(crate) fn forward_counter(name: &str, delta: u64) {
    with_sink(|s| s.on_counter(name, delta));
}

pub(crate) fn forward_gauge(name: &str, value: f64) {
    with_sink(|s| s.on_gauge(name, value));
}

pub(crate) fn forward_histogram(name: &str, value: f64) {
    with_sink(|s| s.on_histogram(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingSink {
        spans: AtomicU64,
        counters: AtomicU64,
    }

    impl ObsSink for CountingSink {
        fn on_span(&self, _event: &Event) {
            self.spans.fetch_add(1, Ordering::Relaxed);
        }
        fn on_counter(&self, _name: &str, delta: u64) {
            self.counters.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[test]
    fn installed_sink_receives_spans_and_counters() {
        let _g = test_lock();
        crate::enable();
        let sink = Arc::new(CountingSink::default());
        set_sink(sink.clone());
        {
            let _s = crate::span("test-sink", "work");
        }
        crate::registry().counter_add("test.sink.counter", 5);
        clear_sink();
        crate::disable();
        assert_eq!(sink.spans.load(Ordering::Relaxed), 1);
        assert_eq!(sink.counters.load(Ordering::Relaxed), 5);
    }
}
