//! Bounded lock-free MPSC ring buffer for streaming observability events.
//!
//! The hot-path contract is strict: [`RingBuffer::try_push`] never blocks,
//! never allocates, and never spins unboundedly — when the ring is full the
//! event is *dropped* and counted in [`RingBuffer::dropped_events`], so a
//! slow (or absent) consumer can only cost visibility, never throughput.
//! Capacity is rounded up to a power of two so slot indexing is a mask.
//!
//! The implementation is the classic bounded queue with per-slot sequence
//! numbers (Vyukov): producers claim a slot by CAS on the tail, publish the
//! payload with a release store of the slot's sequence; the consumer reads
//! slots in head order, guarded by an acquire load of the same sequence.
//! Payloads ([`RingEvent`]) are fixed-size `Copy` values — span/metric names
//! are carried in an inline byte array ([`InlineStr`]), truncated rather
//! than spilled to the heap — which is what keeps the producer path
//! allocation-free.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Maximum bytes of a span/metric name carried through the ring. Longer
/// names are truncated at a char boundary — acceptable for telemetry, and
/// the price of a fixed-size, allocation-free slot.
pub const NAME_CAP: usize = 47;

/// A fixed-capacity inline string (`Copy`, no heap).
#[derive(Clone, Copy)]
pub struct InlineStr {
    len: u8,
    bytes: [u8; NAME_CAP],
}

impl InlineStr {
    /// Copies at most [`NAME_CAP`] bytes of `s`, backing off to the nearest
    /// char boundary so the result is always valid UTF-8.
    pub fn truncate_from(s: &str) -> InlineStr {
        let mut end = s.len().min(NAME_CAP);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; NAME_CAP];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        InlineStr {
            len: end as u8,
            bytes,
        }
    }

    /// The stored text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("built from &str prefixes")
    }
}

impl std::fmt::Debug for InlineStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl PartialEq for InlineStr {
    fn eq(&self, other: &InlineStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for InlineStr {}

/// One event carried through the ring: a completed span or a metric sample.
/// Fixed-size and `Copy` so producing never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RingEvent {
    /// A completed span (mirrors [`crate::Event`], names truncated).
    Span {
        /// Span category, truncated to the inline capacity.
        cat: InlineStr,
        /// Span name, truncated to the inline capacity.
        name: InlineStr,
        /// Start timestamp, nanoseconds since the tracer epoch.
        ts_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
        /// Stable thread id of the recording thread.
        tid: u32,
        /// Nesting depth at record time (0 = top-level).
        depth: u32,
    },
    /// A counter increment.
    Counter {
        /// Counter name, truncated to the inline capacity.
        name: InlineStr,
        /// Amount added to the counter.
        delta: u64,
    },
    /// A gauge update.
    Gauge {
        /// Gauge name, truncated to the inline capacity.
        name: InlineStr,
        /// New gauge value.
        value: f64,
    },
    /// A histogram sample.
    Histogram {
        /// Histogram name, truncated to the inline capacity.
        name: InlineStr,
        /// Sampled value.
        value: f64,
    },
}

impl RingEvent {
    /// Index of this event's category in per-category arrays (the order of
    /// [`DroppedCounts`]' fields: spans, counters, gauges, histograms).
    pub fn category_index(&self) -> usize {
        match self {
            RingEvent::Span { .. } => 0,
            RingEvent::Counter { .. } => 1,
            RingEvent::Gauge { .. } => 2,
            RingEvent::Histogram { .. } => 3,
        }
    }
}

/// Drop counts broken down by event category. A bare total hides *what* the
/// log is blind to — losing spans degrades flamegraphs, losing counter
/// increments silently skews replayed metrics — so the ring tracks both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DroppedCounts {
    /// Span events rejected while the ring was full.
    pub spans: u64,
    /// Counter increments rejected while the ring was full.
    pub counters: u64,
    /// Gauge updates rejected while the ring was full.
    pub gauges: u64,
    /// Histogram samples rejected while the ring was full.
    pub histograms: u64,
}

impl DroppedCounts {
    /// Sum over all categories (equals [`RingBuffer::dropped_events`]).
    pub fn total(&self) -> u64 {
        self.spans + self.counters + self.gauges + self.histograms
    }

    /// `"spans=a counters=b gauges=c histograms=d"`, for log lines.
    pub fn describe(&self) -> String {
        format!(
            "spans={} counters={} gauges={} histograms={}",
            self.spans, self.counters, self.gauges, self.histograms
        )
    }

    /// The count for category `index` (the [`RingEvent::category_index`]
    /// order: spans, counters, gauges, histograms).
    pub fn get(&self, index: usize) -> u64 {
        [self.spans, self.counters, self.gauges, self.histograms][index]
    }
}

/// The same four-category count quad, reused by the sampler for its
/// sampled/suppressed tallies (the category order is shared everywhere:
/// spans, counters, gauges, histograms).
pub type CategoryCounts = DroppedCounts;

/// Configuration for the producer-side [`Sampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Sustained events per second admitted per category (token refill
    /// rate). `0` disables the bucket: everything goes through the 1-in-N
    /// path.
    pub rate_per_sec: u64,
    /// Token bucket capacity per category: the burst the sampler passes at
    /// full fidelity before starving.
    pub burst: u64,
    /// Ceiling for the adaptive 1-in-N stride while starved (the stride
    /// doubles per admitted sample, so admission decays geometrically to
    /// one event in `max_stride`).
    pub max_stride: u64,
}

impl Default for SamplerConfig {
    /// 50k events/s per category with a 10k burst, decaying to 1-in-1024
    /// under sustained overload — sized so the binlog drain (and its disk)
    /// stays ahead of planner-service traffic rates.
    fn default() -> SamplerConfig {
        SamplerConfig {
            rate_per_sec: 50_000,
            burst: 10_000,
            max_stride: 1024,
        }
    }
}

struct SamplerCategory {
    /// Whole tokens available.
    tokens: AtomicU64,
    /// Timestamp of the last refill that was applied.
    last_refill_ns: AtomicU64,
    /// Current 1-in-N stride (>= 1; reset to 1 whenever a token is won).
    stride: AtomicU64,
    /// Events seen on the starved path (drives the 1-in-N cadence).
    seq: AtomicU64,
    /// Events admitted (token or stride).
    sampled: AtomicU64,
    /// Events suppressed.
    dropped: AtomicU64,
}

/// Producer-side token-bucket + adaptive 1-in-N sampler.
///
/// Sits in front of [`RingBuffer::try_push`] (see
/// [`crate::binlog::RingSink::with_sampler`]) so that under sustained
/// overload the event stream is *thinned at the source* instead of filling
/// the ring and dropping blind. Per event category (the
/// [`DroppedCounts`] order), each event is admitted if a token is
/// available (full fidelity up to `rate_per_sec`, bursts up to `burst`);
/// once the bucket is dry, one event in `stride` still passes — and the
/// stride doubles per admitted sample up to `max_stride`, so a firehose
/// decays geometrically instead of consuming the whole budget at the
/// window edge. Winning a token resets the stride.
///
/// The hot path is a handful of relaxed atomic ops and one bounded CAS
/// attempt for the refill — it never blocks, never allocates, and never
/// spins unboundedly (a lost CAS means another producer refilled for us).
/// Exact per-category [`Sampler::sampled_by_category`] /
/// [`Sampler::dropped_by_category`] tallies are carried into the binlog
/// footer so every reader can compute the exact undercount factor.
pub struct Sampler {
    config: SamplerConfig,
    categories: [SamplerCategory; 4],
    epoch: std::time::Instant,
}

impl Sampler {
    /// A sampler with full buckets (bursts pass immediately).
    pub fn new(config: SamplerConfig) -> Sampler {
        Sampler {
            config,
            categories: std::array::from_fn(|_| SamplerCategory {
                tokens: AtomicU64::new(config.burst),
                last_refill_ns: AtomicU64::new(0),
                stride: AtomicU64::new(1),
                seq: AtomicU64::new(0),
                sampled: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
            epoch: std::time::Instant::now(),
        }
    }

    /// The configured rates.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Admission decision for one event of category `index`
    /// ([`RingEvent::category_index`]) using the sampler's own clock.
    #[inline]
    pub fn admit_now(&self, index: usize) -> bool {
        self.admit(index, self.epoch.elapsed().as_nanos() as u64)
    }

    /// Admission decision at an explicit time (tests drive this directly;
    /// `now_ns` is nanoseconds on any monotonic axis).
    pub fn admit(&self, index: usize, now_ns: u64) -> bool {
        let cat = &self.categories[index];
        // Refill: one CAS attempt on the refill timestamp. Losing the race
        // means another producer just refilled — no retry needed, and
        // fractional tokens accumulate because the timestamp only advances
        // when at least one whole token is due.
        if self.config.rate_per_sec > 0 {
            let last = cat.last_refill_ns.load(Ordering::Relaxed);
            if now_ns > last {
                let due =
                    (now_ns - last) as u128 * self.config.rate_per_sec as u128 / 1_000_000_000u128;
                if due > 0
                    && cat
                        .last_refill_ns
                        .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    let burst = self.config.burst;
                    let _ = cat
                        .tokens
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                            Some(t.saturating_add(due as u64).min(burst))
                        });
                }
            }
        }
        // Fast path: spend a token (full fidelity) and relax the stride.
        if cat
            .tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| t.checked_sub(1))
            .is_ok()
        {
            cat.stride.store(1, Ordering::Relaxed);
            cat.sampled.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Starved: adaptive 1-in-N. Every admitted sample doubles the
        // stride (up to the cap) so sustained overload decays geometrically.
        let n = cat.seq.fetch_add(1, Ordering::Relaxed);
        let stride = cat.stride.load(Ordering::Relaxed).max(1);
        if n.is_multiple_of(stride) {
            let next = (stride * 2).min(self.config.max_stride.max(1));
            cat.stride.store(next, Ordering::Relaxed);
            cat.sampled.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            cat.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Events admitted by the sampler, per category (exact).
    pub fn sampled_by_category(&self) -> CategoryCounts {
        CategoryCounts {
            spans: self.categories[0].sampled.load(Ordering::Relaxed),
            counters: self.categories[1].sampled.load(Ordering::Relaxed),
            gauges: self.categories[2].sampled.load(Ordering::Relaxed),
            histograms: self.categories[3].sampled.load(Ordering::Relaxed),
        }
    }

    /// Events suppressed by the sampler, per category (exact).
    pub fn dropped_by_category(&self) -> CategoryCounts {
        CategoryCounts {
            spans: self.categories[0].dropped.load(Ordering::Relaxed),
            counters: self.categories[1].dropped.load(Ordering::Relaxed),
            gauges: self.categories[2].dropped.load(Ordering::Relaxed),
            histograms: self.categories[3].dropped.load(Ordering::Relaxed),
        }
    }
}

struct Slot {
    /// Vyukov sequence: `index` when free for the producer of turn `index`,
    /// `index + 1` once the payload is published, `index + capacity` after
    /// the consumer frees it for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<RingEvent>>,
}

/// The bounded lock-free MPSC ring (see module docs).
pub struct RingBuffer {
    mask: usize,
    slots: Box<[Slot]>,
    /// Consumer cursor.
    head: AtomicUsize,
    /// Producer cursor.
    tail: AtomicUsize,
    dropped: AtomicU64,
    /// Per-category drop counts, indexed by [`RingEvent::category_index`].
    dropped_by: [AtomicU64; 4],
}

// SAFETY: slots are only written by the producer that claimed them via the
// tail CAS and only read by the consumer after the release-published
// sequence, so the UnsafeCell contents are never accessed concurrently.
// RingEvent is Copy + Send.
unsafe impl Send for RingBuffer {}
unsafe impl Sync for RingBuffer {}

impl RingBuffer {
    /// Creates a ring with at least `capacity` slots (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> RingBuffer {
        let capacity = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot]> = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingBuffer {
            mask: capacity - 1,
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            dropped_by: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events rejected because the ring was full. Exact: every failed push
    /// adds one.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drops broken down by event category. Each category is exact; the
    /// sum equals [`RingBuffer::dropped_events`].
    pub fn dropped_by_category(&self) -> DroppedCounts {
        DroppedCounts {
            spans: self.dropped_by[0].load(Ordering::Relaxed),
            counters: self.dropped_by[1].load(Ordering::Relaxed),
            gauges: self.dropped_by[2].load(Ordering::Relaxed),
            histograms: self.dropped_by[3].load(Ordering::Relaxed),
        }
    }

    /// Approximate number of queued events (exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// `true` when no events are queued (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue `event`. Returns `false` (and counts a drop) when
    /// the ring is full. Never blocks and never allocates; the only retry is
    /// the CAS race against other producers, which is bounded by the number
    /// of concurrently pushing threads.
    pub fn try_push(&self, event: RingEvent) -> bool {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - tail as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive claim
                        // over the slot until the release store below.
                        unsafe { (*slot.value.get()).write(event) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(seen) => tail = seen,
                }
            } else if dif < 0 {
                // The consumer has not freed this slot: the ring is full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped_by[event.category_index()].fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed this slot; advance to the tail it
                // published past.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest event, or `None` when the ring is empty. Written
    /// as a CAS loop so a misbehaving second consumer corrupts nothing, but
    /// the intended topology is single-consumer (the drain thread).
    pub fn try_pop(&self) -> Option<RingEvent> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (head.wrapping_add(1)) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the producer published this slot (seq ==
                        // head + 1) and the CAS gave us exclusive claim.
                        let event = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(head.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(event);
                    }
                    Err(seen) => head = seen,
                }
            } else if dif < 0 {
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn counter(name: &str, delta: u64) -> RingEvent {
        RingEvent::Counter {
            name: InlineStr::truncate_from(name),
            delta,
        }
    }

    #[test]
    fn inline_str_truncates_at_char_boundary() {
        let s = InlineStr::truncate_from("short");
        assert_eq!(s.as_str(), "short");
        // 46 ASCII bytes then a 2-byte char straddling the 47-byte cap: the
        // whole char must be dropped.
        let long = format!("{}é tail", "x".repeat(46));
        let t = InlineStr::truncate_from(&long);
        assert_eq!(t.as_str(), "x".repeat(46));
        assert!(t.as_str().len() <= NAME_CAP);
    }

    #[test]
    fn push_pop_preserves_fifo_order() {
        let ring = RingBuffer::with_capacity(8);
        for i in 0..5 {
            assert!(ring.try_push(counter("c", i)));
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.try_pop(), Some(counter("c", i)));
        }
        assert_eq!(ring.try_pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(RingBuffer::with_capacity(5).capacity(), 8);
        assert_eq!(RingBuffer::with_capacity(8).capacity(), 8);
        assert_eq!(RingBuffer::with_capacity(0).capacity(), 2);
    }

    #[test]
    fn overfill_drops_exactly_and_never_blocks() {
        let ring = RingBuffer::with_capacity(8);
        let total = 100u64;
        let mut accepted = 0u64;
        for i in 0..total {
            if ring.try_push(counter("c", i)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 8, "ring accepts exactly its capacity");
        assert_eq!(ring.dropped_events(), total - 8, "every reject is counted");
        // The survivors are the oldest `capacity` events, in order.
        for i in 0..8 {
            assert_eq!(ring.try_pop(), Some(counter("c", i)));
        }
        // Space freed: pushes succeed again.
        assert!(ring.try_push(counter("c", 999)));
    }

    #[test]
    fn drops_are_counted_per_category() {
        let ring = RingBuffer::with_capacity(2);
        assert!(ring.try_push(counter("c", 0)));
        assert!(ring.try_push(counter("c", 1)));
        // Full: one rejection per category, plus a second counter reject.
        let name = InlineStr::truncate_from("x");
        assert!(!ring.try_push(RingEvent::Span {
            cat: name,
            name,
            ts_ns: 0,
            dur_ns: 1,
            tid: 0,
            depth: 0,
        }));
        assert!(!ring.try_push(counter("c", 2)));
        assert!(!ring.try_push(counter("c", 3)));
        assert!(!ring.try_push(RingEvent::Gauge { name, value: 1.0 }));
        assert!(!ring.try_push(RingEvent::Histogram { name, value: 2.0 }));
        let by = ring.dropped_by_category();
        assert_eq!(
            (by.spans, by.counters, by.gauges, by.histograms),
            (1, 2, 1, 1)
        );
        assert_eq!(by.total(), ring.dropped_events());
        assert_eq!(by.describe(), "spans=1 counters=2 gauges=1 histograms=1");
    }

    #[test]
    fn sampler_passes_bursts_then_thins_adaptively() {
        let sampler = Sampler::new(SamplerConfig {
            rate_per_sec: 1000,
            burst: 4,
            max_stride: 8,
        });
        // t=0: the initial burst passes at full fidelity.
        for _ in 0..4 {
            assert!(sampler.admit(0, 0));
        }
        // Starved: the 1-in-N path admits geometrically fewer events.
        let admitted: Vec<bool> = (0..15).map(|_| sampler.admit(0, 0)).collect();
        // The stride doubles per admitted sample (1,2,4,8 capped), and the
        // shared seq counter stays power-of-two aligned: admits land at
        // seq 0, 2, 4, 8, then every 8th.
        let expect: Vec<bool> = (0..15).map(|n| [0, 2, 4, 8].contains(&n)).collect();
        assert_eq!(admitted, expect);
        let sampled = sampler.sampled_by_category();
        let dropped = sampler.dropped_by_category();
        assert_eq!(sampled.spans, 8, "4 tokens + 4 strided");
        assert_eq!(dropped.spans, 11);
        assert_eq!(
            sampled.counters + dropped.counters,
            0,
            "categories isolated"
        );
        // One second later the bucket refills (capped at burst) and the
        // stride relaxes back to full fidelity.
        let sec = 1_000_000_000;
        assert!(sampler.admit(0, sec));
        for _ in 0..3 {
            assert!(sampler.admit(0, sec));
        }
        assert_eq!(sampler.sampled_by_category().spans, 12);
    }

    #[test]
    fn sampler_with_zero_rate_is_pure_one_in_n() {
        let sampler = Sampler::new(SamplerConfig {
            rate_per_sec: 0,
            burst: 0,
            max_stride: 4,
        });
        let admitted = (0..20).filter(|_| sampler.admit(3, 0)).count() as u64;
        let s = sampler.sampled_by_category();
        let d = sampler.dropped_by_category();
        assert_eq!(s.histograms, admitted);
        assert_eq!(s.histograms + d.histograms, 20, "every event is accounted");
        assert!(admitted < 20 && admitted > 0);
    }

    #[test]
    fn sampler_overfill_at_8_threads_never_blocks_and_accounts_exactly() {
        use std::sync::Arc;
        // A tiny budget guarantees sustained starvation: 8 threads hammer
        // the same category far past the bucket. The assertions prove the
        // contract: every admit() returns (the test would hang otherwise),
        // and sampled + dropped equals the attempt count exactly.
        let sampler = Arc::new(Sampler::new(SamplerConfig {
            rate_per_sec: 1000,
            burst: 16,
            max_stride: 64,
        }));
        let threads = 8u64;
        let per_thread = 50_000u64;
        let admitted: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let sampler = Arc::clone(&sampler);
                    scope.spawn(move || {
                        let mut ok = 0u64;
                        for _ in 0..per_thread {
                            if sampler.admit_now(1) {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("producer"))
                .sum()
        });
        let s = sampler.sampled_by_category();
        let d = sampler.dropped_by_category();
        assert_eq!(s.counters, admitted);
        assert_eq!(
            s.counters + d.counters,
            threads * per_thread,
            "exact accounting under contention"
        );
        assert!(
            d.counters > 0,
            "the overfill must actually starve the bucket"
        );
        assert_eq!(s.spans + d.spans, 0, "other categories untouched");
    }

    #[test]
    fn concurrent_producers_account_for_every_event() {
        let ring = Arc::new(RingBuffer::with_capacity(64));
        let producers = 4;
        let per_thread = 10_000u64;
        let popped = std::thread::scope(|scope| {
            for t in 0..producers {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Never blocks: either lands or counts as dropped.
                        ring.try_push(counter("mt", t * per_thread + i));
                    }
                });
            }
            let ring = Arc::clone(&ring);
            scope
                .spawn(move || {
                    let mut popped = 0u64;
                    let mut idle = 0;
                    while idle < 1000 {
                        match ring.try_pop() {
                            Some(_) => {
                                popped += 1;
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    popped
                })
                .join()
                .expect("consumer thread")
        });
        let total = producers * per_thread;
        assert_eq!(
            popped + ring.dropped_events() + ring.len() as u64,
            total,
            "every push is either consumed, still queued, or counted dropped"
        );
    }
}
