//! Windowed time-series engine: "p50/p99/qps over the last N seconds".
//!
//! A [`WindowedSeries`] keeps, per configured window (default 1s/10s/60s —
//! [`default_windows`]), a ring of slot-aligned [`QuantileSketch`]es. A
//! sample recorded at time `t` lands in the slot covering `t` in every
//! window's ring; a query at time `now` merges the slots still inside
//! `(now − window, now]` — merge is exact (see [`crate::sketch`]), so the
//! windowed percentiles are as good as the sketch's `α` bound. Stale slots
//! are recycled lazily on the next write that lands on them, so there is no
//! background roller thread and no timer: the engine is driven entirely by
//! record/query calls, which is what makes it deterministic under test.
//!
//! Time is explicit: the core API takes `t_ns` (nanoseconds on any
//! monotonic axis — tests pass synthetic clocks, production code uses
//! [`now_ns`], nanoseconds since the process-wide epoch). A cumulative
//! sketch sits beside the rings so "since process start" stays available
//! after every window has rolled.
//!
//! [`TimeSeriesRegistry`] (via [`timeseries()`]) is the process-global map
//! of named series, and renders the whole set as a deterministic
//! Prometheus-style text exposition: series sorted by name, windows in
//! configuration order, quantiles ascending — byte-stable names and label
//! sets for a given registry state.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::sketch::{QuantileSketch, SketchConfig};

/// One rolling window: `slots` ring slots of `slot_ns` each, so the window
/// spans `slots · slot_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Label used in queries and the exposition (e.g. `"10s"`).
    pub name: &'static str,
    /// Width of one ring slot in nanoseconds.
    pub slot_ns: u64,
    /// Number of slots in the ring.
    pub slots: usize,
}

impl WindowSpec {
    /// Total window span in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.slot_ns * self.slots as u64
    }
}

/// The standard window set: 1s (10×100ms), 10s (10×1s), 60s (12×5s).
pub fn default_windows() -> Vec<WindowSpec> {
    vec![
        WindowSpec {
            name: "1s",
            slot_ns: 100_000_000,
            slots: 10,
        },
        WindowSpec {
            name: "10s",
            slot_ns: 1_000_000_000,
            slots: 10,
        },
        WindowSpec {
            name: "60s",
            slot_ns: 5_000_000_000,
            slots: 12,
        },
    ]
}

/// Aggregates answered for one window (or the cumulative series).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window label (`"total"` for the cumulative series).
    pub window: String,
    /// Samples inside the window.
    pub count: u64,
    /// Samples per second: `count / window span`. For `"total"`, count over
    /// elapsed time since the first recorded sample.
    pub rate_per_sec: f64,
    /// Exact mean of the windowed samples.
    pub mean: f64,
    /// Sketch p50 (α-bounded relative error).
    pub p50: f64,
    /// Sketch p90.
    pub p90: f64,
    /// Sketch p99.
    pub p99: f64,
    /// Exact largest sample in the window.
    pub max: f64,
}

impl WindowStats {
    fn from_sketch(window: &str, sketch: &QuantileSketch, span_secs: f64) -> WindowStats {
        WindowStats {
            window: window.to_string(),
            count: sketch.count(),
            rate_per_sec: if span_secs > 0.0 {
                sketch.count() as f64 / span_secs
            } else {
                0.0
            },
            mean: sketch.mean(),
            p50: sketch.quantile(0.50),
            p90: sketch.quantile(0.90),
            p99: sketch.quantile(0.99),
            max: sketch.max(),
        }
    }
}

#[derive(Debug, Clone)]
struct Ring {
    spec: WindowSpec,
    /// `slots[i]` holds samples for the aligned slot starting at `starts[i]`;
    /// a slot is live iff `starts[i]` is within the window at query time.
    starts: Vec<u64>,
    slots: Vec<QuantileSketch>,
}

impl Ring {
    fn new(spec: WindowSpec, config: SketchConfig) -> Ring {
        Ring {
            spec,
            starts: vec![u64::MAX; spec.slots],
            slots: (0..spec.slots)
                .map(|_| QuantileSketch::new(config))
                .collect(),
        }
    }

    fn record_at(&mut self, t_ns: u64, value: f64) {
        let aligned = t_ns - t_ns % self.spec.slot_ns;
        let idx = (t_ns / self.spec.slot_ns) as usize % self.spec.slots;
        if self.starts[idx] != aligned {
            // Lazy recycle: this slot last held an older (or future, if the
            // clock was synthetic and moved backwards) slot's samples.
            self.slots[idx].reset();
            self.starts[idx] = aligned;
        }
        self.slots[idx].record(value);
    }

    /// Merge of every slot still inside `(now − span, now]`.
    fn merged_at(&self, now_ns: u64, config: SketchConfig) -> QuantileSketch {
        let mut out = QuantileSketch::new(config);
        let oldest = now_ns.saturating_sub(self.spec.span_ns());
        for (i, slot) in self.slots.iter().enumerate() {
            let start = self.starts[i];
            if start != u64::MAX && start >= oldest && start <= now_ns {
                out.merge(slot);
            }
        }
        out
    }
}

/// A named series of rolling windows plus a cumulative sketch.
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    config: SketchConfig,
    rings: Vec<Ring>,
    total: QuantileSketch,
    first_t_ns: Option<u64>,
    last_t_ns: u64,
}

impl WindowedSeries {
    /// A series over `windows` with `config`'s sketch scheme.
    pub fn new(config: SketchConfig, windows: &[WindowSpec]) -> WindowedSeries {
        WindowedSeries {
            config,
            rings: windows.iter().map(|&w| Ring::new(w, config)).collect(),
            total: QuantileSketch::new(config),
            first_t_ns: None,
            last_t_ns: 0,
        }
    }

    /// A series over [`default_windows`] with the default sketch config.
    pub fn with_defaults() -> WindowedSeries {
        WindowedSeries::new(SketchConfig::default(), &default_windows())
    }

    /// Records `value` at explicit time `t_ns`.
    pub fn record_at(&mut self, t_ns: u64, value: f64) {
        for ring in &mut self.rings {
            ring.record_at(t_ns, value);
        }
        self.total.record(value);
        if self.first_t_ns.is_none() {
            self.first_t_ns = Some(t_ns);
        }
        self.last_t_ns = self.last_t_ns.max(t_ns);
    }

    /// The configured window labels, in configuration order.
    pub fn window_names(&self) -> Vec<&'static str> {
        self.rings.iter().map(|r| r.spec.name).collect()
    }

    /// Merged sketch for the window named `window` as of `now_ns`, or `None`
    /// for an unknown label.
    pub fn window_sketch_at(&self, window: &str, now_ns: u64) -> Option<QuantileSketch> {
        self.rings
            .iter()
            .find(|r| r.spec.name == window)
            .map(|r| r.merged_at(now_ns, self.config))
    }

    /// Stats for the window named `window` as of `now_ns`.
    pub fn stats_at(&self, window: &str, now_ns: u64) -> Option<WindowStats> {
        let ring = self.rings.iter().find(|r| r.spec.name == window)?;
        let sketch = ring.merged_at(now_ns, self.config);
        let span_secs = ring.spec.span_ns() as f64 / 1e9;
        Some(WindowStats::from_sketch(window, &sketch, span_secs))
    }

    /// Cumulative stats since the first recorded sample (rate over the
    /// observed `[first, max(now, last)]` span).
    pub fn total_stats_at(&self, now_ns: u64) -> WindowStats {
        let span_secs = match self.first_t_ns {
            Some(first) => (now_ns.max(self.last_t_ns).saturating_sub(first)) as f64 / 1e9,
            None => 0.0,
        };
        WindowStats::from_sketch("total", &self.total, span_secs)
    }

    /// The cumulative sketch (exact merge of everything ever recorded).
    pub fn total_sketch(&self) -> &QuantileSketch {
        &self.total
    }

    /// Clears all windows and the cumulative sketch.
    pub fn reset(&mut self) {
        for ring in &mut self.rings {
            for slot in &mut ring.slots {
                slot.reset();
            }
            ring.starts.iter_mut().for_each(|s| *s = u64::MAX);
        }
        self.total.reset();
        self.first_t_ns = None;
        self.last_t_ns = 0;
    }
}

/// Shared handle to a registered [`WindowedSeries`].
#[derive(Clone)]
pub struct SeriesHandle(Arc<Mutex<WindowedSeries>>);

impl SeriesHandle {
    /// Records `value` now (process-epoch clock). Gated on
    /// [`crate::enabled`].
    #[inline]
    pub fn record(&self, value: f64) {
        if crate::enabled() {
            self.record_at(now_ns(), value);
        }
    }

    /// Records `value` at explicit `t_ns` (tests; not gated).
    pub fn record_at(&self, t_ns: u64, value: f64) {
        self.0.lock().expect("series").record_at(t_ns, value);
    }

    /// Runs `f` with the underlying series.
    pub fn with<R>(&self, f: impl FnOnce(&WindowedSeries) -> R) -> R {
        f(&self.0.lock().expect("series"))
    }

    /// Stats for `window` as of the process-epoch clock.
    pub fn stats(&self, window: &str) -> Option<WindowStats> {
        self.with(|s| s.stats_at(window, now_ns()))
    }
}

/// Nanoseconds since the process-wide monotonic epoch (first use).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Process-global registry of named windowed series.
#[derive(Default)]
pub struct TimeSeriesRegistry {
    series: Mutex<BTreeMap<String, SeriesHandle>>,
}

/// The process-global time-series registry.
pub fn timeseries() -> &'static TimeSeriesRegistry {
    static REGISTRY: OnceLock<TimeSeriesRegistry> = OnceLock::new();
    REGISTRY.get_or_init(TimeSeriesRegistry::default)
}

impl TimeSeriesRegistry {
    /// Returns (creating with defaults if needed) the series named `name`.
    pub fn series(&self, name: &str) -> SeriesHandle {
        let mut map = self.series.lock().expect("series map");
        match map.get(name) {
            Some(s) => s.clone(),
            None => {
                let s = SeriesHandle(Arc::new(Mutex::new(WindowedSeries::with_defaults())));
                map.insert(name.to_string(), s.clone());
                s
            }
        }
    }

    /// Looks a series up without creating it.
    pub fn get(&self, name: &str) -> Option<SeriesHandle> {
        self.series.lock().expect("series map").get(name).cloned()
    }

    /// Clears every registered series (handles stay valid).
    pub fn reset(&self) {
        for s in self.series.lock().expect("series map").values() {
            s.0.lock().expect("series").reset();
        }
    }

    /// Renders every series as Prometheus-style text as of `now_ns`.
    ///
    /// Layout (byte-stable for a fixed registry state): series sorted by
    /// name, one `# TYPE <name> summary` header each, then per window (in
    /// configuration order, `total` last) quantile samples ascending plus
    /// `_count` and `_rate` lines. Metric names are the series names with
    /// `.` and `-` mapped to `_` — the label sets and line order never
    /// depend on thread schedules or map iteration quirks.
    pub fn render_into(&self, out: &mut String, now_ns: u64) {
        let map = self.series.lock().expect("series map");
        for (name, handle) in map.iter() {
            let metric = prometheus_name(name);
            out.push_str("# TYPE ");
            out.push_str(&metric);
            out.push_str(" summary\n");
            let series = handle.0.lock().expect("series");
            let mut stats: Vec<WindowStats> = series
                .window_names()
                .iter()
                .filter_map(|w| series.stats_at(w, now_ns))
                .collect();
            stats.push(series.total_stats_at(now_ns));
            for s in &stats {
                for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                    out.push_str(&metric);
                    out.push_str("{window=\"");
                    out.push_str(&s.window);
                    out.push_str("\",quantile=\"");
                    out.push_str(q);
                    out.push_str("\"} ");
                    out.push_str(&crate::chrome::format_json_f64(v));
                    out.push('\n');
                }
                out.push_str(&metric);
                out.push_str("_count{window=\"");
                out.push_str(&s.window);
                out.push_str("\"} ");
                out.push_str(&s.count.to_string());
                out.push('\n');
                out.push_str(&metric);
                out.push_str("_rate{window=\"");
                out.push_str(&s.window);
                out.push_str("\"} ");
                out.push_str(&crate::chrome::format_json_f64(s.rate_per_sec));
                out.push('\n');
            }
        }
    }
}

/// Maps a series name to a Prometheus-safe metric name (`.`/`-` → `_`).
pub fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn windows_roll_and_cumulative_persists() {
        let mut s = WindowedSeries::with_defaults();
        // 5 samples in second 0, 3 in second 30.
        for i in 0..5 {
            s.record_at(i * 100_000_000, 10.0);
        }
        for i in 0..3 {
            s.record_at(30 * SEC + i * 1000, 500.0);
        }
        // At t=30.5s: the 1s and 10s windows only see the late burst.
        let t = 30 * SEC + SEC / 2;
        assert_eq!(s.stats_at("1s", t).unwrap().count, 3);
        assert_eq!(s.stats_at("10s", t).unwrap().count, 3);
        // The 60s window still sees everything.
        assert_eq!(s.stats_at("60s", t).unwrap().count, 8);
        // At t=120s every window is empty but the total remains.
        let late = 120 * SEC;
        assert_eq!(s.stats_at("60s", late).unwrap().count, 0);
        let total = s.total_stats_at(late);
        assert_eq!(total.count, 8);
        assert!(total.rate_per_sec > 0.0);
        assert_eq!(total.window, "total");
        assert!(s.stats_at("nope", t).is_none());
    }

    #[test]
    fn windowed_percentiles_match_a_direct_sketch() {
        let mut s = WindowedSeries::with_defaults();
        let mut direct = QuantileSketch::new(SketchConfig::default());
        // Spread across slots of the 10s window, all inside it.
        for i in 0..100u64 {
            let v = 1.0 + i as f64;
            s.record_at(50 * SEC + i * 90_000_000, v);
            direct.record(v);
        }
        let now = 59 * SEC;
        let merged = s.window_sketch_at("10s", now).unwrap();
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.quantile(0.5), direct.quantile(0.5));
        assert_eq!(merged.quantile(0.99), direct.quantile(0.99));
        let stats = s.stats_at("10s", now).unwrap();
        assert_eq!(stats.rate_per_sec, 10.0, "100 samples / 10s window");
    }

    #[test]
    fn slot_reuse_recycles_stale_samples() {
        let mut s = WindowedSeries::new(
            SketchConfig::default(),
            &[WindowSpec {
                name: "1s",
                slot_ns: 100_000_000,
                slots: 10,
            }],
        );
        s.record_at(0, 1.0);
        // Exactly one lap later the same slot index is reused: the old
        // sample must not leak into the new window.
        s.record_at(SEC, 2.0);
        let stats = s.stats_at("1s", SEC).unwrap();
        assert_eq!(stats.count, 1);
        assert_eq!(stats.max, 2.0);
        assert_eq!(s.total_sketch().count(), 2);
    }

    #[test]
    fn registry_exposition_is_deterministic_and_sorted() {
        let reg = TimeSeriesRegistry::default();
        reg.series("zed.series").record_at(0, 5.0);
        reg.series("alpha-series").record_at(0, 1.0);
        let mut a = String::new();
        reg.render_into(&mut a, SEC);
        let mut b = String::new();
        reg.render_into(&mut b, SEC);
        assert_eq!(a, b, "same state renders to identical bytes");
        let alpha = a.find("# TYPE alpha_series summary").expect("alpha header");
        let zed = a.find("# TYPE zed_series summary").expect("zed header");
        assert!(alpha < zed, "series sorted by name");
        assert!(a.contains("alpha_series{window=\"1s\",quantile=\"0.5\"} "));
        assert!(a.contains("alpha_series_count{window=\"total\"} 1\n"));
        assert!(a.contains("zed_series_rate{window=\"60s\"} "));
        reg.reset();
        let mut c = String::new();
        reg.render_into(&mut c, SEC);
        assert!(c.contains("zed_series_count{window=\"total\"} 0\n"));
    }

    #[test]
    fn handle_record_respects_enable_gate() {
        let _g = crate::test_lock();
        let reg = TimeSeriesRegistry::default();
        let h = reg.series("gate.test");
        crate::disable();
        h.record(1.0);
        assert_eq!(h.with(|s| s.total_sketch().count()), 0);
        crate::enable();
        h.record(1.0);
        crate::disable();
        assert_eq!(h.with(|s| s.total_sketch().count()), 1);
        assert!(h.stats("1s").is_some());
        assert!(reg.get("gate.test").is_some());
        assert!(reg.get("missing").is_none());
    }
}
