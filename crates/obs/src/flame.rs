//! Collapsed-stack flamegraph export over a replayed event log.
//!
//! [`collapse`] reconstructs each thread's span stack from the flat,
//! start-ordered span records in a binary event log ([`crate::binlog`]) and
//! accumulates *self time* (inclusive duration minus direct children) per
//! stack path. [`FlameGraph::to_collapsed`] renders the result in the
//! `flamegraph.pl` / inferno collapsed format — one `a;b;c <count>` line per
//! stack, counts in nanoseconds — so `results/profile_flame.txt` feeds
//! straight into either tool.
//!
//! Stacks are rooted by provenance: spans in the `sim.gpu` category (the
//! profiler's *simulated* device timeline) collapse under a `gpu` root
//! frame, everything else (wall-clock harness spans) under `ftsim`. That
//! keeps modeled GPU nanoseconds and real host nanoseconds from summing
//! into one meaningless flame.
//!
//! # Honesty under sampling
//!
//! When the event log was thinned — ring overflow drops or the
//! producer-side sampler ([`crate::ring::Sampler`]) — the flame is built
//! from a *subset* of the real spans. [`collapse_annotated`] reads the
//! footer's exact per-category loss counts and suffixes every stack with
//! `_(~Nx_undercounted)` (the span category's
//! [`Footer::undercount_factor`]), so a thinned flamegraph can never be
//! mistaken for a complete one. The suffix is underscore-joined to stay
//! `flamegraph.pl`-compatible.

use std::collections::BTreeMap;

use crate::binlog::{Footer, LogRecord};

/// Root frame for the profiler's simulated device timeline.
pub const GPU_ROOT: &str = "gpu";
/// Root frame for wall-clock (host) spans.
pub const HOST_ROOT: &str = "ftsim";

/// Category carrying simulated (modeled-latency) spans.
pub const SIM_GPU_CAT: &str = "sim.gpu";

/// Aggregated self-time per stack path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlameGraph {
    /// `root;frame;frame` → self nanoseconds. Sorted, so output is stable.
    stacks: BTreeMap<String, u64>,
}

impl FlameGraph {
    /// The accumulated stacks (path → self nanoseconds).
    pub fn stacks(&self) -> &BTreeMap<String, u64> {
        &self.stacks
    }

    /// Total self-time under stacks whose path starts with `prefix` — e.g.
    /// `"gpu;attention"` for one simulated stage's inclusive total.
    pub fn total_under(&self, prefix: &str) -> u64 {
        self.stacks
            .iter()
            .filter(|(path, _)| {
                path.as_str() == prefix
                    || path.starts_with(prefix) && path.as_bytes().get(prefix.len()) == Some(&b';')
            })
            .map(|(_, ns)| ns)
            .sum()
    }

    /// Renders `flamegraph.pl`-compatible collapsed lines.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (path, ns) in &self.stacks {
            out.push_str(path);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
        out
    }
}

/// Collapsed-format frame names must not contain the `;` separator, and the
/// final space-separated field is the count.
fn frame(name: &str) -> String {
    name.replace(';', ":").replace(' ', "_")
}

struct Open {
    path: String,
    depth: u32,
    dur_ns: u64,
    child_ns: u64,
}

/// `(cat, name, ts_ns, dur_ns, depth)` of one replayed span.
type SpanTuple<'a> = (&'a str, &'a str, u64, u64, u32);

/// Builds a [`FlameGraph`] from replayed records and the log's footer,
/// annotating for losses: when the footer says span events were dropped
/// (ring overflow) or suppressed (sampler), every stack path gains a
/// `_(~Nx_undercounted)` suffix with `N` the span undercount factor — the
/// flame's proportions are still meaningful (sampling is category-uniform)
/// but its absolute nanoseconds undercount reality by that factor.
pub fn collapse_annotated(records: &[LogRecord], footer: Option<&Footer>) -> FlameGraph {
    let graph = collapse(records);
    let Some(footer) = footer else {
        return graph;
    };
    let span_records = records
        .iter()
        .filter(|r| matches!(r, LogRecord::Span { .. }))
        .count() as u64;
    let factor = footer.undercount_factor(0, span_records);
    if factor <= 1.0 {
        return graph;
    }
    let suffix = format!("_(~{:.1}x_undercounted)", factor);
    FlameGraph {
        stacks: graph
            .stacks
            .into_iter()
            .map(|(path, ns)| (format!("{path}{suffix}"), ns))
            .collect(),
    }
}

/// Builds a [`FlameGraph`] from replayed records (non-span records are
/// ignored).
pub fn collapse(records: &[LogRecord]) -> FlameGraph {
    // Regroup the flat record stream per thread, preserving start order
    // within each thread (parents precede children at equal timestamps
    // because the writer serializes them depth-first per thread, and the
    // profiler's synthetic timeline is emitted parent-first).
    let mut per_tid: BTreeMap<u32, Vec<SpanTuple<'_>>> = BTreeMap::new();
    for record in records {
        if let LogRecord::Span {
            cat,
            name,
            ts_ns,
            dur_ns,
            tid,
            depth,
        } = record
        {
            per_tid
                .entry(*tid)
                .or_default()
                .push((cat, name, *ts_ns, *dur_ns, *depth));
        }
    }

    let mut graph = FlameGraph::default();
    for spans in per_tid.values_mut() {
        spans.sort_by_key(|&(_, _, ts_ns, _, depth)| (ts_ns, depth));
        let mut stack: Vec<Open> = Vec::new();
        for &(cat, name, _ts_ns, dur_ns, depth) in spans.iter() {
            while stack.last().is_some_and(|top| top.depth >= depth) {
                close(&mut graph, stack.pop().expect("non-empty"));
            }
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            let path = match stack.last() {
                Some(parent) => format!("{};{}", parent.path, frame(name)),
                None => {
                    let root = if cat == SIM_GPU_CAT {
                        GPU_ROOT
                    } else {
                        HOST_ROOT
                    };
                    format!("{root};{}", frame(name))
                }
            };
            stack.push(Open {
                path,
                depth,
                dur_ns,
                child_ns: 0,
            });
        }
        while let Some(open) = stack.pop() {
            close(&mut graph, open);
        }
    }
    graph
}

fn close(graph: &mut FlameGraph, open: Open) {
    let self_ns = open.dur_ns.saturating_sub(open.child_ns);
    if self_ns > 0 {
        *graph.stacks.entry(open.path).or_insert(0) += self_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: &str, name: &str, ts_ns: u64, dur_ns: u64, tid: u32, depth: u32) -> LogRecord {
        LogRecord::Span {
            cat: cat.to_string(),
            name: name.to_string(),
            ts_ns,
            dur_ns,
            tid,
            depth,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        // step(0..100) > attention(0..40) > qkv(0..30); moe(40..100).
        let records = vec![
            span(SIM_GPU_CAT, "step", 0, 100, 0, 0),
            span(SIM_GPU_CAT, "attention", 0, 40, 0, 1),
            span(SIM_GPU_CAT, "qkv", 0, 30, 0, 2),
            span(SIM_GPU_CAT, "moe", 40, 60, 0, 1),
        ];
        let g = collapse(&records);
        assert_eq!(g.stacks()["gpu;step;attention;qkv"], 30);
        assert_eq!(g.stacks()["gpu;step;attention"], 10);
        assert_eq!(g.stacks()["gpu;step;moe"], 60);
        assert!(!g.stacks().contains_key("gpu;step"), "fully covered parent");
        // Inclusive totals survive the self-time decomposition.
        assert_eq!(g.total_under("gpu;step"), 100);
        assert_eq!(g.total_under("gpu;step;attention"), 40);
        assert_eq!(g.total_under("gpu"), 100);
    }

    #[test]
    fn threads_and_roots_stay_separate() {
        let records = vec![
            span(SIM_GPU_CAT, "kernel", 0, 50, 0, 0),
            span("ftsim.host", "pricing", 0, 70, 1, 0),
        ];
        let g = collapse(&records);
        assert_eq!(g.stacks()["gpu;kernel"], 50);
        assert_eq!(g.stacks()["ftsim;pricing"], 70);
        assert_eq!(g.total_under("gpu"), 50);
        assert_eq!(g.total_under("ftsim"), 70);
    }

    #[test]
    fn collapsed_output_is_parseable_and_sanitized() {
        let records = vec![span("c", "odd;name with space", 0, 5, 0, 0)];
        let out = collapse(&records).to_collapsed();
        assert_eq!(out, "ftsim;odd:name_with_space 5\n");
        // flamegraph.pl contract: last space-separated field is the count,
        // frames are ;-separated.
        let (stack, count) = out.trim_end().rsplit_once(' ').unwrap();
        assert_eq!(count.parse::<u64>().unwrap(), 5);
        assert_eq!(stack.split(';').count(), 2);
    }

    #[test]
    fn repeated_stacks_accumulate() {
        let records = vec![
            span("c", "work", 0, 5, 0, 0),
            span("c", "work", 10, 7, 0, 0),
        ];
        let g = collapse(&records);
        assert_eq!(g.stacks()["ftsim;work"], 12);
    }

    #[test]
    fn annotation_marks_undercounted_flames_and_leaves_clean_ones() {
        use crate::ring::DroppedCounts;
        let records = vec![span(SIM_GPU_CAT, "kernel", 0, 50, 0, 0)];
        // Clean footer (or none): paths unchanged.
        let clean = Footer {
            events_written: 1,
            ..Footer::default()
        };
        let g = collapse_annotated(&records, Some(&clean));
        assert!(g.stacks().contains_key("gpu;kernel"));
        assert_eq!(g, collapse_annotated(&records, None));

        // 1 span written, 1 ring-dropped + 2 sampler-suppressed: each
        // logged span stands for ~4 real ones.
        let lossy = Footer {
            events_written: 1,
            dropped_events: 1,
            dropped_by: DroppedCounts {
                spans: 1,
                ..DroppedCounts::default()
            },
            sampler_dropped_by: DroppedCounts {
                spans: 2,
                ..DroppedCounts::default()
            },
            ..Footer::default()
        };
        let g = collapse_annotated(&records, Some(&lossy));
        let path = "gpu;kernel_(~4.0x_undercounted)";
        assert_eq!(g.stacks().get(path), Some(&50));
        // Still flamegraph.pl-parseable: no spaces or semicolons added.
        let out = g.to_collapsed();
        let (stack, count) = out.trim_end().rsplit_once(' ').unwrap();
        assert_eq!(count.parse::<u64>().unwrap(), 50);
        assert_eq!(stack.split(';').count(), 2);

        // Losses in other categories don't tag span stacks.
        let counter_losses = Footer {
            events_written: 1,
            dropped_by: DroppedCounts {
                counters: 10,
                ..DroppedCounts::default()
            },
            ..Footer::default()
        };
        let g = collapse_annotated(&records, Some(&counter_losses));
        assert!(g.stacks().contains_key("gpu;kernel"));
    }

    #[test]
    fn non_span_records_are_ignored() {
        let records = vec![LogRecord::Counter {
            name: "c".to_string(),
            delta: 1,
        }];
        assert!(collapse(&records).stacks().is_empty());
    }
}
