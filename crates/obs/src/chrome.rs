//! Chrome Trace Event JSON emission.
//!
//! Produces the JSON Object Format of the Trace Event spec — `{"traceEvents":
//! [...]}` with `ph:"X"` (complete) duration events and `ph:"M"` metadata
//! events — which both `chrome://tracing` and Perfetto load directly.
//!
//! Two kinds of timelines coexist in one trace by using distinct `pid`s:
//! wall-clock spans recorded by the tracer ([`ChromeTrace::add_recorded`]),
//! and *simulated-time* events stamped explicitly by the caller
//! ([`ChromeTrace::add_complete`]) — e.g. a `StepTrace`'s per-kernel latencies
//! laid out on the modeled GPU timeline.

use crate::span::Event;

/// One complete (`ph:"X"`) event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name shown on the trace slice.
    pub name: String,
    /// Event category (Chrome's `cat` field, used for filtering).
    pub cat: String,
    /// Process row the event renders under.
    pub pid: u64,
    /// Thread row within the process.
    pub tid: u64,
    /// Start in microseconds (Chrome's native trace unit).
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// Builder for a Chrome-format trace document.
#[derive(Debug, Default, Clone)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
    /// `(pid, name)` process-name metadata.
    process_names: Vec<(u64, String)>,
    /// `(pid, tid, name)` thread-name metadata.
    thread_names: Vec<(u64, u64, String)>,
}

impl ChromeTrace {
    /// Creates an empty trace document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of duration events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no duration events have been added yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one complete event with explicit timestamps (microseconds).
    pub fn add_complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_us: f64,
        dur_us: f64,
    ) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat: cat.into(),
            pid,
            tid,
            ts_us,
            dur_us,
        });
    }

    /// Adds every recorded span under process `pid`, converting the tracer's
    /// nanosecond wall-clock timestamps to microseconds.
    pub fn add_recorded(&mut self, events: &[Event], pid: u64) {
        for e in events {
            self.events.push(ChromeEvent {
                name: e.name.clone(),
                cat: e.cat.to_string(),
                pid,
                tid: e.tid,
                ts_us: e.ts_ns as f64 / 1_000.0,
                dur_us: e.dur_ns as f64 / 1_000.0,
            });
        }
    }

    /// Labels a process lane in the viewer.
    pub fn name_process(&mut self, pid: u64, name: impl Into<String>) {
        self.process_names.push((pid, name.into()));
    }

    /// Labels a thread lane in the viewer.
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: impl Into<String>) {
        self.thread_names.push((pid, tid, name.into()));
    }

    /// Renders the trace document as compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (pid, name) in &self.process_names {
            push_sep(&mut out, &mut first);
            out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
            out.push_str(&pid.to_string());
            out.push_str(",\"tid\":0,\"args\":{\"name\":");
            write_json_string(&mut out, name);
            out.push_str("}}");
        }
        for (pid, tid, name) in &self.thread_names {
            push_sep(&mut out, &mut first);
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":");
            out.push_str(&pid.to_string());
            out.push_str(",\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":");
            write_json_string(&mut out, name);
            out.push_str("}}");
        }
        for e in &self.events {
            push_sep(&mut out, &mut first);
            out.push_str("{\"name\":");
            write_json_string(&mut out, &e.name);
            out.push_str(",\"cat\":");
            write_json_string(&mut out, &e.cat);
            out.push_str(",\"ph\":\"X\",\"pid\":");
            out.push_str(&e.pid.to_string());
            out.push_str(",\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&format_json_f64(e.ts_us));
            out.push_str(",\"dur\":");
            out.push_str(&format_json_f64(e.dur_us));
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Writes `s` as a JSON string literal (with quotes and escapes).
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON number (non-finite values become 0, which JSON
/// cannot represent and traces never contain legitimately).
pub(crate) fn format_json_f64(f: f64) -> String {
    if !f.is_finite() {
        return "0".to_string();
    }
    let mut s = format!("{f}");
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        s.push_str(".0");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_complete_and_metadata_events() {
        let mut trace = ChromeTrace::new();
        trace.name_process(1, "sim");
        trace.name_thread(1, 0, "gpu stream");
        trace.add_complete(1, 0, "matmul \"q\"", "kernel", 0.0, 12.5);
        let json = trace.to_json_string();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":12.5"));
        assert!(json.contains("matmul \\\"q\\\""));
        assert_eq!(trace.len(), 1);
        assert!(!trace.is_empty());
    }

    /// Names that stress every escaping class: quotes, backslashes, named
    /// control escapes, raw control chars, and non-ASCII (multi-byte and
    /// astral-plane).
    fn hostile_names() -> Vec<&'static str> {
        vec![
            r#"quote " in the middle"#,
            r#"trailing backslash \"#,
            r#"\\"already escaped\\""#,
            "newline\nand\ttab\rand\x08backspace",
            "\x00\x01\x1f raw controls",
            "expert-π: “curly” → données 数据 🧪",
            "",
        ]
    }

    #[test]
    fn hostile_span_names_round_trip_through_the_parser() {
        let mut trace = ChromeTrace::new();
        for (i, name) in hostile_names().into_iter().enumerate() {
            trace.add_complete(1, i as u64, name, name, i as f64, 1.0);
        }
        let json = trace.to_json_string();
        let doc: serde_json::Value =
            serde_json::from_str(&json).expect("escaped output must be valid JSON");
        let events = match doc.get("traceEvents") {
            Some(serde_json::Value::Array(events)) => events,
            other => panic!("missing traceEvents: {other:?}"),
        };
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| match (e.get("ph"), e.get("name")) {
                (Some(serde_json::Value::String(ph)), Some(serde_json::Value::String(n)))
                    if ph == "X" =>
                {
                    Some(n.as_str())
                }
                _ => None,
            })
            .collect();
        assert_eq!(names, hostile_names(), "names survive escape + parse");
        // Categories take the same path.
        for (e, want) in events.iter().zip(hostile_names()) {
            match e.get("cat") {
                Some(serde_json::Value::String(cat)) => assert_eq!(cat, want),
                other => panic!("missing cat: {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_metadata_names_round_trip_through_the_parser() {
        let mut trace = ChromeTrace::new();
        let name = "proc \"sim\\trace\"\n\u{1F525} \x02";
        trace.name_process(7, name);
        trace.name_thread(7, 3, name);
        let doc: serde_json::Value =
            serde_json::from_str(&trace.to_json_string()).expect("valid JSON");
        let events = match doc.get("traceEvents") {
            Some(serde_json::Value::Array(events)) => events,
            other => panic!("missing traceEvents: {other:?}"),
        };
        let meta_names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("args"))
            .filter_map(|a| match a.get("name") {
                Some(serde_json::Value::String(n)) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(meta_names, vec![name, name]);
    }

    #[test]
    fn snapshot_export_escapes_hostile_metric_names() {
        let mut out = String::new();
        write_json_string(&mut out, "metric \"x\\y\"\u{7}: temps élevés");
        let parsed: serde_json::Value = serde_json::from_str(&out).expect("valid JSON literal");
        match parsed {
            serde_json::Value::String(s) => {
                assert_eq!(s, "metric \"x\\y\"\u{7}: temps élevés")
            }
            other => panic!("expected string, got {other:?}"),
        }
    }
}
