//! In-process aggregation of recorded spans into a call tree.
//!
//! [`SpanTree::build`] groups a batch of [`Event`]s by (thread-local) nesting
//! structure and merges identically named paths across threads: each node
//! aggregates every span with the same name under the same parent chain,
//! tracking call count, total (inclusive) time, and self time (inclusive
//! minus direct children). This is the textual/programmatic complement to
//! the Chrome trace — fast to assert on in tests and compact to print.

use std::collections::BTreeMap;

use crate::span::Event;

/// Aggregated statistics for one span name at one position in the tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanNode {
    /// Number of spans merged into this node.
    pub count: u64,
    /// Total inclusive duration, nanoseconds.
    pub total_ns: u64,
    /// Inclusive minus direct children's inclusive, nanoseconds.
    pub self_ns: u64,
    /// Children keyed by span name.
    pub children: BTreeMap<String, SpanNode>,
}

/// An aggregated forest of spans (top-level spans are roots).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanTree {
    /// Root nodes keyed by span name.
    pub roots: BTreeMap<String, SpanNode>,
}

impl SpanTree {
    /// Builds the aggregate tree from a batch of events (as returned by
    /// [`crate::drain_events`]).
    ///
    /// Within one thread spans are properly nested, so walking that thread's
    /// events in start order with a depth stack reconstructs parentage
    /// exactly; identical paths from different threads merge.
    pub fn build(events: &[Event]) -> SpanTree {
        let mut tree = SpanTree::default();
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let mut thread_events: Vec<&Event> = events.iter().filter(|e| e.tid == tid).collect();
            thread_events.sort_by_key(|e| (e.ts_ns, e.depth));
            // Stack of (depth, name) forming the current open path. Popping
            // by recorded depth (not position) keeps nesting correct even if
            // some ancestors were filtered out of `events`.
            let mut open: Vec<(u32, String)> = Vec::new();
            for event in thread_events {
                while open.last().is_some_and(|(d, _)| *d >= event.depth) {
                    open.pop();
                }
                let path: Vec<String> = open.iter().map(|(_, n)| n.clone()).collect();
                let node = tree.node_at(&path, &event.name);
                node.count += 1;
                node.total_ns += event.dur_ns;
                node.self_ns += event.dur_ns;
                if let Some(parent_name) = path.last().cloned() {
                    let parent = tree.node_at(&path[..path.len() - 1], &parent_name);
                    parent.self_ns = parent.self_ns.saturating_sub(event.dur_ns);
                }
                open.push((event.depth, event.name.clone()));
            }
        }
        tree
    }

    fn node_at(&mut self, path: &[String], name: &str) -> &mut SpanNode {
        let mut map = &mut self.roots;
        for segment in path {
            map = &mut map.entry(segment.clone()).or_default().children;
        }
        map.entry(name.to_string()).or_default()
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        fn walk(map: &BTreeMap<String, SpanNode>) -> usize {
            map.values().map(|n| 1 + walk(&n.children)).sum()
        }
        walk(&self.roots)
    }

    /// Renders an indented text report, children sorted by total time
    /// descending.
    pub fn render(&self) -> String {
        fn walk(out: &mut String, map: &BTreeMap<String, SpanNode>, indent: usize) {
            let mut rows: Vec<(&String, &SpanNode)> = map.iter().collect();
            rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
            for (name, node) in rows {
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push_str(&format!(
                    "{name}: count={} total={:.3}ms self={:.3}ms\n",
                    node.count,
                    node.total_ns as f64 / 1e6,
                    node.self_ns as f64 / 1e6,
                ));
                walk(out, &node.children, indent + 1);
            }
        }
        let mut out = String::new();
        walk(&mut out, &self.roots, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts: u64, dur: u64, tid: u64, depth: u32) -> Event {
        Event {
            name: name.to_string(),
            cat: "test",
            ts_ns: ts,
            dur_ns: dur,
            tid,
            depth,
        }
    }

    #[test]
    fn builds_nested_tree_with_self_time() {
        // thread 0: step [0,100) > fwd [0,40), bwd [40,90)
        // thread 1: step [0,80) > fwd [0,30)
        let events = vec![
            ev("step", 0, 100, 0, 0),
            ev("fwd", 0, 40, 0, 1),
            ev("bwd", 40, 50, 0, 1),
            ev("step", 0, 80, 1, 0),
            ev("fwd", 0, 30, 1, 1),
        ];
        let tree = SpanTree::build(&events);
        let step = &tree.roots["step"];
        assert_eq!(step.count, 2);
        assert_eq!(step.total_ns, 180);
        assert_eq!(step.self_ns, 180 - 40 - 50 - 30);
        assert_eq!(step.children["fwd"].count, 2);
        assert_eq!(step.children["fwd"].total_ns, 70);
        assert_eq!(step.children["bwd"].total_ns, 50);
        assert_eq!(tree.node_count(), 3);
        let report = tree.render();
        assert!(report.starts_with("step:"));
        assert!(report.contains("  fwd:"));
    }
}
