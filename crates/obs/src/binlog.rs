//! File-backed binary event log: the out-of-process leg of the streaming
//! observability pipeline.
//!
//! [`RingSink`] implements [`crate::ObsSink`] by encoding every span/metric
//! callback into a fixed-size [`RingEvent`] and pushing it into a shared
//! [`RingBuffer`] — producers never block or allocate. A [`BinLogWriter`]
//! background thread drains the ring, appends length-prefixed frames to a
//! log file with periodic flushes, and stamps a footer (event + drop counts)
//! on clean shutdown. [`LogReader`] tails the same file incrementally — from
//! a second process or a same-process reader thread — tolerating partial
//! trailing frames, which is what `repro profile --follow` and the offline
//! exporters ([`crate::flame`], `repro obs-diff`) are built on.
//!
//! # Wire format
//!
//! ```text
//! magic   "FTSOBS01" (8 bytes)
//! frame   u32 LE payload length, then payload
//! payload u8 tag, then tag-specific fields (integers LE, floats as bits,
//!         strings as u8 length + UTF-8 bytes)
//!   1 span      cat, name, ts_ns u64, dur_ns u64, tid u32, depth u32
//!   2 counter   name, delta u64
//!   3 gauge     name, f64 bits
//!   4 histogram name, f64 bits
//!   255 footer  events_written u64, dropped_events u64, then (since v2 of
//!               the footer; absent in older logs) per-category drop counts
//!               spans/counters/gauges/histograms as 4 × u64, then (since
//!               v3) per-category sampler admitted + suppressed counts as
//!               8 × u64
//! ```
//!
//! Footer decoding is length-driven: older (shorter) footers decode with
//! the missing tails reported as zero, so logs written by any prior version
//! keep replaying.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::ring::{CategoryCounts, DroppedCounts, InlineStr, RingBuffer, RingEvent, Sampler};
use crate::sink::ObsSink;
use crate::span::Event;

/// First 8 bytes of every event log.
pub const MAGIC: &[u8; 8] = b"FTSOBS01";

const TAG_SPAN: u8 = 1;
const TAG_COUNTER: u8 = 2;
const TAG_GAUGE: u8 = 3;
const TAG_HISTOGRAM: u8 = 4;
const TAG_FOOTER: u8 = 255;

/// An [`ObsSink`] that forwards every event into a shared ring buffer,
/// optionally thinned by a producer-side [`Sampler`] first.
pub struct RingSink {
    ring: Arc<RingBuffer>,
    sampler: Option<Arc<Sampler>>,
}

impl RingSink {
    /// Wrap a shared ring buffer as an installable sink.
    pub fn new(ring: Arc<RingBuffer>) -> RingSink {
        RingSink {
            ring,
            sampler: None,
        }
    }

    /// Wrap a ring with a sampler in front: events the sampler suppresses
    /// never touch the ring (and are tallied by the sampler, not as ring
    /// drops). Share the same `Arc<Sampler>` with
    /// [`BinLogWriter::spawn_with_sampler`] so the footer carries the
    /// sampler's exact per-category counts.
    pub fn with_sampler(ring: Arc<RingBuffer>, sampler: Arc<Sampler>) -> RingSink {
        RingSink {
            ring,
            sampler: Some(sampler),
        }
    }

    #[inline]
    fn push(&self, event: RingEvent) {
        if let Some(sampler) = &self.sampler {
            if !sampler.admit_now(event.category_index()) {
                return;
            }
        }
        self.ring.try_push(event);
    }
}

impl ObsSink for RingSink {
    fn on_span(&self, event: &Event) {
        self.push(RingEvent::Span {
            cat: InlineStr::truncate_from(event.cat),
            name: InlineStr::truncate_from(&event.name),
            ts_ns: event.ts_ns,
            dur_ns: event.dur_ns,
            tid: event.tid as u32,
            depth: event.depth,
        });
    }

    fn on_counter(&self, name: &str, delta: u64) {
        self.push(RingEvent::Counter {
            name: InlineStr::truncate_from(name),
            delta,
        });
    }

    fn on_gauge(&self, name: &str, value: f64) {
        self.push(RingEvent::Gauge {
            name: InlineStr::truncate_from(name),
            value,
        });
    }

    fn on_histogram(&self, name: &str, value: f64) {
        self.push(RingEvent::Histogram {
            name: InlineStr::truncate_from(name),
            value,
        });
    }
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u8::MAX as usize);
    buf.push(s.len() as u8);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends one length-prefixed frame for `event` to `buf`.
pub fn encode_event(event: &RingEvent, buf: &mut Vec<u8>) {
    let start = buf.len();
    buf.extend_from_slice(&[0; 4]); // length patched below
    match event {
        RingEvent::Span {
            cat,
            name,
            ts_ns,
            dur_ns,
            tid,
            depth,
        } => {
            buf.push(TAG_SPAN);
            push_str(buf, cat.as_str());
            push_str(buf, name.as_str());
            buf.extend_from_slice(&ts_ns.to_le_bytes());
            buf.extend_from_slice(&dur_ns.to_le_bytes());
            buf.extend_from_slice(&tid.to_le_bytes());
            buf.extend_from_slice(&depth.to_le_bytes());
        }
        RingEvent::Counter { name, delta } => {
            buf.push(TAG_COUNTER);
            push_str(buf, name.as_str());
            buf.extend_from_slice(&delta.to_le_bytes());
        }
        RingEvent::Gauge { name, value } => {
            buf.push(TAG_GAUGE);
            push_str(buf, name.as_str());
            buf.extend_from_slice(&value.to_bits().to_le_bytes());
        }
        RingEvent::Histogram { name, value } => {
            buf.push(TAG_HISTOGRAM);
            push_str(buf, name.as_str());
            buf.extend_from_slice(&value.to_bits().to_le_bytes());
        }
    }
    let len = (buf.len() - start - 4) as u32;
    buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

fn encode_footer(footer: &Footer, buf: &mut Vec<u8>) {
    // 1 tag + 2 u64 totals + 4 u64 per-category drop counts + 8 u64
    // per-category sampler admitted/suppressed counts.
    buf.extend_from_slice(&113u32.to_le_bytes());
    buf.push(TAG_FOOTER);
    buf.extend_from_slice(&footer.events_written.to_le_bytes());
    buf.extend_from_slice(&footer.dropped_events.to_le_bytes());
    for counts in [
        footer.dropped_by,
        footer.sampled_by,
        footer.sampler_dropped_by,
    ] {
        for count in [
            counts.spans,
            counts.counters,
            counts.gauges,
            counts.histograms,
        ] {
            buf.extend_from_slice(&count.to_le_bytes());
        }
    }
}

/// A decoded log record (the owned, heap-side mirror of [`RingEvent`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A completed span.
    Span {
        /// Span category (e.g. `"tensor.kernel"`).
        cat: String,
        /// Span name (e.g. `"matmul"`).
        name: String,
        /// Start timestamp, nanoseconds since the tracer epoch.
        ts_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
        /// Stable thread id of the recording thread.
        tid: u32,
        /// Nesting depth at record time (0 = top-level).
        depth: u32,
    },
    /// A counter increment.
    Counter {
        /// Counter name.
        name: String,
        /// Amount added to the counter.
        delta: u64,
    },
    /// A gauge update.
    Gauge {
        /// Gauge name.
        name: String,
        /// New gauge value.
        value: f64,
    },
    /// A histogram sample.
    Histogram {
        /// Histogram name.
        name: String,
        /// Sampled value.
        value: f64,
    },
}

/// The clean-shutdown footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Footer {
    /// Events the writer appended to the log.
    pub events_written: u64,
    /// Events the ring rejected because it was full (producers never block;
    /// overload costs visibility, not throughput).
    pub dropped_events: u64,
    /// The same drops broken down by event category. All-zero for logs
    /// written before the footer carried the breakdown.
    pub dropped_by: DroppedCounts,
    /// Events the producer-side sampler admitted, per category. All-zero
    /// when no sampler was installed or the log predates footer v3.
    pub sampled_by: CategoryCounts,
    /// Events the producer-side sampler suppressed, per category (these
    /// never reached the ring). All-zero for unsampled or older logs.
    pub sampler_dropped_by: CategoryCounts,
}

impl Footer {
    /// Undercount factor for category `index` (the
    /// [`RingEvent::category_index`] order): how many real events each
    /// logged event of that category stands for, given `written` records of
    /// it in the log. `1.0` means the log is complete for the category.
    pub fn undercount_factor(&self, index: usize, written: u64) -> f64 {
        if written == 0 {
            return 1.0;
        }
        let lost = self.dropped_by.get(index) + self.sampler_dropped_by.get(index);
        (written + lost) as f64 / written as f64
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self.pos + n;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated frame body"))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Reads a per-category count quad, or all-zero when the payload ends
    /// first (how older footers decode under newer readers).
    fn category_quad(&mut self) -> io::Result<DroppedCounts> {
        if self.remaining() < 32 {
            return Ok(DroppedCounts::default());
        }
        Ok(DroppedCounts {
            spans: self.u64()?,
            counters: self.u64()?,
            gauges: self.u64()?,
            histograms: self.u64()?,
        })
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u8()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 name"))
    }
}

enum Decoded {
    Record(LogRecord),
    Footer(Footer),
}

/// Decodes one payload (the bytes after a frame's length prefix).
fn decode_payload(payload: &[u8]) -> io::Result<Decoded> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let record = match c.u8()? {
        TAG_SPAN => LogRecord::Span {
            cat: c.string()?,
            name: c.string()?,
            ts_ns: c.u64()?,
            dur_ns: c.u64()?,
            tid: c.u32()?,
            depth: c.u32()?,
        },
        TAG_COUNTER => LogRecord::Counter {
            name: c.string()?,
            delta: c.u64()?,
        },
        TAG_GAUGE => LogRecord::Gauge {
            name: c.string()?,
            value: f64::from_bits(c.u64()?),
        },
        TAG_HISTOGRAM => LogRecord::Histogram {
            name: c.string()?,
            value: f64::from_bits(c.u64()?),
        },
        TAG_FOOTER => {
            let events_written = c.u64()?;
            let dropped_events = c.u64()?;
            // Length-driven tails: logs written before a given footer
            // extension simply end earlier, and the missing counts read as
            // zero (v1: totals only; v2: + drop breakdown; v3: + sampler).
            let dropped_by = c.category_quad()?;
            let sampled_by = c.category_quad()?;
            let sampler_dropped_by = c.category_quad()?;
            return Ok(Decoded::Footer(Footer {
                events_written,
                dropped_events,
                dropped_by,
                sampled_by,
                sampler_dropped_by,
            }));
        }
        tag => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown frame tag {tag}"),
            ))
        }
    };
    Ok(Decoded::Record(record))
}

/// Statistics returned by [`BinLogWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriterStats {
    /// Events appended to the log file.
    pub events_written: u64,
    /// Events the ring dropped under overload (never written).
    pub dropped_events: u64,
    /// Per-category breakdown of those drops.
    pub dropped_by: DroppedCounts,
    /// Events the producer-side sampler admitted (zero without a sampler).
    pub sampled_by: CategoryCounts,
    /// Events the producer-side sampler suppressed before the ring.
    pub sampler_dropped_by: CategoryCounts,
}

/// Background drain thread: pops the ring and appends frames to a file.
///
/// Spawn it once per run; call [`BinLogWriter::finish`] for a clean shutdown
/// (drains the ring to empty, writes the footer, flushes). Dropping without
/// `finish` leaves a footer-less log, which readers treat as an unclean end.
pub struct BinLogWriter {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<io::Result<WriterStats>>,
}

impl BinLogWriter {
    /// Creates (truncating) `path`, writes the magic, and starts the drain
    /// thread. `flush_interval` bounds how stale the on-disk log can be
    /// while the run is in progress — the follow reader's latency.
    pub fn spawn(
        path: impl Into<PathBuf>,
        ring: Arc<RingBuffer>,
        flush_interval: Duration,
    ) -> io::Result<BinLogWriter> {
        BinLogWriter::spawn_inner(path.into(), ring, flush_interval, None)
    }

    /// Like [`BinLogWriter::spawn`], with the sampler guarding the ring's
    /// producers (the same `Arc` handed to [`RingSink::with_sampler`]): its
    /// exact per-category admitted/suppressed counts are stamped into the
    /// footer on [`BinLogWriter::finish`].
    pub fn spawn_with_sampler(
        path: impl Into<PathBuf>,
        ring: Arc<RingBuffer>,
        flush_interval: Duration,
        sampler: Arc<Sampler>,
    ) -> io::Result<BinLogWriter> {
        BinLogWriter::spawn_inner(path.into(), ring, flush_interval, Some(sampler))
    }

    fn spawn_inner(
        path: PathBuf,
        ring: Arc<RingBuffer>,
        flush_interval: Duration,
        sampler: Option<Arc<Sampler>>,
    ) -> io::Result<BinLogWriter> {
        let mut file = File::create(&path)?;
        file.write_all(MAGIC)?;
        file.flush()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ftsim-obs-binlog".to_string())
            .spawn(move || drain_loop(file, ring, stop_flag, flush_interval, sampler))
            .expect("spawn binlog drain thread");
        Ok(BinLogWriter { stop, handle })
    }

    /// Signals the drain thread, waits for it to drain the ring, write the
    /// footer, and flush; returns what it wrote.
    pub fn finish(self) -> io::Result<WriterStats> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("binlog drain thread panicked")
    }
}

fn drain_loop(
    mut file: File,
    ring: Arc<RingBuffer>,
    stop: Arc<AtomicBool>,
    flush_interval: Duration,
    sampler: Option<Arc<Sampler>>,
) -> io::Result<WriterStats> {
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut written = 0u64;
    let mut last_flush = Instant::now();
    loop {
        let mut drained = 0u32;
        while let Some(event) = ring.try_pop() {
            encode_event(&event, &mut buf);
            written += 1;
            drained += 1;
            // Bound the batch so flushes stay timely under a firehose.
            if drained >= 4096 {
                break;
            }
        }
        if !buf.is_empty() && (last_flush.elapsed() >= flush_interval || drained >= 4096) {
            file.write_all(&buf)?;
            file.flush()?;
            buf.clear();
            last_flush = Instant::now();
        }
        if drained == 0 {
            if stop.load(Ordering::Relaxed) && ring.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let stats = WriterStats {
        events_written: written,
        dropped_events: ring.dropped_events(),
        dropped_by: ring.dropped_by_category(),
        sampled_by: sampler
            .as_ref()
            .map(|s| s.sampled_by_category())
            .unwrap_or_default(),
        sampler_dropped_by: sampler
            .as_ref()
            .map(|s| s.dropped_by_category())
            .unwrap_or_default(),
    };
    encode_footer(
        &Footer {
            events_written: stats.events_written,
            dropped_events: stats.dropped_events,
            dropped_by: stats.dropped_by,
            sampled_by: stats.sampled_by,
            sampler_dropped_by: stats.sampler_dropped_by,
        },
        &mut buf,
    );
    file.write_all(&buf)?;
    file.flush()?;
    Ok(stats)
}

/// Incremental reader over a (possibly still growing) event log.
///
/// [`LogReader::poll`] returns every record completed since the last poll;
/// a partial trailing frame is kept buffered until the writer completes it.
/// Once the footer is seen, [`LogReader::footer`] is set and `poll` returns
/// nothing further.
pub struct LogReader {
    file: File,
    pending: Vec<u8>,
    header_seen: bool,
    footer: Option<Footer>,
}

impl LogReader {
    /// Opens `path` for tailing. The file may be empty or mid-write.
    pub fn open(path: impl AsRef<Path>) -> io::Result<LogReader> {
        Ok(LogReader {
            file: File::open(path)?,
            pending: Vec::new(),
            header_seen: false,
            footer: None,
        })
    }

    /// The footer, once the writer has shut down cleanly.
    pub fn footer(&self) -> Option<Footer> {
        self.footer
    }

    /// Reads newly appended bytes and decodes every complete frame.
    pub fn poll(&mut self) -> io::Result<Vec<LogRecord>> {
        if self.footer.is_some() {
            return Ok(Vec::new());
        }
        self.file.read_to_end(&mut self.pending)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        if !self.header_seen {
            if self.pending.len() < MAGIC.len() {
                return Ok(records);
            }
            if &self.pending[..MAGIC.len()] != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not an ftsim-obs event log (bad magic)",
                ));
            }
            self.header_seen = true;
            pos = MAGIC.len();
        }
        while self.footer.is_none() {
            let Some(len_bytes) = self.pending.get(pos..pos + 4) else {
                break;
            };
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4")) as usize;
            let Some(payload) = self.pending.get(pos + 4..pos + 4 + len) else {
                break; // partial trailing frame: wait for the writer
            };
            match decode_payload(payload)? {
                Decoded::Record(r) => records.push(r),
                Decoded::Footer(f) => self.footer = Some(f),
            }
            pos += 4 + len;
        }
        self.pending.drain(..pos);
        Ok(records)
    }
}

/// Reads a complete log from disk: every record plus the footer (if the
/// writer shut down cleanly).
pub fn replay(path: impl AsRef<Path>) -> io::Result<(Vec<LogRecord>, Option<Footer>)> {
    let mut reader = LogReader::open(path)?;
    let mut records = Vec::new();
    loop {
        let batch = reader.poll()?;
        if batch.is_empty() {
            break;
        }
        records.extend(batch);
    }
    Ok((records, reader.footer()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> InlineStr {
        InlineStr::truncate_from(s)
    }

    fn sample_events() -> Vec<RingEvent> {
        vec![
            RingEvent::Span {
                cat: name("sim.step"),
                name: name("forward"),
                ts_ns: 10,
                dur_ns: 250,
                tid: 3,
                depth: 1,
            },
            RingEvent::Counter {
                name: name("sim.sweep.points_done"),
                delta: 2,
            },
            RingEvent::Gauge {
                name: name("sim.train.loss"),
                value: -0.125,
            },
            RingEvent::Histogram {
                name: name("sim.train.expert_token_pct"),
                value: 12.5,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_variant() {
        for event in sample_events() {
            let mut buf = Vec::new();
            encode_event(&event, &mut buf);
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            assert_eq!(len + 4, buf.len());
            let Decoded::Record(record) = decode_payload(&buf[4..]).unwrap() else {
                panic!("not a record");
            };
            match (&event, &record) {
                (
                    RingEvent::Span {
                        cat,
                        name,
                        ts_ns,
                        dur_ns,
                        tid,
                        depth,
                    },
                    LogRecord::Span {
                        cat: c2,
                        name: n2,
                        ts_ns: t2,
                        dur_ns: d2,
                        tid: tid2,
                        depth: dep2,
                    },
                ) => {
                    assert_eq!(cat.as_str(), c2);
                    assert_eq!(name.as_str(), n2);
                    assert_eq!((ts_ns, dur_ns, tid, depth), (t2, d2, tid2, dep2));
                }
                (
                    RingEvent::Counter { name, delta },
                    LogRecord::Counter {
                        name: n2,
                        delta: d2,
                    },
                ) => {
                    assert_eq!(name.as_str(), n2);
                    assert_eq!(delta, d2);
                }
                (
                    RingEvent::Gauge { name, value },
                    LogRecord::Gauge {
                        name: n2,
                        value: v2,
                    },
                ) => {
                    assert_eq!(name.as_str(), n2);
                    assert_eq!(value.to_bits(), v2.to_bits());
                }
                (
                    RingEvent::Histogram { name, value },
                    LogRecord::Histogram {
                        name: n2,
                        value: v2,
                    },
                ) => {
                    assert_eq!(name.as_str(), n2);
                    assert_eq!(value.to_bits(), v2.to_bits());
                }
                other => panic!("variant mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn writer_and_replay_round_trip_with_footer() {
        let dir = std::env::temp_dir().join(format!("ftsim-binlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        let ring = Arc::new(RingBuffer::with_capacity(64));
        let writer =
            BinLogWriter::spawn(&path, Arc::clone(&ring), Duration::from_millis(5)).unwrap();
        for event in sample_events() {
            assert!(ring.try_push(event));
        }
        let stats = writer.finish().unwrap();
        assert_eq!(stats.events_written, 4);
        assert_eq!(stats.dropped_events, 0);

        let (records, footer) = replay(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(
            footer,
            Some(Footer {
                events_written: 4,
                ..Footer::default()
            })
        );
        assert!(matches!(&records[0], LogRecord::Span { name, .. } if name == "forward"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn footer_round_trips_per_category_drops_and_reads_old_logs() {
        let footer = Footer {
            events_written: 100,
            dropped_events: 10,
            dropped_by: DroppedCounts {
                spans: 7,
                counters: 1,
                gauges: 0,
                histograms: 2,
            },
            sampled_by: CategoryCounts {
                spans: 40,
                counters: 30,
                gauges: 20,
                histograms: 10,
            },
            sampler_dropped_by: CategoryCounts {
                spans: 400,
                counters: 0,
                gauges: 0,
                histograms: 5,
            },
        };
        let mut buf = Vec::new();
        encode_footer(&footer, &mut buf);
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(
            len, 113,
            "footer payload: tag + 2 totals + 3 category quads"
        );
        let Decoded::Footer(decoded) = decode_payload(&buf[4..]).unwrap() else {
            panic!("not a footer");
        };
        assert_eq!(decoded, footer);
        // Undercount for spans: (written + ring-dropped + sampler-dropped)
        // / written, using the caller's span record count.
        assert!((decoded.undercount_factor(0, 93) - 500.0 / 93.0).abs() < 1e-12);
        assert_eq!(decoded.undercount_factor(2, 0), 1.0, "no records, no claim");

        // A v1 footer (17-byte payload: totals only) still decodes, with
        // all breakdowns zero.
        let mut old = Vec::new();
        old.extend_from_slice(&17u32.to_le_bytes());
        old.push(TAG_FOOTER);
        old.extend_from_slice(&100u64.to_le_bytes());
        old.extend_from_slice(&10u64.to_le_bytes());
        let Decoded::Footer(legacy) = decode_payload(&old[4..]).unwrap() else {
            panic!("not a footer");
        };
        assert_eq!(legacy.events_written, 100);
        assert_eq!(legacy.dropped_events, 10);
        assert_eq!(legacy.dropped_by, DroppedCounts::default());
        assert_eq!(legacy.sampled_by, CategoryCounts::default());
        assert_eq!(legacy.sampler_dropped_by, CategoryCounts::default());

        // A v2 footer (49-byte payload: totals + drop breakdown) decodes
        // its breakdown and reports zero sampler counts.
        let mut v2 = Vec::new();
        v2.extend_from_slice(&49u32.to_le_bytes());
        v2.push(TAG_FOOTER);
        v2.extend_from_slice(&100u64.to_le_bytes());
        v2.extend_from_slice(&10u64.to_le_bytes());
        for count in [7u64, 1, 0, 2] {
            v2.extend_from_slice(&count.to_le_bytes());
        }
        let Decoded::Footer(mid) = decode_payload(&v2[4..]).unwrap() else {
            panic!("not a footer");
        };
        assert_eq!(mid.dropped_by, footer.dropped_by);
        assert_eq!(mid.sampled_by, CategoryCounts::default());
        assert_eq!(mid.sampler_dropped_by, CategoryCounts::default());
    }

    #[test]
    fn sampled_sink_thins_the_stream_and_footers_the_counts() {
        use crate::ring::{Sampler, SamplerConfig};
        let dir = std::env::temp_dir().join(format!("ftsim-binlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sampled.bin");
        let ring = Arc::new(RingBuffer::with_capacity(1 << 12));
        // Zero refill rate: 8 tokens then pure 1-in-N — deterministic
        // regardless of wall clock.
        let sampler = Arc::new(Sampler::new(SamplerConfig {
            rate_per_sec: 0,
            burst: 8,
            max_stride: 16,
        }));
        let sink = RingSink::with_sampler(Arc::clone(&ring), Arc::clone(&sampler));
        let writer = BinLogWriter::spawn_with_sampler(
            &path,
            Arc::clone(&ring),
            Duration::from_millis(5),
            Arc::clone(&sampler),
        )
        .unwrap();
        for i in 0..1000u64 {
            sink.on_counter("soak.counter", i);
        }
        let stats = writer.finish().unwrap();
        let s = sampler.sampled_by_category();
        let d = sampler.dropped_by_category();
        assert_eq!(s.counters + d.counters, 1000, "sampler sees every event");
        assert_eq!(
            stats.events_written, s.counters,
            "only admitted events land"
        );
        assert!(d.counters > 900, "sustained overload is thinned hard");
        assert_eq!(stats.sampled_by, s);
        assert_eq!(stats.sampler_dropped_by, d);
        let (records, footer) = replay(&path).unwrap();
        assert_eq!(records.len() as u64, stats.events_written);
        let footer = footer.unwrap();
        assert_eq!(footer.sampled_by, s);
        assert_eq!(footer.sampler_dropped_by, d);
        assert!(footer.undercount_factor(1, records.len() as u64) > 10.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overloaded_writer_footers_carry_the_category_breakdown() {
        let dir = std::env::temp_dir().join(format!("ftsim-binlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("overload.bin");
        // Fill a tiny ring before the writer exists, so the overflow is
        // deterministic: 2 land, the rest drop.
        let ring = Arc::new(RingBuffer::with_capacity(2));
        let mut pushed = 0u64;
        for event in sample_events() {
            if ring.try_push(event) {
                pushed += 1;
            }
        }
        assert_eq!(pushed, 2);
        let writer =
            BinLogWriter::spawn(&path, Arc::clone(&ring), Duration::from_millis(5)).unwrap();
        let stats = writer.finish().unwrap();
        assert_eq!(stats.events_written, 2);
        assert_eq!(stats.dropped_events, 2);
        assert_eq!(stats.dropped_by.total(), 2);
        // sample_events order: span, counter land; gauge + histogram drop.
        assert_eq!(stats.dropped_by.gauges, 1);
        assert_eq!(stats.dropped_by.histograms, 1);
        let (_, footer) = replay(&path).unwrap();
        assert_eq!(footer.unwrap().dropped_by, stats.dropped_by);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_tolerates_partial_trailing_frames() {
        let mut full = Vec::new();
        full.extend_from_slice(MAGIC);
        for event in sample_events() {
            encode_event(&event, &mut full);
        }
        let dir = std::env::temp_dir().join(format!("ftsim-binlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("partial.bin");

        // Write all but the last 3 bytes: the final frame is incomplete.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut reader = LogReader::open(&path).unwrap();
        let first = reader.poll().unwrap();
        assert_eq!(first.len(), 3, "complete frames decode, partial waits");
        assert!(reader.footer().is_none());

        // Complete the file; the held-back frame appears on the next poll.
        std::fs::write(&path, &full).unwrap();
        // Reopen (the test rewrote from scratch rather than appending).
        let mut reader = LogReader::open(&path).unwrap();
        let all = reader.poll().unwrap();
        assert_eq!(all.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_rejects_bad_magic() {
        let dir = std::env::temp_dir().join(format!("ftsim-binlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("badmagic.bin");
        std::fs::write(&path, b"NOTALOG!xxxx").unwrap();
        let mut reader = LogReader::open(&path).unwrap();
        assert!(reader.poll().is_err());
        std::fs::remove_file(&path).ok();
    }
}
