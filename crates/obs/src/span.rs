//! Thread-local RAII span tracing.
//!
//! [`span`] returns a [`SpanGuard`]; the span covers the guard's lifetime.
//! Spans nest: each thread keeps a depth counter, and a span started while
//! another is live on the same thread records one level deeper. Completed
//! spans are appended to a per-thread buffer (registered in a global list on
//! first use), so recording never contends across threads; [`drain_events`]
//! collects and clears every thread's buffer.
//!
//! Timestamps are nanoseconds since a process-global monotonic epoch
//! (captured on first use), so events from different threads share one
//! timeline. Thread ids are small sequential integers assigned on first
//! recording — stable for a thread's lifetime and friendly to trace viewers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::sink;

/// A completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name (e.g. a kernel class or pipeline stage).
    pub name: String,
    /// Category, used as the Chrome-trace `cat` field.
    pub cat: &'static str,
    /// Start, nanoseconds since the process-global epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Sequential id of the recording thread.
    pub tid: u64,
    /// Nesting depth at start (0 = top-level on its thread).
    pub depth: u32,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

type SharedBuffer = Arc<Mutex<Vec<Event>>>;

fn buffers() -> &'static Mutex<Vec<SharedBuffer>> {
    static BUFFERS: OnceLock<Mutex<Vec<SharedBuffer>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadState {
    tid: u64,
    depth: u32,
    buffer: SharedBuffer,
}

impl ThreadState {
    fn new() -> Self {
        static NEXT_TID: AtomicU64 = AtomicU64::new(0);
        let buffer: SharedBuffer = Arc::new(Mutex::new(Vec::new()));
        buffers()
            .lock()
            .expect("buffer registry")
            .push(buffer.clone());
        ThreadState {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            depth: 0,
            buffer,
        }
    }
}

thread_local! {
    static THREAD: std::cell::RefCell<Option<ThreadState>> = const { std::cell::RefCell::new(None) };
}

fn with_thread<R>(f: impl FnOnce(&mut ThreadState) -> R) -> R {
    THREAD.with(|slot| {
        let mut slot = slot.borrow_mut();
        f(slot.get_or_insert_with(ThreadState::new))
    })
}

/// Starts a span; it ends (and is recorded) when the guard drops.
///
/// When observability is disabled this returns an inert guard without
/// touching thread-local state — the disabled path is one relaxed atomic
/// load and a branch.
#[inline]
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    span_slow(cat, name.into())
}

/// [`span`] with a lazily-built name: `name` is only invoked when recording
/// is enabled, so call sites can use `format!` without allocating on the
/// disabled path.
#[inline]
pub fn span_lazy(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    span_slow(cat, name())
}

fn span_slow(cat: &'static str, name: String) -> SpanGuard {
    let (tid, depth) = with_thread(|t| {
        let d = t.depth;
        t.depth += 1;
        (t.tid, d)
    });
    SpanGuard {
        live: Some(Box::new(LiveSpan {
            name,
            cat,
            start_ns: now_ns(),
            tid,
            depth,
        })),
    }
}

struct LiveSpan {
    name: String,
    cat: &'static str,
    start_ns: u64,
    tid: u64,
    depth: u32,
}

/// RAII guard for a live span (see [`span`]).
///
/// The live payload is boxed so the disabled path hands back (and later
/// drops) a single null pointer instead of moving an 80-byte struct —
/// this is what keeps the disabled instrumentation under its overhead
/// budget (see `tests/overhead.rs`).
#[must_use = "a span covers the guard's lifetime; dropping it immediately records an empty span"]
pub struct SpanGuard {
    live: Option<Box<LiveSpan>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let end_ns = now_ns();
        let live = *live;
        let event = Event {
            dur_ns: end_ns.saturating_sub(live.start_ns),
            name: live.name,
            cat: live.cat,
            ts_ns: live.start_ns,
            tid: live.tid,
            depth: live.depth,
        };
        sink::forward_span(&event);
        with_thread(|t| {
            t.depth = t.depth.saturating_sub(1);
            t.buffer.lock().expect("span buffer").push(event);
        });
    }
}

/// Forwards a synthetic, pre-timed span straight to the installed sink.
///
/// Unlike [`span`], this does not buffer into the thread-local drain and the
/// timestamps are caller-supplied — it exists for *simulated* timelines
/// (e.g. the profiler replaying a step's modeled GPU latency into the event
/// stream), where wall-clock guards would record pricing time, not the
/// modeled time. No-op when observability is disabled or no sink is set.
pub fn emit_span(cat: &'static str, name: &str, ts_ns: u64, dur_ns: u64, tid: u64, depth: u32) {
    if !crate::enabled() {
        return;
    }
    sink::forward_span(&Event {
        name: name.to_string(),
        cat,
        ts_ns,
        dur_ns,
        tid,
        depth,
    });
}

/// Collects (and clears) every thread's recorded spans, ordered by start
/// time, then depth, then thread id — a parent always precedes its children.
pub fn drain_events() -> Vec<Event> {
    let mut events = Vec::new();
    for buffer in buffers().lock().expect("buffer registry").iter() {
        events.append(&mut buffer.lock().expect("span buffer"));
    }
    events.sort_by_key(|e| (e.ts_ns, e.depth, e.tid));
    events
}

/// Discards all recorded spans on every thread.
pub fn clear_events() {
    for buffer in buffers().lock().expect("buffer registry").iter() {
        buffer.lock().expect("span buffer").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_lock();
        crate::disable();
        clear_events();
        {
            let _s = span("test", "invisible");
        }
        assert!(drain_events().is_empty());
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let _g = test_lock();
        crate::enable();
        clear_events();
        {
            let _outer = span("test", "outer");
            {
                let _inner = span("test", "inner");
            }
        }
        crate::disable();
        let events: Vec<Event> = drain_events()
            .into_iter()
            .filter(|e| e.cat == "test")
            .collect();
        assert_eq!(events.len(), 2);
        let outer = &events[0];
        let inner = &events[1];
        assert_eq!((outer.name.as_str(), outer.depth), ("outer", 0));
        assert_eq!((inner.name.as_str(), inner.depth), ("inner", 1));
        assert_eq!(outer.tid, inner.tid);
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
    }

    #[test]
    fn threads_get_distinct_ids_and_a_shared_timeline() {
        let _g = test_lock();
        crate::enable();
        clear_events();
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    let _s = span("test-mt", format!("worker-{i}"));
                });
            }
        });
        crate::disable();
        let events: Vec<Event> = drain_events()
            .into_iter()
            .filter(|e| e.cat == "test-mt")
            .collect();
        assert_eq!(events.len(), 3);
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3, "each thread gets its own id");
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
