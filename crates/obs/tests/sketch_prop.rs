//! Property tests for the quantile sketch's two contracts: merge is
//! associative (and equals direct recording), and quantile estimates stay
//! within the documented relative-error bound `α` of the exact order
//! statistics.

use ftsim_obs::sketch::{QuantileSketch, SketchConfig};
use proptest::prelude::*;

fn sketch_of(values: &[f64], config: SketchConfig) -> QuantileSketch {
    let mut s = QuantileSketch::new(config);
    for &v in values {
        s.record(v);
    }
    s
}

/// Bucket-level equality with a float tolerance on `sum`, whose f64
/// accumulation order differs between merge and direct recording.
fn assert_equivalent(a: &QuantileSketch, b: &QuantileSketch) -> Result<(), String> {
    let (ab, bb): (Vec<_>, Vec<_>) = (a.nonzero_buckets().collect(), b.nonzero_buckets().collect());
    if ab != bb {
        return Err(format!("bucket mismatch: {ab:?} vs {bb:?}"));
    }
    if a.count() != b.count() {
        return Err(format!("count mismatch: {} vs {}", a.count(), b.count()));
    }
    if a.count() > 0
        && (a.min().to_bits() != b.min().to_bits() || a.max().to_bits() != b.max().to_bits())
    {
        return Err("min/max mismatch".to_string());
    }
    let tol = a.sum().abs().max(b.sum().abs()) * 1e-12 + 1e-9;
    if (a.sum() - b.sum()).abs() > tol {
        return Err(format!("sum mismatch: {} vs {}", a.sum(), b.sum()));
    }
    Ok(())
}

/// The exact order statistic matching the sketch's rank definition:
/// rank `max(1, ⌈q·n⌉)`, 1-indexed.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    fn merge_is_associative_and_equals_direct_recording(
        a in proptest::collection::vec(0.01f64..1_000_000.0, 0..200),
        b in proptest::collection::vec(0.01f64..1_000_000.0, 0..200),
        c in proptest::collection::vec(0.01f64..1_000_000.0, 0..200),
    ) {
        let config = SketchConfig::default();
        let (sa, sb, sc) = (
            sketch_of(&a, config),
            sketch_of(&b, config),
            sketch_of(&c, config),
        );

        // (a ∪ b) ∪ c == a ∪ (b ∪ c), bucket-exact (sum up to f64
        // accumulation order).
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert!(assert_equivalent(&left, &right).is_ok(), "{:?}", assert_equivalent(&left, &right));

        // Merge also equals recording every sample into one sketch, so a
        // windowed merge answers quantiles exactly like a direct sketch.
        let mut all: Vec<f64> = Vec::new();
        all.extend_from_slice(&a);
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = sketch_of(&all, config);
        prop_assert!(assert_equivalent(&left, &direct).is_ok(), "{:?}", assert_equivalent(&left, &direct));

        // Commutativity falls out of the same bucket arithmetic.
        let mut ba = sb.clone();
        ba.merge(&sa);
        let mut ab = sa.clone();
        ab.merge(&sb);
        prop_assert!(assert_equivalent(&ab, &ba).is_ok(), "{:?}", assert_equivalent(&ab, &ba));
    }

    fn quantile_error_is_bounded_by_alpha(
        mut values in proptest::collection::vec(0.01f64..1_000_000.0, 1..400),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let config = SketchConfig::default();
        let sketch = sketch_of(&values, config);
        values.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        for q in qs {
            let exact = exact_quantile(&values, q);
            let estimate = sketch.quantile(q);
            let rel = (estimate - exact).abs() / exact;
            prop_assert!(
                rel <= config.alpha + 1e-9,
                "q={q}: estimate {estimate} vs exact {exact} (rel {rel} > α {})",
                config.alpha
            );
        }
        // Count/sum/min/max are exact, not α-approximate.
        prop_assert_eq!(sketch.count(), values.len() as u64);
        let exact_sum: f64 = values.iter().sum();
        prop_assert!((sketch.sum() - exact_sum).abs() <= exact_sum.abs() * 1e-12 + 1e-9);
        prop_assert_eq!(sketch.min().to_bits(), values[0].to_bits());
        prop_assert_eq!(
            sketch.max().to_bits(),
            values[values.len() - 1].to_bits()
        );
    }

    fn count_above_is_exact_at_bucket_resolution(
        values in proptest::collection::vec(0.01f64..1_000_000.0, 0..300),
        threshold in 0.01f64..1_000_000.0,
    ) {
        let config = SketchConfig::default();
        let sketch = sketch_of(&values, config);
        let reported = sketch.count_above(threshold);
        // Exact within one bucket of slack around the threshold: every
        // sample above threshold·γ is counted, none at or below
        // threshold/γ is.
        let gamma = config.gamma();
        let definitely_above = values.iter().filter(|&&v| v > threshold * gamma).count() as u64;
        let possibly_above =
            values.iter().filter(|&&v| v > threshold / gamma).count() as u64;
        prop_assert!(
            reported >= definitely_above && reported <= possibly_above,
            "count_above({threshold}) = {reported}, bounds [{definitely_above}, {possibly_above}]"
        );
    }
}
