//! End-to-end streaming pipeline test: instrumented code → RingSink →
//! drain thread → binary log → tailing LogReader, with the reader observing
//! events *while the writer is still running* (the `--follow` topology).

#![cfg(feature = "enabled")]

use std::sync::Arc;
use std::time::{Duration, Instant};

use ftsim_obs::{BinLogWriter, LogReader, LogRecord, RingBuffer, RingSink};

#[test]
fn live_tail_sees_events_before_clean_shutdown() {
    let dir = std::env::temp_dir().join(format!("ftsim-streaming-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("live.bin");

    let ring = Arc::new(RingBuffer::with_capacity(1024));
    let writer = BinLogWriter::spawn(&path, Arc::clone(&ring), Duration::from_millis(2)).unwrap();
    let sink = RingSink::new(Arc::clone(&ring));

    // First wave of events, via the ObsSink interface the hot paths use.
    use ftsim_obs::ObsSink as _;
    for i in 0..50u64 {
        sink.on_counter("stream.test.progress", i);
    }
    sink.on_gauge("stream.test.qps", 2.5);

    // A tailing reader must see those frames while the writer is still live
    // (no footer yet).
    let mut reader = LogReader::open(&path).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut seen = Vec::new();
    while seen.len() < 51 && Instant::now() < deadline {
        seen.extend(reader.poll().unwrap());
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(seen.len(), 51, "tail saw the first wave mid-run");
    assert!(reader.footer().is_none(), "writer has not shut down");
    assert!(matches!(
        &seen[0],
        LogRecord::Counter { name, delta: 0 } if name == "stream.test.progress"
    ));

    // Second wave, then clean shutdown: the same reader picks up the rest
    // plus the footer.
    sink.on_histogram("stream.test.lat", 1.25);
    let stats = writer.finish().unwrap();
    assert_eq!(stats.events_written, 52);
    assert_eq!(stats.dropped_events, 0);

    let mut rest = Vec::new();
    while reader.footer().is_none() {
        rest.extend(reader.poll().unwrap());
        assert!(Instant::now() < deadline, "footer never arrived");
    }
    assert_eq!(rest.len(), 1);
    let footer = reader.footer().unwrap();
    assert_eq!(footer.events_written, 52);
    assert_eq!(footer.dropped_events, 0);

    std::fs::remove_file(&path).ok();
}
