//! Bench-style guard: the disabled instrumentation path must cost < 2%.
//!
//! Ignored by default because it measures wall-clock; run explicitly with
//! `cargo test -p ftsim-obs --release --test overhead -- --ignored`.

use std::time::Instant;

use ftsim_obs as obs;

/// Arithmetic standing in for one simulator work unit (a kernel-record
/// pricing, ~a few hundred ns) — the granularity at which the hot paths are
/// actually instrumented. Each unit gets one span and one counter add, a
/// *denser* instrumentation ratio than `step`/`cost` use, so passing here
/// bounds the real sweep overhead from above.
fn work(units: u64, instrumented: bool) -> u64 {
    let counter = obs::registry().counter("overhead.test.iterations");
    let mut acc = 0x9e37_79b9_u64;
    for i in 0..units {
        if instrumented {
            let _span = obs::span("overhead", "unit");
            counter.add(1);
        }
        // FNV-ish mixing, opaque to the optimizer.
        for j in 0..256u64 {
            acc ^= i.wrapping_add(j);
            acc = acc.wrapping_mul(0x100_0000_01b3);
            acc = std::hint::black_box(acc);
        }
    }
    acc
}

fn median_time(units: u64, instrumented: bool, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(work(units, instrumented));
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

#[test]
#[ignore = "wall-clock bench guard; run with -- --ignored"]
fn disabled_path_costs_under_two_percent() {
    obs::disable();
    const UNITS: u64 = 100_000;
    const REPS: usize = 9;
    // Warm up both paths.
    work(UNITS / 10, false);
    work(UNITS / 10, true);
    let plain = median_time(UNITS, false, REPS);
    let instrumented = median_time(UNITS, true, REPS);
    let overhead = instrumented / plain - 1.0;
    println!(
        "plain {plain:.4}s instrumented-disabled {instrumented:.4}s overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "disabled-path overhead {:.2}% exceeds 2% budget \
         (plain {plain:.4}s, instrumented {instrumented:.4}s)",
        overhead * 100.0
    );
}
