//! Integration tests: span nesting, cross-thread ordering, and Chrome-JSON
//! schema validity (parsed back with the workspace's vendored `serde_json`).

use std::sync::Mutex;

use ftsim_obs as obs;
use serde_json::Value;

/// The enable flag, span buffers, and registry are process-global, so tests
/// that record must not interleave.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn nesting_is_recorded_depth_first() {
    let _g = test_lock();
    obs::reset();
    obs::enable();
    {
        let _step = obs::span("it", "step");
        {
            let _fwd = obs::span("it", "forward");
            let _k = obs::span("it", "matmul");
        }
        let _bwd = obs::span("it", "backward");
    }
    obs::disable();
    let events: Vec<obs::Event> = obs::drain_events()
        .into_iter()
        .filter(|e| e.cat == "it")
        .collect();
    let mut by_name: Vec<(&str, u32)> = events.iter().map(|e| (e.name.as_str(), e.depth)).collect();
    by_name.sort_unstable();
    assert_eq!(
        by_name,
        vec![("backward", 1), ("forward", 1), ("matmul", 2), ("step", 0)]
    );
    let tree = obs::SpanTree::build(&events);
    assert_eq!(tree.roots.len(), 1);
    let step = &tree.roots["step"];
    assert_eq!(step.children.len(), 2);
    assert_eq!(step.children["forward"].children["matmul"].count, 1);
}

#[test]
fn cross_thread_events_share_one_monotonic_timeline() {
    let _g = test_lock();
    obs::reset();
    obs::enable();
    std::thread::scope(|scope| {
        for worker in 0..4 {
            scope.spawn(move || {
                for i in 0..8 {
                    let _s = obs::span("it-mt", format!("w{worker}-job{i}"));
                    std::hint::black_box(i * worker);
                }
            });
        }
    });
    obs::disable();
    let events: Vec<obs::Event> = obs::drain_events()
        .into_iter()
        .filter(|e| e.cat == "it-mt")
        .collect();
    assert_eq!(events.len(), 32);
    // drain_events orders by start time across all threads.
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    // Per thread, recorded order is also start order and ids are stable.
    let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    assert_eq!(tids.len(), 4);
    for &tid in &tids {
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.tid == tid)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names.len(), 8);
        let prefix = &names[0][..2];
        assert!(names.iter().all(|n| n.starts_with(prefix)));
        for (i, name) in names.iter().enumerate() {
            assert!(name.ends_with(&format!("job{i}")));
        }
    }
}

#[test]
fn chrome_json_is_schema_valid_and_parses_back() {
    let _g = test_lock();
    obs::reset();
    obs::enable();
    {
        let _outer = obs::span("it-json", "epoch");
        let _inner = obs::span("it-json", "chunk \"0\"\n");
    }
    obs::disable();
    let events: Vec<obs::Event> = obs::drain_events()
        .into_iter()
        .filter(|e| e.cat == "it-json")
        .collect();

    let mut trace = obs::ChromeTrace::new();
    trace.name_process(7, "wall clock");
    trace.name_thread(7, events[0].tid, "trainer");
    trace.add_recorded(&events, 7);
    trace.add_complete(8, 0, "simulated kernel", "sim", 0.0, 1.5);

    let doc = serde_json::from_str(&trace.to_json_string()).expect("valid JSON");
    let Some(Value::Array(entries)) = doc.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    // 2 metadata + 2 recorded + 1 explicit events.
    assert_eq!(entries.len(), 5);
    let mut complete = 0;
    for entry in entries {
        let ph = entry.get("ph").expect("ph field");
        assert!(matches!(entry.get("pid"), Some(Value::Int(_))));
        assert!(matches!(entry.get("tid"), Some(Value::Int(_))));
        assert!(matches!(entry.get("name"), Some(Value::String(_))));
        match ph {
            Value::String(s) if s == "X" => {
                complete += 1;
                assert!(matches!(
                    entry.get("ts"),
                    Some(Value::Float(_) | Value::Int(_))
                ));
                let Some(Value::Float(dur)) = entry.get("dur") else {
                    panic!("dur must be a number");
                };
                assert!(*dur >= 0.0);
                assert!(matches!(entry.get("cat"), Some(Value::String(_))));
            }
            Value::String(s) if s == "M" => {
                assert!(entry.get("args").and_then(|a| a.get("name")).is_some());
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }
    assert_eq!(complete, 3);
}

#[test]
fn snapshot_json_parses_back() {
    let _g = test_lock();
    obs::reset();
    obs::enable();
    let registry = obs::registry();
    registry.counter("it.snap.hits").add(2);
    registry.gauge("it.snap.util").set(0.75);
    registry
        .histogram("it.snap.tokens", &[4.0, 16.0])
        .record(9.0);
    obs::disable();
    let snapshot = registry.snapshot();
    let doc = serde_json::from_str(&snapshot.to_json_string()).expect("valid JSON");
    assert_eq!(
        doc.get("counters").and_then(|c| c.get("it.snap.hits")),
        Some(&Value::Int(2))
    );
    assert_eq!(
        doc.get("gauges").and_then(|g| g.get("it.snap.util")),
        Some(&Value::Float(0.75))
    );
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("it.snap.tokens"))
        .expect("histogram exported");
    assert_eq!(
        hist.get("buckets"),
        Some(&Value::Array(vec![
            Value::Int(0),
            Value::Int(1),
            Value::Int(0)
        ]))
    );
}
