//! # ftsim-tensor
//!
//! A small, dependency-light CPU tensor library with reverse-mode automatic
//! differentiation, neural-network building blocks, and 4-bit block
//! quantization.
//!
//! This crate is the numerical substrate for the `ftsim` workspace, which
//! reproduces *"Understanding the Performance and Estimating the Cost of LLM
//! Fine-Tuning"* (IISWC 2024). It powers the genuinely-trained
//! mixture-of-experts models used for the trainability (Fig. 3) and expert
//! load-imbalance (Fig. 11) experiments, and provides the NF4-style
//! quantizer that backs the QLoRA memory accounting in `ftsim-model`.
//!
//! ## Quick example
//!
//! ```
//! use ftsim_tensor::{Tensor, Var};
//!
//! // y = relu(x @ w) ; dL/dw via reverse-mode autodiff.
//! let x = Var::constant(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap());
//! let w = Var::parameter(Tensor::from_rows(&[&[0.5, -1.0], &[0.25, 1.0]]).unwrap());
//! let y = x.matmul(&w).unwrap().relu();
//! let loss = y.mean();
//! loss.backward();
//! assert_eq!(w.grad().unwrap().shape().dims(), &[2, 2]);
//! ```
#![deny(missing_docs)]

pub mod autograd;
pub mod nn;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod quant;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use autograd::Var;
pub use ops::Activation;
pub use pool::{BufferPool, PoolStats};
pub use quant::{QuantError, Quantized4Bit};
pub use shape::Shape;
pub use tensor::{Tensor, TensorError};

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
