//! Dense row-major `f32` tensors.
//!
//! Backing storage is drawn from the thread-local [`crate::pool`] and
//! returned to it on drop, so steady-state workloads that repeatedly build
//! tensors of the same shapes stop hitting the heap after warm-up.

use crate::pool;
use crate::shape::Shape;
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Error type for tensor construction and arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two shapes that must agree did not.
    ShapeMismatch {
        /// Operation being attempted (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand / primary operand.
        lhs: Shape,
        /// Shape of the right-hand / secondary operand.
        rhs: Shape,
    },
    /// The data length does not match the requested shape.
    DataLength {
        /// Requested shape.
        shape: Shape,
        /// Provided element count.
        len: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs} vs {rhs}")
            }
            TensorError::DataLength { shape, len } => {
                write!(f, "data of length {len} cannot fill shape {shape}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

/// A dense, row-major tensor of `f32` values.
///
/// ```
/// use ftsim_tensor::Tensor;
/// let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(t.get2(1, 0), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: pool::take_shaped_copy(self.shape.dims(), &self.data),
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        pool::give_shaped(self.shape.dims(), std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] if `data.len() != shape.numel()`.
    pub fn new(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::DataLength {
                shape,
                len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = pool::take_shaped_zeroed(shape.dims());
        Tensor { shape, data }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = pool::take_shaped_filled(shape.dims(), value);
        Tensor { shape, data }
    }

    /// A rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        let shape = Shape::scalar();
        let data = pool::take_shaped_filled(shape.dims(), value);
        Tensor { shape, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if rows have differing lengths
    /// or no rows are given.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, TensorError> {
        let Some(first) = rows.first() else {
            return Err(TensorError::InvalidArgument(
                "from_rows requires at least one row".into(),
            ));
        };
        let cols = first.len();
        let mut data = pool::take_shaped(&[rows.len(), cols]);
        for row in rows {
            if row.len() != cols {
                return Err(TensorError::InvalidArgument(format!(
                    "ragged rows: expected {cols} columns, found {}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Tensor {
            shape: Shape::matrix(rows.len(), cols),
            data,
        })
    }

    /// A matrix with independent samples from `U(-scale, scale)`.
    pub fn rand_uniform(shape: impl Into<Shape>, scale: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let mut data = pool::take_shaped(shape.dims());
        data.extend((0..shape.numel()).map(|_| rng.gen_range(-scale..=scale)));
        Tensor { shape, data }
    }

    /// A matrix with approximately normal entries (`mean = 0`, `std = std`),
    /// using a 12-uniform-sum approximation (adequate for initialization).
    pub fn rand_normal(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let mut data = pool::take_shaped(shape.dims());
        data.extend((0..shape.numel()).map(|_| {
            let s: f32 = (0..12).map(|_| rng.gen_range(0.0..1.0f32)).sum();
            (s - 6.0) * std
        }));
        Tensor { shape, data }
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(Shape::matrix(n, n));
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data (the storage leaves
    /// the pool's custody along with it).
    pub fn into_data(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the index is out of bounds.
    pub fn get2(&self, row: usize, col: usize) -> f32 {
        let (r, c) = self.shape.as_matrix().expect("get2 requires a matrix");
        assert!(
            row < r && col < c,
            "index ({row},{col}) out of bounds {r}x{c}"
        );
        self.data[row * c + col]
    }

    /// Sets the element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the index is out of bounds.
    pub fn set2(&mut self, row: usize, col: usize, value: f32) {
        let (r, c) = self.shape.as_matrix().expect("set2 requires a matrix");
        assert!(
            row < r && col < c,
            "index ({row},{col}) out of bounds {r}x{c}"
        );
        self.data[row * c + col] = value;
    }

    /// Borrow of row `i` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the row is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        let (r, c) = self.shape.as_matrix().expect("row requires a matrix");
        assert!(i < r, "row {i} out of bounds for {r} rows");
        &self.data[i * c..(i + 1) * c]
    }

    /// Returns the single value of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = pool::take_shaped(self.shape.dims());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// Elementwise binary operation with shape checking.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let mut data = pool::take_shaped(self.shape.dims());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise in-place binary operation with shape checking.
    ///
    /// Bit-identical to the allocating [`Tensor::zip`] followed by replacing
    /// `self`, without the intermediate tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_assign(
        &mut self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        self.data
            .iter_mut()
            .zip(&other.data)
            .for_each(|(a, &b)| *a = f(*a, b));
        Ok(())
    }

    /// In-place elementwise addition (`self += other`), bit-identical to
    /// [`Tensor::add`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.zip_assign(other, "add", |a, b| a + b)
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Matrix transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the tensor is not rank-2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        let (r, c) = self.shape.as_matrix().ok_or_else(|| {
            TensorError::InvalidArgument(format!("transpose requires a matrix, got {}", self.shape))
        })?;
        let mut out = Tensor::zeros(Shape::matrix(c, r));
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Matrix product `self @ rhs`.
    ///
    /// Uses the register-tiled microkernel (6×8 accumulator tiles over
    /// cache-sized K panels), row-partitioned across scoped threads for
    /// large products (see [`crate::parallel`]; thread count from
    /// `FTSIM_THREADS`). Each output element accumulates in the same
    /// ascending-inner-index order at any tile shape and thread count, so
    /// results are bit-identical to the serial naive oracle.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when inner dimensions disagree
    /// or either operand is not rank-2.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let Some(out_shape) = self.shape.matmul(&rhs.shape) else {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape.clone(),
                rhs: rhs.shape.clone(),
            });
        };
        let (m, k) = self.shape.as_matrix().expect("checked above");
        let (_, n) = rhs.shape.as_matrix().expect("checked above");
        let mut out = Tensor::zeros(out_shape);
        crate::parallel::matmul_into(&self.data, &rhs.data, &mut out.data, m, k, n);
        Ok(out)
    }

    /// Frobenius norm (`sqrt` of the sum of squares).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// `true` if every pair of elements differs by at most `tol`.
    ///
    /// Returns `false` when shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor{} {:?}",
            self.shape,
            &self.data[..self.data.len().min(8)]
        )?;
        if self.data.len() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_rejects_wrong_length() {
        let err = Tensor::new([2, 2], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::DataLength { .. }));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Tensor::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidArgument(_)));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let i = Tensor::eye(3);
        assert!(a.matmul(&i).unwrap().allclose(&a, 1e-6));
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.allclose(&expect, 1e-6));
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform([5, 3], 1.0, &mut rng);
        let back = a.transpose().unwrap().transpose().unwrap();
        assert!(a.allclose(&back, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Tensor::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn add_assign_matches_add_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform([4, 5], 2.0, &mut rng);
        let b = Tensor::rand_uniform([4, 5], 2.0, &mut rng);
        let expect = a.add(&b).unwrap();
        let mut got = a.clone();
        got.add_assign(&b).unwrap();
        assert_eq!(got, expect);
        assert!(matches!(
            got.add_assign(&Tensor::zeros([5, 4])),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn dropped_tensor_storage_is_recycled() {
        // Warm up: the first tensor of this shape may allocate.
        drop(Tensor::zeros([13, 17]));
        let before = crate::pool::stats();
        drop(Tensor::zeros([13, 17]));
        let after = crate::pool::stats();
        assert_eq!(
            after.fresh_allocs, before.fresh_allocs,
            "same-shape rebuild should reuse pooled storage"
        );
        assert!(after.reuses > before.reuses);
    }

    #[test]
    fn stats_helpers() {
        let t = Tensor::from_rows(&[&[1.0, -2.0, 4.0]]).unwrap();
        assert_eq!(t.sum(), 3.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), Some(4.0));
        assert!((t.frobenius_norm() - (21.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn rand_normal_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::rand_normal([100, 100], 1.0, &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / t.numel() as f32;
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::rand_uniform([rows, cols], 2.0, &mut rng);
            let id = Tensor::eye(cols);
            prop_assert!(a.matmul(&id).unwrap().allclose(&a, 1e-4));
        }

        #[test]
        fn prop_transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::rand_uniform([rows, cols], 3.0, &mut rng);
            prop_assert!(a.transpose().unwrap().transpose().unwrap().allclose(&a, 0.0));
        }

        #[test]
        fn prop_matmul_transpose_identity((m, k, n) in (1usize..5, 1usize..5, 1usize..5), seed in 0u64..500) {
            // (A B)^T == B^T A^T
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::rand_uniform([m, k], 1.0, &mut rng);
            let b = Tensor::rand_uniform([k, n], 1.0, &mut rng);
            let lhs = a.matmul(&b).unwrap().transpose().unwrap();
            let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
            prop_assert!(lhs.allclose(&rhs, 1e-4));
        }

        #[test]
        fn prop_scale_distributes_over_add(n in 1usize..20, s in -3.0f32..3.0, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::rand_uniform([1, n], 1.0, &mut rng);
            let b = Tensor::rand_uniform([1, n], 1.0, &mut rng);
            let lhs = a.add(&b).unwrap().scale(s);
            let rhs = a.scale(s).add(&b.scale(s)).unwrap();
            prop_assert!(lhs.allclose(&rhs, 1e-4));
        }
    }
}
