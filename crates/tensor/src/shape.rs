//! Tensor shapes and shape algebra.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], row-major.
///
/// A `Shape` is an ordered list of dimension sizes. Most operations in this
/// crate are rank-2 (matrices), but `Shape` supports arbitrary rank so that
/// callers can carry batch dimensions through bookkeeping code.
///
/// ```
/// use ftsim_tensor::Shape;
/// let s = Shape::matrix(3, 4);
/// assert_eq!(s.numel(), 12);
/// assert_eq!(s.dims(), &[3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from raw dimensions.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Creates a rank-1 shape.
    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    /// Creates a rank-2 shape with `rows` rows and `cols` columns.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// A scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (tensor rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `(rows, cols)` if this is a rank-2 shape.
    pub fn as_matrix(&self) -> Option<(usize, usize)> {
        match self.0.as_slice() {
            [r, c] => Some((*r, *c)),
            _ => None,
        }
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use ftsim_tensor::Shape;
    /// assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Shape of the result of `self @ rhs` matrix multiplication, if valid.
    pub fn matmul(&self, rhs: &Shape) -> Option<Shape> {
        let (m, k1) = self.as_matrix()?;
        let (k2, n) = rhs.as_matrix()?;
        (k1 == k2).then(|| Shape::matrix(m, n))
    }

    /// Shape with the two trailing dimensions swapped (matrix transpose).
    pub fn transposed(&self) -> Option<Shape> {
        let (r, c) = self.as_matrix()?;
        Some(Shape::matrix(c, r))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_roundtrip() {
        let s = Shape::matrix(5, 7);
        assert_eq!(s.as_matrix(), Some((5, 7)));
        assert_eq!(s.rank(), 2);
        assert_eq!(s.numel(), 35);
    }

    #[test]
    fn scalar_numel_is_one() {
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new([4, 5]).strides(), vec![5, 1]);
        assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::vector(9).strides(), vec![1]);
    }

    #[test]
    fn matmul_shape_rules() {
        let a = Shape::matrix(2, 3);
        let b = Shape::matrix(3, 4);
        assert_eq!(a.matmul(&b), Some(Shape::matrix(2, 4)));
        assert_eq!(b.matmul(&a), None);
        assert_eq!(a.matmul(&Shape::vector(3)), None);
    }

    #[test]
    fn transpose_swaps_dims() {
        assert_eq!(Shape::matrix(2, 9).transposed(), Some(Shape::matrix(9, 2)));
        assert_eq!(Shape::vector(3).transposed(), None);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
