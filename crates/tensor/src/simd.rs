//! Runtime-dispatched AVX2 lane kernels behind the microkernel family.
//!
//! The scalar kernels in [`crate::parallel`] are written so the
//! autovectorizer emits fixed-width FMA loops, but on the baseline x86-64
//! target that means 4-lane SSE. This module supplies explicit 8-lane
//! `std::arch` AVX2 bodies for the hot inner loops — the `MR`×`NR` matmul
//! register tile, the bias-add epilogue, and the lane-parallel sweeps of the
//! fused backward epilogue — selected by a one-time runtime CPUID check.
//!
//! ## Dispatch rules
//!
//! * [`active`] caches its answer in a process-global atomic after the first
//!   call: the SIMD path is taken iff the host CPU reports **both** `avx2`
//!   and `fma` (via `is_x86_feature_detected!`) and the `FTSIM_NO_SIMD`
//!   escape hatch is not set. Everything else — non-x86 targets, older
//!   CPUs, the env override — falls back to the scalar kernels, which are
//!   always compiled and always correct.
//! * [`force`] overrides the cached decision for tests and benches, so the
//!   scalar and SIMD bodies can be timed and bit-compared from one process.
//!
//! ## Bit-identity
//!
//! Every function here is **bit-identical** to its scalar counterpart, not
//! merely close: the accumulation-order contract (DESIGN.md "Kernel
//! contracts") promises identical results across kernels, and these bodies
//! keep it by using `_mm256_mul_ps` + `_mm256_add_ps` — two roundings per
//! lane, exactly like the scalar `acc += a * b` — and **never**
//! `_mm256_fmadd_ps`, whose single rounding would diverge in the last ulp.
//! (`fma` is still part of the detection predicate: it delimits the
//! hardware generation the 16-register tile is scheduled for, even though
//! contracted instructions are deliberately not emitted.) The lhs zero-skip
//! fires on the broadcast scalar, uniformly across lanes, exactly as the
//! scalar kernel skips it per element.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable that disables the SIMD paths when set to anything
/// other than `0` or the empty string — the always-available escape hatch
/// for debugging and for A/B runs on the same machine.
pub const NO_SIMD_ENV: &str = "FTSIM_NO_SIMD";

/// Dispatch cache states.
const UNKNOWN: u8 = 0;
const SCALAR: u8 = 1;
const AVX2: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);

/// Whether the AVX2 kernel bodies will be used for the next kernel call.
///
/// First call probes the CPU and the `FTSIM_NO_SIMD` environment variable
/// and caches the verdict; later calls are a single relaxed atomic load
/// (the kernels hoist even that out of their loops).
#[inline]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        UNKNOWN => {
            let verdict = host_supported() && !no_simd_requested();
            STATE.store(if verdict { AVX2 } else { SCALAR }, Ordering::Relaxed);
            verdict
        }
        state => state == AVX2,
    }
}

/// Raw capability probe: does this CPU support the AVX2 kernel bodies?
///
/// Ignores `FTSIM_NO_SIMD` and any [`force`] override — this is the value
/// perf artifacts record so numbers are comparable across machines.
pub fn host_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether `FTSIM_NO_SIMD` requests the scalar fallback.
pub fn no_simd_requested() -> bool {
    std::env::var_os(NO_SIMD_ENV).is_some_and(|v| !v.is_empty() && v != "0")
}

/// Test/bench hook overriding the dispatch decision: `Some(false)` forces
/// the scalar kernels, `Some(true)` requests the AVX2 kernels (downgraded
/// to scalar when the host lacks them, so forcing is always safe), and
/// `None` restores the runtime-detected default.
///
/// Because every kernel is bit-identical across the two bodies, concurrent
/// tests racing on this override still compute identical results — the
/// override changes *which* instructions run, never *what* they produce.
pub fn force(mode: Option<bool>) {
    let state = match mode {
        None => UNKNOWN,
        Some(false) => SCALAR,
        Some(true) if host_supported() => AVX2,
        Some(true) => SCALAR,
    };
    STATE.store(state, Ordering::Relaxed);
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{add_assign, axpy, band_tiles};

#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::parallel::{MR, NR};
    use core::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// AVX2 body of `parallel::band_tiles`: one `MR`-row band across the
    /// `NR`-aligned column span of one K panel, register accumulators only.
    ///
    /// Geometry: the main loop carries a 6×16 tile (two `ymm` accumulators
    /// per row — 12 of the 16 vector registers — plus two rhs lane loads
    /// and one broadcast), then a 6×8 tile for a trailing odd `NR` strip;
    /// the caller handles the scalar column tail past `n_main` and row
    /// remainders, exactly as for the scalar body. Tile width does not
    /// affect results: each output element owns one accumulator lane and
    /// still sums ascending-`p` products.
    ///
    /// # Safety
    ///
    /// Caller must guarantee AVX2 support (see [`super::active`]) and the
    /// same slice geometry the scalar `band_tiles` requires: `out_rows`
    /// holds at least `i + MR` rows of width `n`, every `lhs_panels[r]` has
    /// equal length ≤ the K panel, and `n_main ≤ n` is a multiple of `NR`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn band_tiles(
        zero_skip: bool,
        lhs_panels: &[&[f32]; MR],
        rhs: &[f32],
        out_rows: &mut [f32],
        i: usize,
        p0: usize,
        n_main: usize,
        n: usize,
    ) {
        // SAFETY: forwarded contract; monomorphized so the dense path is
        // branch-free in the inner loop, mirroring the scalar dispatch.
        unsafe {
            if zero_skip {
                band_tiles_impl::<true>(lhs_panels, rhs, out_rows, i, p0, n_main, n);
            } else {
                band_tiles_impl::<false>(lhs_panels, rhs, out_rows, i, p0, n_main, n);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn band_tiles_impl<const ZERO_SKIP: bool>(
        lhs_panels: &[&[f32]; MR],
        rhs: &[f32],
        out_rows: &mut [f32],
        i: usize,
        p0: usize,
        n_main: usize,
        n: usize,
    ) {
        let panel_len = lhs_panels[0].len();
        let out = out_rows.as_mut_ptr();
        let rhs_ptr = rhs.as_ptr();
        let mut j0 = 0;
        // SAFETY: all indices stay within the bounds the caller guarantees;
        // they are the same indices the scalar body computes through slices.
        unsafe {
            while j0 + 2 * NR <= n_main {
                let mut acc0 = [_mm256_setzero_ps(); MR];
                let mut acc1 = [_mm256_setzero_ps(); MR];
                for (r, (a0, a1)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
                    let base = (i + r) * n + j0;
                    *a0 = _mm256_loadu_ps(out.add(base));
                    *a1 = _mm256_loadu_ps(out.add(base + NR));
                }
                for off in 0..panel_len {
                    let p = p0 + off;
                    let lane0 = _mm256_loadu_ps(rhs_ptr.add(p * n + j0));
                    let lane1 = _mm256_loadu_ps(rhs_ptr.add(p * n + j0 + NR));
                    for (r, (a0, a1)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
                        let a = *lhs_panels.get_unchecked(r).get_unchecked(off);
                        if ZERO_SKIP && a == 0.0 {
                            continue;
                        }
                        // mul + add, not fmadd: the contract rounds the
                        // product before the sum (see module docs).
                        let av = _mm256_set1_ps(a);
                        *a0 = _mm256_add_ps(*a0, _mm256_mul_ps(av, lane0));
                        *a1 = _mm256_add_ps(*a1, _mm256_mul_ps(av, lane1));
                    }
                }
                for (r, (a0, a1)) in acc0.iter().zip(acc1.iter()).enumerate() {
                    let base = (i + r) * n + j0;
                    _mm256_storeu_ps(out.add(base), *a0);
                    _mm256_storeu_ps(out.add(base + NR), *a1);
                }
                j0 += 2 * NR;
            }
            while j0 < n_main {
                let mut acc = [_mm256_setzero_ps(); MR];
                for (r, a0) in acc.iter_mut().enumerate() {
                    *a0 = _mm256_loadu_ps(out.add((i + r) * n + j0));
                }
                for off in 0..panel_len {
                    let p = p0 + off;
                    let lane = _mm256_loadu_ps(rhs_ptr.add(p * n + j0));
                    for (r, a0) in acc.iter_mut().enumerate() {
                        let a = *lhs_panels.get_unchecked(r).get_unchecked(off);
                        if ZERO_SKIP && a == 0.0 {
                            continue;
                        }
                        *a0 = _mm256_add_ps(*a0, _mm256_mul_ps(_mm256_set1_ps(a), lane));
                    }
                }
                for (r, a0) in acc.iter().enumerate() {
                    _mm256_storeu_ps(out.add((i + r) * n + j0), *a0);
                }
                j0 += NR;
            }
        }
    }

    /// AVX2 `dst[j] += src[j]`: lane-parallel, so per-element order is
    /// untouched — bit-identical to the scalar loop for any length.
    ///
    /// # Safety
    ///
    /// Caller must guarantee AVX2 support and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len());
        let len = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut j = 0;
        // SAFETY: j + NR <= len in the vector loop; the tail is scalar.
        unsafe {
            while j + NR <= len {
                let v = _mm256_add_ps(_mm256_loadu_ps(d.add(j)), _mm256_loadu_ps(s.add(j)));
                _mm256_storeu_ps(d.add(j), v);
                j += NR;
            }
            while j < len {
                *d.add(j) += *s.add(j);
                j += 1;
            }
        }
    }

    /// AVX2 `dst[j] += a * src[j]` with mul-then-add rounding (no fmadd):
    /// bit-identical to the scalar loop for any length.
    ///
    /// # Safety
    ///
    /// Caller must guarantee AVX2 support and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn axpy(dst: &mut [f32], a: f32, src: &[f32]) {
        debug_assert_eq!(dst.len(), src.len());
        let len = dst.len();
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let av = _mm256_set1_ps(a);
        let mut j = 0;
        // SAFETY: j + NR <= len in the vector loop; the tail is scalar.
        unsafe {
            while j + NR <= len {
                let prod = _mm256_mul_ps(av, _mm256_loadu_ps(s.add(j)));
                _mm256_storeu_ps(d.add(j), _mm256_add_ps(_mm256_loadu_ps(d.add(j)), prod));
                j += NR;
            }
            while j < len {
                *d.add(j) += a * *s.add(j);
                j += 1;
            }
        }
    }
}

/// Non-x86 stubs: [`active`] is always `false` off x86-64, so these are
/// unreachable; they exist so call sites compile on every target.
#[cfg(not(target_arch = "x86_64"))]
mod fallback {
    use crate::parallel::MR;

    /// # Safety
    ///
    /// Never called: dispatch always selects the scalar kernels off x86-64.
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn band_tiles(
        _zero_skip: bool,
        _lhs_panels: &[&[f32]; MR],
        _rhs: &[f32],
        _out_rows: &mut [f32],
        _i: usize,
        _p0: usize,
        _n_main: usize,
        _n: usize,
    ) {
        unreachable!("SIMD dispatch is never active off x86-64");
    }

    /// # Safety
    ///
    /// Never called: dispatch always selects the scalar kernels off x86-64.
    pub(crate) unsafe fn add_assign(_dst: &mut [f32], _src: &[f32]) {
        unreachable!("SIMD dispatch is never active off x86-64");
    }

    /// # Safety
    ///
    /// Never called: dispatch always selects the scalar kernels off x86-64.
    pub(crate) unsafe fn axpy(_dst: &mut [f32], _a: f32, _src: &[f32]) {
        unreachable!("SIMD dispatch is never active off x86-64");
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) use fallback::{add_assign, axpy, band_tiles};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_controls_dispatch_and_restores_detection() {
        force(Some(false));
        assert!(!active(), "forced-scalar must report inactive");
        force(Some(true));
        assert_eq!(
            active(),
            host_supported(),
            "forced-SIMD downgrades to scalar only when the host lacks AVX2"
        );
        force(None);
        // Redetection: consistent with the host and the env escape hatch.
        assert_eq!(active(), host_supported() && !no_simd_requested());
    }

    #[test]
    fn env_escape_hatch_parses_conventionally() {
        // The env itself cannot be mutated safely in-process; exercise the
        // parse contract indirectly through the documented convention.
        let truthy = |v: &str| !v.is_empty() && v != "0";
        assert!(truthy("1"));
        assert!(truthy("yes"));
        assert!(!truthy("0"));
        assert!(!truthy(""));
    }
}
