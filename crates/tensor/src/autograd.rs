//! Reverse-mode automatic differentiation.
//!
//! [`Var`] wraps a [`Tensor`] in a dynamically-built computation graph.
//! Calling [`Var::backward`] on a scalar result propagates gradients to every
//! reachable [`Var::parameter`] leaf. This is the engine behind the
//! genuinely-trained mixture-of-experts models used for the paper's
//! trainability (Fig. 3) and load-imbalance (Fig. 11) experiments.

use crate::ops;
use crate::ops::Activation;
use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;

type BackwardFn = Box<dyn Fn(&Tensor)>;

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

/// Maximum reclaimed graph nodes kept per thread; beyond this, dead nodes
/// are simply freed. Sized well above the node count of one bench-scale MoE
/// training step so a whole step's graph recycles.
const ARENA_CAP: usize = 4096;

/// Snapshot of the node-arena event counters (see [`arena_stats`]).
///
/// The arena is to graph *nodes* what [`crate::pool`] is to tensor
/// *storage*: with it enabled (the default), a steady-state training step
/// performs zero `Rc<RefCell<Node>>` heap allocations — every node handle
/// is popped from the free list refilled when the previous step's graph was
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Nodes created with a fresh heap allocation (arena misses).
    pub fresh_allocs: u64,
    /// Nodes served from the arena free list (arena hits).
    pub reuses: u64,
    /// Dead nodes reclaimed onto the free list.
    pub returns: u64,
    /// Dead nodes dropped because the free list was full.
    pub discards: u64,
}

impl ArenaStats {
    /// Fresh node allocations that happened between `earlier` and `self`.
    pub fn allocs_since(&self, earlier: &ArenaStats) -> u64 {
        self.fresh_allocs - earlier.fresh_allocs
    }
}

thread_local! {
    /// Free list of dead graph nodes awaiting reuse.
    static NODE_ARENA: RefCell<Vec<Rc<RefCell<Node>>>> = const { RefCell::new(Vec::new()) };
    static ARENA_ENABLED: Cell<bool> = const { Cell::new(true) };
    static ARENA_COUNTS: Cell<ArenaStats> = const { Cell::new(ArenaStats {
        fresh_allocs: 0,
        reuses: 0,
        returns: 0,
        discards: 0,
    }) };
}

fn arena_bump(f: impl FnOnce(&mut ArenaStats)) {
    let _ = ARENA_COUNTS.try_with(|c| {
        let mut s = c.get();
        f(&mut s);
        c.set(s);
    });
}

/// Enables or disables the node arena on the current thread. While
/// disabled, every graph node is a fresh `Rc` allocation and dead nodes are
/// freed instead of reclaimed — the configuration used as the
/// "serial-naive" baseline in `repro bench_tensor`. Disabling does not
/// drop already-reclaimed nodes; call [`arena_clear`] for that.
pub fn set_arena_enabled(enabled: bool) {
    let _ = ARENA_ENABLED.try_with(|e| e.set(enabled));
}

/// Whether the node arena is enabled on the current thread.
pub fn arena_enabled() -> bool {
    ARENA_ENABLED.try_with(Cell::get).unwrap_or(false)
}

/// Counter snapshot for the current thread's node arena.
pub fn arena_stats() -> ArenaStats {
    ARENA_COUNTS.try_with(Cell::get).unwrap_or_default()
}

/// Drops every node held by the current thread's arena free list
/// (counters are preserved).
pub fn arena_clear() {
    let _ = NODE_ARENA.try_with(|a| a.borrow_mut().clear());
}

/// Number of dead nodes currently held by the arena free list.
pub fn arena_resident() -> usize {
    NODE_ARENA.try_with(|a| a.borrow().len()).unwrap_or(0)
}

/// A differentiable tensor variable.
///
/// `Var` is a cheap handle (reference-counted) onto a node of the computation
/// graph. Cloning a `Var` aliases the same node.
///
/// ```
/// use ftsim_tensor::{Tensor, Var};
/// let w = Var::parameter(Tensor::scalar(3.0));
/// let loss = w.mul(&w).unwrap().mean(); // w^2
/// loss.backward();
/// assert!((w.grad().unwrap().item() - 6.0).abs() < 1e-5);
/// ```
#[derive(Clone)]
pub struct Var {
    node: Rc<RefCell<Node>>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.node.borrow();
        f.debug_struct("Var")
            .field("shape", n.value.shape())
            .field("requires_grad", &n.requires_grad)
            .finish()
    }
}

impl Drop for Var {
    /// Arena reclamation hook: when the *last* handle to a node drops, the
    /// node's gradient goes back to the buffer pool, its parent edges and
    /// closure drop — which may recursively reclaim ancestors — and the
    /// now-inert `Rc<RefCell<Node>>` is parked on the thread-local free
    /// list for `Var::from_node` to reuse. The value tensor stays in
    /// place (swapping in a placeholder would itself allocate a shape);
    /// it is released to the pool when the parked node is overwritten at
    /// reuse time, one step later in steady state.
    fn drop(&mut self) {
        if Rc::strong_count(&self.node) != 1 || !arena_enabled() {
            return;
        }
        // A node being overwritten for reuse holds its borrow while its old
        // contents drop; those contents have no edges, but stay defensive:
        // never reclaim through an active borrow.
        let Ok(mut n) = self.node.try_borrow_mut() else {
            return;
        };
        let parents = std::mem::take(&mut n.parents);
        let backward = n.backward.take();
        n.grad = None;
        n.requires_grad = false;
        drop(n);
        // Dropping the edges may cascade into further reclamations; the
        // borrow above is released first so those run against other nodes.
        drop(parents);
        drop(backward);
        let _ = NODE_ARENA.try_with(|a| {
            let mut arena = a.borrow_mut();
            if arena.len() < ARENA_CAP {
                arena.push(Rc::clone(&self.node));
                drop(arena);
                arena_bump(|s| s.returns += 1);
            } else {
                drop(arena);
                arena_bump(|s| s.discards += 1);
            }
        });
    }
}

impl Var {
    fn from_node(node: Node) -> Var {
        if arena_enabled() {
            let reused = NODE_ARENA.try_with(|a| a.borrow_mut().pop()).ok().flatten();
            if let Some(rc) = reused {
                arena_bump(|s| s.reuses += 1);
                *rc.borrow_mut() = node;
                return Var { node: rc };
            }
        }
        arena_bump(|s| s.fresh_allocs += 1);
        Var {
            node: Rc::new(RefCell::new(node)),
        }
    }

    /// Wraps a tensor that does **not** receive gradients (input data).
    pub fn constant(value: Tensor) -> Var {
        Var::from_node(Node {
            value,
            grad: None,
            requires_grad: false,
            parents: Vec::new(),
            backward: None,
        })
    }

    /// Wraps a trainable tensor that accumulates gradients.
    pub fn parameter(value: Tensor) -> Var {
        Var::from_node(Node {
            value,
            grad: None,
            requires_grad: true,
            parents: Vec::new(),
            backward: None,
        })
    }

    /// A clone of the current value.
    ///
    /// Prefer [`Var::with_value`] when a borrow suffices — it avoids copying
    /// the tensor.
    pub fn value(&self) -> Tensor {
        self.node.borrow().value.clone()
    }

    /// Calls `f` with a borrow of the current value, without cloning.
    ///
    /// # Panics
    ///
    /// Panics if `f` re-enters this variable mutably (e.g. via
    /// [`Var::update_value`] on the same node).
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.node.borrow().value)
    }

    /// The shape of the current value.
    pub fn shape(&self) -> Shape {
        self.node.borrow().value.shape().clone()
    }

    /// A clone of the accumulated gradient, if any.
    ///
    /// Prefer [`Var::with_grad`] when a borrow suffices.
    pub fn grad(&self) -> Option<Tensor> {
        self.node.borrow().grad.clone()
    }

    /// Calls `f` with a borrow of the accumulated gradient, without cloning.
    ///
    /// # Panics
    ///
    /// Panics if `f` re-enters this variable mutably.
    pub fn with_grad<R>(&self, f: impl FnOnce(Option<&Tensor>) -> R) -> R {
        f(self.node.borrow().grad.as_ref())
    }

    /// Whether this variable participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.node.borrow().requires_grad
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.node.borrow_mut().grad = None;
    }

    /// Removes and returns the accumulated gradient, leaving `None` behind.
    ///
    /// This is the hand-off point of the data-parallel training step: a
    /// microbatch worker takes the gradients off its thread-local replica
    /// (as plain [`Tensor`]s, which are `Send`) so the main thread can
    /// tree-reduce them across workers.
    pub fn take_grad(&self) -> Option<Tensor> {
        self.node.borrow_mut().grad.take()
    }

    /// Adds `g` into the accumulated gradient, creating it if absent — the
    /// same element-wise accumulation the backward pass performs, so
    /// seeding reduced worker gradients here is bit-identical to having run
    /// the backward pass on this variable directly. No-op when the variable
    /// does not require gradients.
    pub fn seed_grad(&self, g: Tensor) {
        self.accumulate_grad_owned(g);
    }

    /// Replaces the value in place (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if the new value's shape differs from the current one.
    pub fn set_value(&self, value: Tensor) {
        let mut n = self.node.borrow_mut();
        assert_eq!(
            n.value.shape(),
            value.shape(),
            "set_value must preserve shape"
        );
        n.value = value;
    }

    /// Applies `f` to the value in place (used by optimizers).
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.node.borrow_mut().value);
    }

    /// If a gradient is present, calls `f` with the value (mutable) and the
    /// gradient under a single borrow, then clears the gradient. Returns
    /// whether a gradient was present.
    ///
    /// This is the optimizer entry point: unlike `grad()` + `update_value()`
    /// it neither clones the gradient nor borrows the node twice.
    pub fn update_with_grad(&self, f: impl FnOnce(&mut Tensor, &Tensor)) -> bool {
        let mut n = self.node.borrow_mut();
        let Some(g) = n.grad.take() else {
            return false;
        };
        f(&mut n.value, &g);
        true
    }

    fn accumulate_grad(&self, g: &Tensor) {
        let mut n = self.node.borrow_mut();
        if !n.requires_grad {
            return;
        }
        match &mut n.grad {
            // In place: bit-identical to allocate-and-add (`existing.add(g)`)
            // without materializing the sum in a fresh buffer.
            Some(existing) => existing
                .add_assign(g)
                .expect("gradient shape must match value shape"),
            None => n.grad = Some(g.clone()),
        }
    }

    /// [`Var::accumulate_grad`] taking ownership: the first accumulation
    /// stores `g` directly instead of cloning it. Bit-identical (a clone is
    /// a bitwise copy) with one fewer pool round-trip.
    fn accumulate_grad_owned(&self, g: Tensor) {
        let mut n = self.node.borrow_mut();
        if !n.requires_grad {
            return;
        }
        match &mut n.grad {
            Some(existing) => existing
                .add_assign(&g)
                .expect("gradient shape must match value shape"),
            None => n.grad = Some(g),
        }
    }

    fn unary(&self, value: Tensor, backward: impl Fn(&Var, &Tensor) + 'static) -> Var {
        let parent = self.clone();
        let requires = parent.requires_grad();
        let p2 = parent.clone();
        Var::from_node(Node {
            value,
            grad: None,
            requires_grad: requires,
            parents: vec![parent],
            backward: if requires {
                Some(Box::new(move |up| backward(&p2, up)))
            } else {
                None
            },
        })
    }

    fn binary(
        a: &Var,
        b: &Var,
        value: Tensor,
        backward: impl Fn(&Var, &Var, &Tensor) + 'static,
    ) -> Var {
        let requires = a.requires_grad() || b.requires_grad();
        let (a2, b2) = (a.clone(), b.clone());
        Var::from_node(Node {
            value,
            grad: None,
            requires_grad: requires,
            parents: vec![a.clone(), b.clone()],
            backward: if requires {
                Some(Box::new(move |up| backward(&a2, &b2, up)))
            } else {
                None
            },
        })
    }

    /// Matrix product `self @ rhs`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the operands are not conforming matrices.
    pub fn matmul(&self, rhs: &Var) -> Result<Var, TensorError> {
        let value = self.node.borrow().value.matmul(&rhs.node.borrow().value)?;
        Ok(Var::binary(self, rhs, value, move |a, b, up| {
            // Operand values are borrowed at backward time instead of cloned
            // at record time; gradients are materialized before the borrow
            // on the other operand is released, then accumulated.
            if a.requires_grad() {
                let da = b.with_value(|bv| {
                    up.matmul(&bv.transpose().expect("matrix"))
                        .expect("conforming")
                });
                a.accumulate_grad(&da);
            }
            if b.requires_grad() {
                let db = a.with_value(|av| {
                    av.transpose()
                        .expect("matrix")
                        .matmul(up)
                        .expect("conforming")
                });
                b.accumulate_grad(&db);
            }
        }))
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn add(&self, rhs: &Var) -> Result<Var, TensorError> {
        let value = self.node.borrow().value.add(&rhs.node.borrow().value)?;
        Ok(Var::binary(self, rhs, value, |a, b, up| {
            a.accumulate_grad(up);
            b.accumulate_grad(up);
        }))
    }

    /// Adds a `[1, n]` bias row to every row of an `[m, n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the column counts differ.
    pub fn add_row(&self, bias: &Var) -> Result<Var, TensorError> {
        let x = self.value();
        let b = bias.value();
        let (m, n) = x
            .shape()
            .as_matrix()
            .ok_or_else(|| TensorError::InvalidArgument("add_row requires a matrix".into()))?;
        let (br, bn) = b
            .shape()
            .as_matrix()
            .ok_or_else(|| TensorError::InvalidArgument("add_row bias must be [1, n]".into()))?;
        if br != 1 || bn != n {
            return Err(TensorError::ShapeMismatch {
                op: "add_row",
                lhs: x.shape().clone(),
                rhs: b.shape().clone(),
            });
        }
        let mut out = Tensor::zeros(Shape::matrix(m, n));
        for r in 0..m {
            for c in 0..n {
                out.set2(r, c, x.get2(r, c) + b.get2(0, c));
            }
        }
        Ok(Var::binary(self, bias, out, move |a, bv, up| {
            a.accumulate_grad(up);
            if bv.requires_grad() {
                let (m, n) = up.shape().as_matrix().expect("matrix");
                let mut db = Tensor::zeros(Shape::matrix(1, n));
                for r in 0..m {
                    for c in 0..n {
                        db.set2(0, c, db.get2(0, c) + up.get2(r, c));
                    }
                }
                bv.accumulate_grad(&db);
            }
        }))
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn mul(&self, rhs: &Var) -> Result<Var, TensorError> {
        let value = self.node.borrow().value.mul(&rhs.node.borrow().value)?;
        Ok(Var::binary(self, rhs, value, move |a, b, up| {
            if a.requires_grad() {
                let da = b.with_value(|bv| up.mul(bv).expect("same shape"));
                a.accumulate_grad(&da);
            }
            if b.requires_grad() {
                let db = a.with_value(|av| up.mul(av).expect("same shape"));
                b.accumulate_grad(&db);
            }
        }))
    }

    /// Multiplies each row `r` of an `[m, n]` matrix by `col[r, 0]` of an
    /// `[m, 1]` column — the expert-output weighting step of an MoE layer
    /// (`current_hidden_states * router_weights` in the paper's Fig. 12).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `col` is not `[m, 1]`.
    pub fn mul_col(&self, col: &Var) -> Result<Var, TensorError> {
        let x = self.value();
        let c = col.value();
        let (m, n) = x
            .shape()
            .as_matrix()
            .ok_or_else(|| TensorError::InvalidArgument("mul_col requires a matrix".into()))?;
        if c.shape().as_matrix() != Some((m, 1)) {
            return Err(TensorError::ShapeMismatch {
                op: "mul_col",
                lhs: x.shape().clone(),
                rhs: c.shape().clone(),
            });
        }
        let mut out = Tensor::zeros(Shape::matrix(m, n));
        for r in 0..m {
            let w = c.get2(r, 0);
            for j in 0..n {
                out.set2(r, j, x.get2(r, j) * w);
            }
        }
        Ok(Var::binary(self, col, out, move |a, b, up| {
            let (m, n) = up.shape().as_matrix().expect("matrix");
            if a.requires_grad() {
                let da = b.with_value(|cv| {
                    let mut da = Tensor::zeros(Shape::matrix(m, n));
                    for r in 0..m {
                        let w = cv.get2(r, 0);
                        for j in 0..n {
                            da.set2(r, j, up.get2(r, j) * w);
                        }
                    }
                    da
                });
                a.accumulate_grad(&da);
            }
            if b.requires_grad() {
                let db = a.with_value(|xv| {
                    let mut db = Tensor::zeros(Shape::matrix(m, 1));
                    for r in 0..m {
                        let mut s = 0.0;
                        for j in 0..n {
                            s += up.get2(r, j) * xv.get2(r, j);
                        }
                        db.set2(r, 0, s);
                    }
                    db
                });
                b.accumulate_grad(&db);
            }
        }))
    }

    /// Multiplies every element by the constant `s`.
    pub fn scale(&self, s: f32) -> Var {
        let value = self.value().scale(s);
        self.unary(value, move |a, up| a.accumulate_grad(&up.scale(s)))
    }

    /// Applies `act` elementwise as its own graph node.
    ///
    /// This is the *composed* (naive) activation path; the fused alternative
    /// is [`Var::linear_act`], which folds the activation into the matmul
    /// epilogue.
    pub fn activate(&self, act: Activation) -> Var {
        let value = self.node.borrow().value.map(|x| act.apply(x));
        self.unary(value, move |a, up| {
            let dx = a
                .with_value(|xv| up.zip(xv, "activate", |g, xi| g * act.grad(xi)))
                .expect("same shape");
            a.accumulate_grad(&dx);
        })
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        self.activate(Activation::Relu)
    }

    /// GELU activation (tanh approximation) — BlackMamba expert FFNs.
    pub fn gelu(&self) -> Var {
        self.activate(Activation::Gelu)
    }

    /// SiLU / Swish activation — Mixtral SwiGLU experts.
    pub fn silu(&self) -> Var {
        self.activate(Activation::Silu)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        self.activate(Activation::Tanh)
    }

    /// Fused linear layer `act(self @ weight + bias)` as a **single** graph
    /// node (bias shape `[1, n]`), computed by the fused matmul kernel whose
    /// epilogue applies the bias and activation while each output tile is
    /// cache-hot, saving the pre-activation values for the backward pass.
    ///
    /// The backward pass is fused too: at training-step scale it streams
    /// `act'` row by row into the `d bias` / `d self` / `d weight` sweeps
    /// (see `parallel::linear_act_backward_into`), so the intermediate
    /// `dpre = up ⊙ act'(pre)` tensor — and the operand transposes the
    /// materialized path needs — are never built. Above the parallel-matmul
    /// threshold it falls back to the materialized path, whose row-
    /// partitioned matmuls win at those shapes; the two are bit-identical.
    ///
    /// Bit-identical — values and accumulated gradients — to the composed
    /// chain `self.matmul(weight)?.add_row(bias)?.activate(act)`: the kernel
    /// keeps the matmul accumulation order, the epilogue performs the same
    /// per-element `+ bias` / `act(·)`, and the backward pass delivers
    /// `d bias → d self → d weight` in the reverse topological order the
    /// composed chain would (add_row node first, then the matmul node).
    ///
    /// ```
    /// use ftsim_tensor::{Activation, Tensor, Var};
    /// let x = Var::constant(Tensor::from_rows(&[&[1.0, 2.0]]).unwrap());
    /// let w = Var::parameter(Tensor::from_rows(&[&[0.5], &[-0.25]]).unwrap());
    /// let b = Var::parameter(Tensor::from_rows(&[&[0.1]]).unwrap());
    /// let y = x.linear_act(&w, &b, Activation::Relu).unwrap();
    /// assert!((y.value().item() - 0.1).abs() < 1e-6); // relu(0.5 - 0.5 + 0.1)
    /// y.mean().backward();
    /// assert!(w.grad().is_some() && b.grad().is_some());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a shape error if the operands are not conforming matrices or
    /// `bias` is not `[1, n]`.
    pub fn linear_act(
        &self,
        weight: &Var,
        bias: &Var,
        act: Activation,
    ) -> Result<Var, TensorError> {
        let xb = self.node.borrow();
        let wb = weight.node.borrow();
        let bb = bias.node.borrow();
        let (xv, wv, bv) = (&xb.value, &wb.value, &bb.value);
        let Some(out_shape) = xv.shape().matmul(wv.shape()) else {
            return Err(TensorError::ShapeMismatch {
                op: "linear_act",
                lhs: xv.shape().clone(),
                rhs: wv.shape().clone(),
            });
        };
        let (m, k) = xv.shape().as_matrix().expect("checked above");
        let (_, n) = wv.shape().as_matrix().expect("checked above");
        if bv.shape().as_matrix() != Some((1, n)) {
            return Err(TensorError::ShapeMismatch {
                op: "linear_act",
                lhs: xv.shape().clone(),
                rhs: bv.shape().clone(),
            });
        }
        let mut value = Tensor::zeros(out_shape);
        // The identity epilogue needs no saved pre-activation: act' ≡ 1 and
        // the upstream gradient passes through untouched.
        let mut pre = (act != Activation::Identity).then(|| Tensor::zeros(Shape::matrix(m, n)));
        crate::parallel::matmul_bias_act_into(
            xv.data(),
            wv.data(),
            Some(bv.data()),
            act,
            value.data_mut(),
            pre.as_mut().map(Tensor::data_mut),
            m,
            k,
            n,
        );
        drop(xb);
        drop(wb);
        drop(bb);
        let requires = self.requires_grad() || weight.requires_grad() || bias.requires_grad();
        let (x2, w2, b2) = (self.clone(), weight.clone(), bias.clone());
        Ok(Var::from_node(Node {
            value,
            grad: None,
            requires_grad: requires,
            parents: vec![self.clone(), weight.clone(), bias.clone()],
            backward: if requires {
                Some(Box::new(move |up| {
                    let (m, n) = up.shape().as_matrix().expect("matrix");
                    let k = x2.with_value(|xv| xv.shape().as_matrix().expect("matrix").1);
                    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
                    if flops < crate::parallel::PARALLEL_FLOP_THRESHOLD {
                        linear_act_backward_streaming(&x2, &w2, &b2, pre.as_ref(), act, up);
                    } else {
                        linear_act_backward_materialized(&x2, &w2, &b2, pre.as_ref(), act, up);
                    }
                }))
            } else {
                None
            },
        }))
    }

    /// Row-wise softmax restricted to `allowed` entries per row; the rest of
    /// the row is zero. With all entries allowed this is a plain softmax.
    ///
    /// This models top-k MoE gating: the router computes
    /// `softmax(topk(logits))` over the selected experts only.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix, `allowed` has the wrong
    /// dimensions, or a row has no allowed entry.
    pub fn masked_softmax_rows(&self, allowed: &[Vec<bool>]) -> Result<Var, TensorError> {
        let x = self.value();
        let (m, n) = x.shape().as_matrix().ok_or_else(|| {
            TensorError::InvalidArgument("masked_softmax_rows requires a matrix".into())
        })?;
        if allowed.len() != m || allowed.iter().any(|r| r.len() != n) {
            return Err(TensorError::InvalidArgument(format!(
                "mask must be {m}x{n}"
            )));
        }
        let mut out = Tensor::zeros(Shape::matrix(m, n));
        for (r, mask) in allowed.iter().enumerate() {
            let mut mx = f32::NEG_INFINITY;
            for (c, &on) in mask.iter().enumerate() {
                if on {
                    mx = mx.max(x.get2(r, c));
                }
            }
            if mx == f32::NEG_INFINITY {
                return Err(TensorError::InvalidArgument(format!(
                    "row {r} has no allowed entries"
                )));
            }
            let mut denom = 0.0;
            for (c, &on) in mask.iter().enumerate() {
                if on {
                    denom += (x.get2(r, c) - mx).exp();
                }
            }
            for (c, &on) in mask.iter().enumerate() {
                if on {
                    out.set2(r, c, (x.get2(r, c) - mx).exp() / denom);
                }
            }
        }
        let p = out.clone();
        Ok(self.unary(out, move |a, up| {
            // dX = P ⊙ (dP - rowsum(dP ⊙ P)); masked entries have P = 0.
            let (m, n) = up.shape().as_matrix().expect("matrix");
            let mut dx = Tensor::zeros(Shape::matrix(m, n));
            for r in 0..m {
                let mut dot = 0.0;
                for c in 0..n {
                    dot += up.get2(r, c) * p.get2(r, c);
                }
                for c in 0..n {
                    let pi = p.get2(r, c);
                    dx.set2(r, c, pi * (up.get2(r, c) - dot));
                }
            }
            a.accumulate_grad(&dx);
        }))
    }

    /// Row-wise softmax over all entries.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix.
    pub fn softmax_rows(&self) -> Result<Var, TensorError> {
        let (m, n) = self
            .shape()
            .as_matrix()
            .ok_or_else(|| TensorError::InvalidArgument("softmax_rows requires a matrix".into()))?;
        self.masked_softmax_rows(&vec![vec![true; n]; m])
    }

    /// Mean of all elements as a scalar variable.
    pub fn mean(&self) -> Var {
        let x = self.value();
        let n = x.numel().max(1);
        let value = Tensor::scalar(x.mean());
        let shape = x.shape().clone();
        self.unary(value, move |a, up| {
            let g = up.item() / n as f32;
            a.accumulate_grad(&Tensor::full(shape.clone(), g));
        })
    }

    /// Sum of all elements as a scalar variable.
    pub fn sum(&self) -> Var {
        let x = self.value();
        let value = Tensor::scalar(x.sum());
        let shape = x.shape().clone();
        self.unary(value, move |a, up| {
            a.accumulate_grad(&Tensor::full(shape.clone(), up.item()));
        })
    }

    /// Mean cross-entropy loss between row logits and integer labels,
    /// fused with log-softmax for numerical stability.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix logits or out-of-range labels.
    pub fn cross_entropy(&self, labels: &[usize]) -> Result<Var, TensorError> {
        let x = self.value();
        let loss = ops::cross_entropy(&x, labels)?;
        let probs = ops::softmax_rows(&x)?;
        let labels = labels.to_vec();
        Ok(self.unary(Tensor::scalar(loss), move |a, up| {
            let (m, n) = probs.shape().as_matrix().expect("matrix");
            let mut dx = probs.clone();
            for (r, &l) in labels.iter().enumerate() {
                dx.set2(r, l, dx.get2(r, l) - 1.0);
            }
            let scale = up.item() / m as f32;
            let _ = n;
            a.accumulate_grad(&dx.scale(scale));
        }))
    }

    /// Runs reverse-mode differentiation from this scalar variable.
    ///
    /// Delegates to a thread-local step-scoped [`Tape`] whose traversal
    /// workspace (topological order, DFS stack, visited set) is cleared and
    /// reused across calls, so repeated training steps rebuild no workspace.
    ///
    /// # Panics
    ///
    /// Panics if the variable does not hold exactly one element.
    pub fn backward(&self) {
        STEP_TAPE
            .try_with(|t| match t.try_borrow_mut() {
                Ok(mut tape) => tape.backward(self),
                // Re-entrant call (a backward closure invoking backward):
                // fall back to a throwaway tape rather than panicking.
                Err(_) => Tape::new().backward(self),
            })
            .unwrap_or_else(|_| Tape::new().backward(self));
    }
}

/// The streaming fused backward path for [`Var::linear_act`]: folds `act'`
/// into the `d bias` / `d self` / `d weight` sweeps without materializing
/// `dpre` or the operand transposes. Serial — used below the parallel
/// threshold, where it wins by skipping four full-tensor temporaries.
fn linear_act_backward_streaming(
    x2: &Var,
    w2: &Var,
    b2: &Var,
    pre: Option<&Tensor>,
    act: Activation,
    up: &Tensor,
) {
    let (db, dx, dw) = x2.with_value(|xv| {
        w2.with_value(|wv| {
            let (m, k) = xv.shape().as_matrix().expect("matrix");
            let (_, n) = wv.shape().as_matrix().expect("matrix");
            let mut db = b2
                .requires_grad()
                .then(|| Tensor::zeros(Shape::matrix(1, n)));
            let mut dx = x2
                .requires_grad()
                .then(|| Tensor::zeros(Shape::matrix(m, k)));
            let mut dw = w2
                .requires_grad()
                .then(|| Tensor::zeros(Shape::matrix(k, n)));
            let mut scratch = crate::pool::take_shaped_zeroed(&[n]);
            crate::parallel::linear_act_backward_into(
                up.data(),
                pre.map(Tensor::data),
                act,
                xv.data(),
                wv.data(),
                db.as_mut().map(Tensor::data_mut),
                dx.as_mut().map(Tensor::data_mut),
                dw.as_mut().map(Tensor::data_mut),
                &mut scratch,
                m,
                k,
                n,
            );
            crate::pool::give_shaped(&[n], scratch);
            (db, dx, dw)
        })
    });
    // Same accumulation order as the composed chain: bias, input, weight.
    if let Some(db) = db {
        b2.accumulate_grad_owned(db);
    }
    if let Some(dx) = dx {
        x2.accumulate_grad_owned(dx);
    }
    if let Some(dw) = dw {
        w2.accumulate_grad_owned(dw);
    }
}

/// The materialized fused backward path for [`Var::linear_act`]: builds
/// `dpre = up ⊙ act'(pre)` and runs the two gradient matmuls through the
/// (row-partitionable) microkernel. Bit-identical to the streaming path —
/// both accumulate each gradient element in the same order — and preferred
/// above the parallel threshold where threaded matmuls dominate.
fn linear_act_backward_materialized(
    x2: &Var,
    w2: &Var,
    b2: &Var,
    pre: Option<&Tensor>,
    act: Activation,
    up: &Tensor,
) {
    // dpre = up ⊙ act'(pre); for Identity, up itself.
    let owned;
    let dpre: &Tensor = match pre {
        Some(pre_t) => {
            owned = up
                .zip(pre_t, "linear_act", |g, p| g * act.grad(p))
                .expect("same shape");
            &owned
        }
        None => up,
    };
    let (m, n) = dpre.shape().as_matrix().expect("matrix");
    if b2.requires_grad() {
        let mut db = Tensor::zeros(Shape::matrix(1, n));
        for r in 0..m {
            for c in 0..n {
                db.set2(0, c, db.get2(0, c) + dpre.get2(r, c));
            }
        }
        b2.accumulate_grad(&db);
    }
    if x2.requires_grad() {
        let dx = w2.with_value(|wv| {
            dpre.matmul(&wv.transpose().expect("matrix"))
                .expect("conforming")
        });
        x2.accumulate_grad(&dx);
    }
    if w2.requires_grad() {
        let dw = x2.with_value(|xv| {
            xv.transpose()
                .expect("matrix")
                .matmul(dpre)
                .expect("conforming")
        });
        w2.accumulate_grad(&dw);
    }
}

thread_local! {
    /// The step-scoped tape reused by every [`Var::backward`] on this thread.
    static STEP_TAPE: RefCell<Tape> = RefCell::new(Tape::new());
}

/// Reusable reverse-pass workspace.
///
/// [`Var::backward`] needs a topological ordering of the graph, which the
/// original implementation rebuilt from freshly-allocated collections on
/// every call. A `Tape` keeps those collections between calls — cleared but
/// with their capacity intact — so the traversal of step *N* runs entirely
/// in the workspace warmed by step *N − 1*. Recorded `Var` handles are
/// released at the end of each pass (their node storage returns to the
/// buffer pool when the caller drops the graph); only the empty collections
/// persist.
#[derive(Default)]
pub struct Tape {
    order: Vec<Var>,
    stack: Vec<(Var, bool)>,
    visited: HashSet<*const RefCell<Node>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Workspace capacity currently retained (graph nodes the tape can order
    /// without growing) — observable evidence of cross-step reuse.
    pub fn retained_capacity(&self) -> usize {
        self.order.capacity()
    }

    /// Runs reverse-mode differentiation from `root`, reusing this tape's
    /// workspace. Equivalent to [`Var::backward`] (which uses the
    /// thread-local tape).
    ///
    /// # Panics
    ///
    /// Panics if `root` does not hold exactly one element.
    pub fn backward(&mut self, root: &Var) {
        assert_eq!(
            root.node.borrow().value.numel(),
            1,
            "backward() must start from a scalar"
        );
        // Topological order via iterative post-order DFS.
        self.order.clear();
        self.stack.clear();
        self.visited.clear();
        self.stack.push((root.clone(), false));
        while let Some((var, expanded)) = self.stack.pop() {
            let key = Rc::as_ptr(&var.node);
            if expanded {
                self.order.push(var);
                continue;
            }
            if !self.visited.insert(key) {
                continue;
            }
            self.stack.push((var.clone(), true));
            for p in var.node.borrow().parents.iter() {
                if !self.visited.contains(&Rc::as_ptr(&p.node)) {
                    self.stack.push((p.clone(), false));
                }
            }
        }
        // Seed and propagate in reverse topological order.
        {
            let mut n = root.node.borrow_mut();
            let shape = n.value.shape().clone();
            n.grad = Some(Tensor::ones(shape));
        }
        for var in self.order.iter().rev() {
            // The closure only ever borrows *other* nodes (parents), so
            // holding this node's borrow while it runs is safe, and passing
            // the gradient by reference avoids the old per-node clone.
            let n = var.node.borrow();
            if let (Some(bw), Some(grad)) = (n.backward.as_ref(), n.grad.as_ref()) {
                bw(grad);
            }
        }
        // Release the recorded handles (dropping the graph's Rc references)
        // but keep the collections' capacity for the next step.
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Central finite difference of a scalar-valued function of one parameter
    /// entry, used to validate analytic gradients.
    fn check_grad(build: impl Fn(&Var) -> Var, init: Tensor, tol: f32) {
        let p = Var::parameter(init.clone());
        let loss = build(&p);
        loss.backward();
        let grad = p.grad().expect("gradient present");
        let h = 1e-2;
        for i in 0..init.numel() {
            let mut plus = init.clone();
            plus.data_mut()[i] += h;
            let mut minus = init.clone();
            minus.data_mut()[i] -= h;
            let fp = build(&Var::parameter(plus)).value().item();
            let fm = build(&Var::parameter(minus)).value().item();
            let fd = (fp - fm) / (2.0 * h);
            let an = grad.data()[i];
            assert!(
                (fd - an).abs() < tol,
                "grad[{i}]: analytic {an} vs finite-diff {fd}"
            );
        }
    }

    #[test]
    fn grad_of_square_via_mul() {
        check_grad(
            |w| w.mul(w).unwrap().mean(),
            Tensor::from_rows(&[&[1.5, -2.0]]).unwrap(),
            1e-2,
        );
    }

    #[test]
    fn grad_through_matmul_chain() {
        let x = Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]).unwrap();
        check_grad(
            move |w| {
                let xv = Var::constant(x.clone());
                xv.matmul(w).unwrap().relu().mean()
            },
            Tensor::from_rows(&[&[0.3, 0.7], &[-0.2, 0.9]]).unwrap(),
            1e-2,
        );
    }

    #[test]
    fn grad_through_gelu_and_silu() {
        check_grad(
            |w| w.gelu().sum(),
            Tensor::from_rows(&[&[0.4, -0.8, 1.2]]).unwrap(),
            2e-2,
        );
        check_grad(
            |w| w.silu().sum(),
            Tensor::from_rows(&[&[0.4, -0.8, 1.2]]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn grad_through_softmax() {
        check_grad(
            |w| {
                let p = w.softmax_rows().unwrap();
                // weight the first column to create asymmetric gradients
                let mask = Var::constant(Tensor::from_rows(&[&[1.0, 0.0, 0.0]]).unwrap());
                p.mul(&mask).unwrap().sum()
            },
            Tensor::from_rows(&[&[0.2, -0.3, 0.5]]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn grad_through_masked_softmax_ignores_masked() {
        let p = Var::parameter(Tensor::from_rows(&[&[1.0, 5.0, 2.0]]).unwrap());
        let masks = vec![vec![true, false, true]];
        let s = p.masked_softmax_rows(&masks).unwrap();
        assert_eq!(s.value().get2(0, 1), 0.0);
        let loss = s.sum();
        loss.backward();
        // Sum of a (masked) softmax row is constant 1 → zero gradient.
        let g = p.grad().unwrap();
        for &v in g.data() {
            assert!(v.abs() < 1e-5, "expected zero grad, got {v}");
        }
    }

    #[test]
    fn grad_through_cross_entropy() {
        check_grad(
            |w| w.cross_entropy(&[2]).unwrap(),
            Tensor::from_rows(&[&[0.1, -0.4, 0.3]]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn grad_through_add_row_bias() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        check_grad(
            move |b| {
                let xv = Var::constant(x.clone());
                xv.add_row(b)
                    .unwrap()
                    .mul(&xv.add_row(b).unwrap())
                    .unwrap()
                    .mean()
            },
            Tensor::from_rows(&[&[0.5, -0.5]]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn grad_through_mul_col() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        check_grad(
            move |c| {
                let xv = Var::constant(x.clone());
                xv.mul_col(c).unwrap().sum()
            },
            Tensor::from_rows(&[&[2.0], &[-1.0]]).unwrap(),
            1e-2,
        );
    }

    fn composed_linear(x: &Var, w: &Var, b: &Var, act: Activation) -> Var {
        x.matmul(w).unwrap().add_row(b).unwrap().activate(act)
    }

    #[test]
    fn linear_act_bit_identical_to_composed_chain() {
        let mut rng = StdRng::seed_from_u64(17);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Gelu,
            Activation::Silu,
            Activation::Tanh,
        ] {
            let xt = Tensor::rand_uniform([5, 4], 1.0, &mut rng);
            let wt = Tensor::rand_uniform([4, 3], 1.0, &mut rng);
            let bt = Tensor::rand_uniform([1, 3], 1.0, &mut rng);

            let (x1, w1, b1) = (
                Var::constant(xt.clone()),
                Var::parameter(wt.clone()),
                Var::parameter(bt.clone()),
            );
            let fused = x1.linear_act(&w1, &b1, act).unwrap();
            fused.mean().backward();

            let (x2, w2, b2) = (Var::constant(xt), Var::parameter(wt), Var::parameter(bt));
            let naive = composed_linear(&x2, &w2, &b2, act);
            naive.mean().backward();

            assert_eq!(fused.value(), naive.value(), "{act:?} values diverged");
            assert_eq!(
                w1.grad().unwrap(),
                w2.grad().unwrap(),
                "{act:?} weight grads diverged"
            );
            assert_eq!(
                b1.grad().unwrap(),
                b2.grad().unwrap(),
                "{act:?} bias grads diverged"
            );
        }
    }

    #[test]
    fn linear_act_gradcheck_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::rand_uniform([3, 4], 1.0, &mut rng);
        let b = Tensor::rand_uniform([1, 2], 0.5, &mut rng);
        let x2 = x.clone();
        check_grad(
            move |w| {
                let xv = Var::constant(x.clone());
                let bv = Var::constant(b.clone());
                xv.linear_act(w, &bv, Activation::Gelu).unwrap().mean()
            },
            Tensor::rand_uniform([4, 2], 0.5, &mut rng),
            2e-2,
        );
        let w = Tensor::rand_uniform([4, 2], 0.5, &mut rng);
        check_grad(
            move |b| {
                let xv = Var::constant(x2.clone());
                let wv = Var::constant(w.clone());
                xv.linear_act(&wv, b, Activation::Silu).unwrap().mean()
            },
            Tensor::rand_uniform([1, 2], 0.5, &mut rng),
            2e-2,
        );
    }

    #[test]
    fn linear_act_rejects_bad_shapes() {
        let x = Var::constant(Tensor::zeros([2, 3]));
        let w = Var::parameter(Tensor::zeros([3, 4]));
        let bad_w = Var::parameter(Tensor::zeros([5, 4]));
        let b = Var::parameter(Tensor::zeros([1, 4]));
        let bad_b = Var::parameter(Tensor::zeros([1, 3]));
        assert!(x.linear_act(&w, &b, Activation::Relu).is_ok());
        assert!(x.linear_act(&bad_w, &b, Activation::Relu).is_err());
        assert!(x.linear_act(&w, &bad_b, Activation::Relu).is_err());
    }

    #[test]
    fn tape_reuses_workspace_across_steps() {
        let mut tape = Tape::new();
        let w = Var::parameter(Tensor::from_rows(&[&[1.0, 2.0]]).unwrap());
        let mut grads = Vec::new();
        for _ in 0..3 {
            let loss = w.mul(&w).unwrap().mean();
            tape.backward(&loss);
            grads.push(w.grad().unwrap());
            w.zero_grad();
        }
        assert!(tape.retained_capacity() > 0, "workspace was not retained");
        assert_eq!(grads[0], grads[1]);
        assert_eq!(grads[1], grads[2]);
    }

    #[test]
    fn explicit_tape_matches_var_backward() {
        let build = |w: &Var| w.mul(w).unwrap().mean();
        let w1 = Var::parameter(Tensor::from_rows(&[&[1.5, -2.0]]).unwrap());
        build(&w1).backward();
        let w2 = Var::parameter(Tensor::from_rows(&[&[1.5, -2.0]]).unwrap());
        Tape::new().backward(&build(&w2));
        assert_eq!(w1.grad().unwrap(), w2.grad().unwrap());
    }

    #[test]
    fn update_with_grad_applies_and_clears() {
        let w = Var::parameter(Tensor::scalar(3.0));
        assert!(!w.update_with_grad(|_, _| panic!("no grad yet")));
        w.mul(&w).unwrap().mean().backward();
        let stepped = w.update_with_grad(|v, g| {
            for (vi, gi) in v.data_mut().iter_mut().zip(g.data()) {
                *vi -= 0.5 * gi;
            }
        });
        assert!(stepped);
        assert!(w.grad().is_none(), "update_with_grad must clear the grad");
        assert!((w.value().item() - 0.0).abs() < 1e-6);
    }

    #[test]
    fn with_value_and_with_grad_borrow_without_cloning() {
        let w = Var::parameter(Tensor::from_rows(&[&[2.0, 4.0]]).unwrap());
        assert_eq!(w.with_value(|t| t.sum()), 6.0);
        assert!(w.with_grad(|g| g.is_none()));
        w.sum().backward();
        assert_eq!(w.with_grad(|g| g.unwrap().sum()), 2.0);
    }

    #[test]
    fn shared_subexpression_accumulates_grads() {
        // loss = mean(w) + mean(w) → dloss/dw = 2/n each.
        let w = Var::parameter(Tensor::from_rows(&[&[1.0, 2.0]]).unwrap());
        let loss = w.mean().add(&w.mean()).unwrap();
        loss.backward();
        let g = w.grad().unwrap();
        assert!(g.allclose(&Tensor::from_rows(&[&[1.0, 1.0]]).unwrap(), 1e-5));
    }

    #[test]
    fn constants_receive_no_grad() {
        let c = Var::constant(Tensor::scalar(2.0));
        let w = Var::parameter(Tensor::scalar(3.0));
        let loss = c.mul(&w).unwrap().mean();
        loss.backward();
        assert!(c.grad().is_none());
        assert!((w.grad().unwrap().item() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_clears() {
        let w = Var::parameter(Tensor::scalar(3.0));
        let loss = w.mul(&w).unwrap().mean();
        loss.backward();
        assert!(w.grad().is_some());
        w.zero_grad();
        assert!(w.grad().is_none());
    }

    #[test]
    fn arena_recycles_graph_nodes_across_steps() {
        set_arena_enabled(true);
        let w = Var::parameter(Tensor::from_rows(&[&[1.0, -2.0]]).unwrap());
        // Warm-up step fills the free list with this graph's node count.
        {
            let loss = w.mul(&w).unwrap().mean();
            loss.backward();
            w.zero_grad();
        }
        let before = arena_stats();
        for _ in 0..3 {
            let loss = w.mul(&w).unwrap().mean();
            loss.backward();
            w.zero_grad();
        }
        let after = arena_stats();
        assert_eq!(
            after.allocs_since(&before),
            0,
            "steady-state steps must pop every node from the arena"
        );
        assert!(after.reuses > before.reuses, "expected arena hits");
        assert!(after.returns > before.returns, "expected reclamations");
    }

    #[test]
    fn arena_disabled_allocates_and_frees_nodes() {
        set_arena_enabled(false);
        let before = arena_stats();
        let w = Var::parameter(Tensor::scalar(2.0));
        {
            let loss = w.mul(&w).unwrap().mean();
            loss.backward();
        }
        let after = arena_stats();
        set_arena_enabled(true);
        assert_eq!(
            after.returns, before.returns,
            "no reclamation while disabled"
        );
        assert!(
            after.fresh_allocs >= before.fresh_allocs + 3,
            "parameter, mul and mean nodes must allocate fresh"
        );
    }

    #[test]
    fn arena_reuse_does_not_change_training_results() {
        let run = |arena: bool| {
            set_arena_enabled(arena);
            let w = Var::parameter(Tensor::from_rows(&[&[0.8, -0.3], &[0.1, 0.6]]).unwrap());
            let x = Var::constant(Tensor::from_rows(&[&[1.0, 2.0], &[-0.5, 0.25]]).unwrap());
            let mut losses = Vec::new();
            for _ in 0..4 {
                let loss = x.matmul(&w).unwrap().gelu().mean();
                loss.backward();
                losses.push(loss.value().item());
                w.update_with_grad(|v, g| {
                    for (vi, gi) in v.data_mut().iter_mut().zip(g.data()) {
                        *vi -= 0.1 * gi;
                    }
                });
            }
            set_arena_enabled(true);
            (losses, w.value())
        };
        let (l_on, w_on) = run(true);
        let (l_off, w_off) = run(false);
        assert!(
            l_on.iter()
                .zip(&l_off)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "losses must be bit-identical with and without the arena"
        );
        assert_eq!(w_on, w_off, "trained weights must match");
    }

    proptest! {
        /// Satellite coverage for the fused backward epilogue: across all
        /// activation kinds and non-square shapes, the fused node's value
        /// and every gradient (input, weight, bias) are bit-identical to
        /// the composed matmul → add_row → activate chain.
        #[test]
        fn prop_linear_act_grads_bit_identical_to_composed(
            m in 1usize..7,
            k in 1usize..9,
            n in 1usize..6,
            act_idx in 0usize..5,
            seed in 0u64..200,
        ) {
            let act = [
                Activation::Identity,
                Activation::Relu,
                Activation::Gelu,
                Activation::Silu,
                Activation::Tanh,
            ][act_idx];
            let mut rng = StdRng::seed_from_u64(seed);
            let xt = Tensor::rand_uniform([m, k], 1.0, &mut rng);
            let wt = Tensor::rand_uniform([k, n], 1.0, &mut rng);
            let bt = Tensor::rand_uniform([1, n], 1.0, &mut rng);
            let (x1, w1, b1) = (
                Var::parameter(xt.clone()),
                Var::parameter(wt.clone()),
                Var::parameter(bt.clone()),
            );
            let fused = x1.linear_act(&w1, &b1, act).unwrap();
            fused.mean().backward();
            let (x2, w2, b2) = (
                Var::parameter(xt),
                Var::parameter(wt),
                Var::parameter(bt),
            );
            let naive = composed_linear(&x2, &w2, &b2, act);
            naive.mean().backward();
            let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
            prop_assert_eq!(bits(&fused.value()), bits(&naive.value()));
            prop_assert_eq!(bits(&x1.grad().unwrap()), bits(&x2.grad().unwrap()));
            prop_assert_eq!(bits(&w1.grad().unwrap()), bits(&w2.grad().unwrap()));
            prop_assert_eq!(bits(&b1.grad().unwrap()), bits(&b2.grad().unwrap()));
        }
    }

    #[test]
    fn randomized_two_layer_network_gradcheck() {
        let mut rng = StdRng::seed_from_u64(99);
        let x = Tensor::rand_uniform([3, 4], 1.0, &mut rng);
        let w2 = Tensor::rand_uniform([5, 2], 1.0, &mut rng);
        let labels: Vec<usize> = (0..3).map(|_| rng.gen_range(0..2)).collect();
        let init = Tensor::rand_uniform([4, 5], 0.5, &mut rng);
        check_grad(
            move |w1| {
                let xv = Var::constant(x.clone());
                let w2v = Var::constant(w2.clone());
                xv.matmul(w1)
                    .unwrap()
                    .gelu()
                    .matmul(&w2v)
                    .unwrap()
                    .cross_entropy(&labels)
                    .unwrap()
            },
            init,
            3e-2,
        );
    }
}
