//! Reverse-mode automatic differentiation.
//!
//! [`Var`] wraps a [`Tensor`] in a dynamically-built computation graph.
//! Calling [`Var::backward`] on a scalar result propagates gradients to every
//! reachable [`Var::parameter`] leaf. This is the engine behind the
//! genuinely-trained mixture-of-experts models used for the paper's
//! trainability (Fig. 3) and load-imbalance (Fig. 11) experiments.

use crate::ops;
use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

type BackwardFn = Box<dyn Fn(&Tensor)>;

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

/// A differentiable tensor variable.
///
/// `Var` is a cheap handle (reference-counted) onto a node of the computation
/// graph. Cloning a `Var` aliases the same node.
///
/// ```
/// use ftsim_tensor::{Tensor, Var};
/// let w = Var::parameter(Tensor::scalar(3.0));
/// let loss = w.mul(&w).unwrap().mean(); // w^2
/// loss.backward();
/// assert!((w.grad().unwrap().item() - 6.0).abs() < 1e-5);
/// ```
#[derive(Clone)]
pub struct Var {
    node: Rc<RefCell<Node>>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.node.borrow();
        f.debug_struct("Var")
            .field("shape", n.value.shape())
            .field("requires_grad", &n.requires_grad)
            .finish()
    }
}

impl Var {
    fn from_node(node: Node) -> Var {
        Var {
            node: Rc::new(RefCell::new(node)),
        }
    }

    /// Wraps a tensor that does **not** receive gradients (input data).
    pub fn constant(value: Tensor) -> Var {
        Var::from_node(Node {
            value,
            grad: None,
            requires_grad: false,
            parents: Vec::new(),
            backward: None,
        })
    }

    /// Wraps a trainable tensor that accumulates gradients.
    pub fn parameter(value: Tensor) -> Var {
        Var::from_node(Node {
            value,
            grad: None,
            requires_grad: true,
            parents: Vec::new(),
            backward: None,
        })
    }

    /// A clone of the current value.
    pub fn value(&self) -> Tensor {
        self.node.borrow().value.clone()
    }

    /// The shape of the current value.
    pub fn shape(&self) -> Shape {
        self.node.borrow().value.shape().clone()
    }

    /// A clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.node.borrow().grad.clone()
    }

    /// Whether this variable participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.node.borrow().requires_grad
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.node.borrow_mut().grad = None;
    }

    /// Replaces the value in place (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if the new value's shape differs from the current one.
    pub fn set_value(&self, value: Tensor) {
        let mut n = self.node.borrow_mut();
        assert_eq!(
            n.value.shape(),
            value.shape(),
            "set_value must preserve shape"
        );
        n.value = value;
    }

    /// Applies `f` to the value in place (used by optimizers).
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.node.borrow_mut().value);
    }

    fn accumulate_grad(&self, g: &Tensor) {
        let mut n = self.node.borrow_mut();
        if !n.requires_grad {
            return;
        }
        match &mut n.grad {
            Some(existing) => {
                *existing = existing
                    .add(g)
                    .expect("gradient shape must match value shape");
            }
            None => n.grad = Some(g.clone()),
        }
    }

    fn unary(&self, value: Tensor, backward: impl Fn(&Var, &Tensor) + 'static) -> Var {
        let parent = self.clone();
        let requires = parent.requires_grad();
        let p2 = parent.clone();
        Var::from_node(Node {
            value,
            grad: None,
            requires_grad: requires,
            parents: vec![parent],
            backward: if requires {
                Some(Box::new(move |up| backward(&p2, up)))
            } else {
                None
            },
        })
    }

    fn binary(
        a: &Var,
        b: &Var,
        value: Tensor,
        backward: impl Fn(&Var, &Var, &Tensor) + 'static,
    ) -> Var {
        let requires = a.requires_grad() || b.requires_grad();
        let (a2, b2) = (a.clone(), b.clone());
        Var::from_node(Node {
            value,
            grad: None,
            requires_grad: requires,
            parents: vec![a.clone(), b.clone()],
            backward: if requires {
                Some(Box::new(move |up| backward(&a2, &b2, up)))
            } else {
                None
            },
        })
    }

    /// Matrix product `self @ rhs`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the operands are not conforming matrices.
    pub fn matmul(&self, rhs: &Var) -> Result<Var, TensorError> {
        let value = self.value().matmul(&rhs.node.borrow().value)?;
        let (av, bv) = (self.value(), rhs.value());
        Ok(Var::binary(self, rhs, value, move |a, b, up| {
            if a.requires_grad() {
                let da = up
                    .matmul(&bv.transpose().expect("matrix"))
                    .expect("conforming");
                a.accumulate_grad(&da);
            }
            if b.requires_grad() {
                let db = av
                    .transpose()
                    .expect("matrix")
                    .matmul(up)
                    .expect("conforming");
                b.accumulate_grad(&db);
            }
        }))
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn add(&self, rhs: &Var) -> Result<Var, TensorError> {
        let value = self.node.borrow().value.add(&rhs.node.borrow().value)?;
        Ok(Var::binary(self, rhs, value, |a, b, up| {
            a.accumulate_grad(up);
            b.accumulate_grad(up);
        }))
    }

    /// Adds a `[1, n]` bias row to every row of an `[m, n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the column counts differ.
    pub fn add_row(&self, bias: &Var) -> Result<Var, TensorError> {
        let x = self.value();
        let b = bias.value();
        let (m, n) = x
            .shape()
            .as_matrix()
            .ok_or_else(|| TensorError::InvalidArgument("add_row requires a matrix".into()))?;
        let (br, bn) = b
            .shape()
            .as_matrix()
            .ok_or_else(|| TensorError::InvalidArgument("add_row bias must be [1, n]".into()))?;
        if br != 1 || bn != n {
            return Err(TensorError::ShapeMismatch {
                op: "add_row",
                lhs: x.shape().clone(),
                rhs: b.shape().clone(),
            });
        }
        let mut out = Tensor::zeros(Shape::matrix(m, n));
        for r in 0..m {
            for c in 0..n {
                out.set2(r, c, x.get2(r, c) + b.get2(0, c));
            }
        }
        Ok(Var::binary(self, bias, out, move |a, bv, up| {
            a.accumulate_grad(up);
            if bv.requires_grad() {
                let (m, n) = up.shape().as_matrix().expect("matrix");
                let mut db = Tensor::zeros(Shape::matrix(1, n));
                for r in 0..m {
                    for c in 0..n {
                        db.set2(0, c, db.get2(0, c) + up.get2(r, c));
                    }
                }
                bv.accumulate_grad(&db);
            }
        }))
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns a shape error when shapes differ.
    pub fn mul(&self, rhs: &Var) -> Result<Var, TensorError> {
        let value = self.node.borrow().value.mul(&rhs.node.borrow().value)?;
        let (av, bv) = (self.value(), rhs.value());
        Ok(Var::binary(self, rhs, value, move |a, b, up| {
            if a.requires_grad() {
                a.accumulate_grad(&up.mul(&bv).expect("same shape"));
            }
            if b.requires_grad() {
                b.accumulate_grad(&up.mul(&av).expect("same shape"));
            }
        }))
    }

    /// Multiplies each row `r` of an `[m, n]` matrix by `col[r, 0]` of an
    /// `[m, 1]` column — the expert-output weighting step of an MoE layer
    /// (`current_hidden_states * router_weights` in the paper's Fig. 12).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `col` is not `[m, 1]`.
    pub fn mul_col(&self, col: &Var) -> Result<Var, TensorError> {
        let x = self.value();
        let c = col.value();
        let (m, n) = x
            .shape()
            .as_matrix()
            .ok_or_else(|| TensorError::InvalidArgument("mul_col requires a matrix".into()))?;
        if c.shape().as_matrix() != Some((m, 1)) {
            return Err(TensorError::ShapeMismatch {
                op: "mul_col",
                lhs: x.shape().clone(),
                rhs: c.shape().clone(),
            });
        }
        let mut out = Tensor::zeros(Shape::matrix(m, n));
        for r in 0..m {
            let w = c.get2(r, 0);
            for j in 0..n {
                out.set2(r, j, x.get2(r, j) * w);
            }
        }
        let (xv, cv) = (x, c);
        Ok(Var::binary(self, col, out, move |a, b, up| {
            let (m, n) = up.shape().as_matrix().expect("matrix");
            if a.requires_grad() {
                let mut da = Tensor::zeros(Shape::matrix(m, n));
                for r in 0..m {
                    let w = cv.get2(r, 0);
                    for j in 0..n {
                        da.set2(r, j, up.get2(r, j) * w);
                    }
                }
                a.accumulate_grad(&da);
            }
            if b.requires_grad() {
                let mut db = Tensor::zeros(Shape::matrix(m, 1));
                for r in 0..m {
                    let mut s = 0.0;
                    for j in 0..n {
                        s += up.get2(r, j) * xv.get2(r, j);
                    }
                    db.set2(r, 0, s);
                }
                b.accumulate_grad(&db);
            }
        }))
    }

    /// Multiplies every element by the constant `s`.
    pub fn scale(&self, s: f32) -> Var {
        let value = self.value().scale(s);
        self.unary(value, move |a, up| a.accumulate_grad(&up.scale(s)))
    }

    fn activation(&self, f: impl Fn(f32) -> f32, df: impl Fn(f32) -> f32 + 'static) -> Var {
        let x = self.value();
        let value = x.map(&f);
        self.unary(value, move |a, up| {
            let dx = Tensor::new(
                up.shape().clone(),
                up.data()
                    .iter()
                    .zip(x.data())
                    .map(|(&g, &xi)| g * df(xi))
                    .collect(),
            )
            .expect("same shape");
            a.accumulate_grad(&dx);
        })
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        self.activation(|x| x.max(0.0), |x| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// GELU activation (tanh approximation) — BlackMamba expert FFNs.
    pub fn gelu(&self) -> Var {
        self.activation(ops::gelu, ops::gelu_grad)
    }

    /// SiLU / Swish activation — Mixtral SwiGLU experts.
    pub fn silu(&self) -> Var {
        self.activation(ops::silu, ops::silu_grad)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        self.activation(
            |x| x.tanh(),
            |x| {
                let t = x.tanh();
                1.0 - t * t
            },
        )
    }

    /// Row-wise softmax restricted to `allowed` entries per row; the rest of
    /// the row is zero. With all entries allowed this is a plain softmax.
    ///
    /// This models top-k MoE gating: the router computes
    /// `softmax(topk(logits))` over the selected experts only.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix, `allowed` has the wrong
    /// dimensions, or a row has no allowed entry.
    pub fn masked_softmax_rows(&self, allowed: &[Vec<bool>]) -> Result<Var, TensorError> {
        let x = self.value();
        let (m, n) = x.shape().as_matrix().ok_or_else(|| {
            TensorError::InvalidArgument("masked_softmax_rows requires a matrix".into())
        })?;
        if allowed.len() != m || allowed.iter().any(|r| r.len() != n) {
            return Err(TensorError::InvalidArgument(format!(
                "mask must be {m}x{n}"
            )));
        }
        let mut out = Tensor::zeros(Shape::matrix(m, n));
        for (r, mask) in allowed.iter().enumerate() {
            let mut mx = f32::NEG_INFINITY;
            for (c, &on) in mask.iter().enumerate() {
                if on {
                    mx = mx.max(x.get2(r, c));
                }
            }
            if mx == f32::NEG_INFINITY {
                return Err(TensorError::InvalidArgument(format!(
                    "row {r} has no allowed entries"
                )));
            }
            let mut denom = 0.0;
            for (c, &on) in mask.iter().enumerate() {
                if on {
                    denom += (x.get2(r, c) - mx).exp();
                }
            }
            for (c, &on) in mask.iter().enumerate() {
                if on {
                    out.set2(r, c, (x.get2(r, c) - mx).exp() / denom);
                }
            }
        }
        let p = out.clone();
        Ok(self.unary(out, move |a, up| {
            // dX = P ⊙ (dP - rowsum(dP ⊙ P)); masked entries have P = 0.
            let (m, n) = up.shape().as_matrix().expect("matrix");
            let mut dx = Tensor::zeros(Shape::matrix(m, n));
            for r in 0..m {
                let mut dot = 0.0;
                for c in 0..n {
                    dot += up.get2(r, c) * p.get2(r, c);
                }
                for c in 0..n {
                    let pi = p.get2(r, c);
                    dx.set2(r, c, pi * (up.get2(r, c) - dot));
                }
            }
            a.accumulate_grad(&dx);
        }))
    }

    /// Row-wise softmax over all entries.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a matrix.
    pub fn softmax_rows(&self) -> Result<Var, TensorError> {
        let (m, n) = self
            .shape()
            .as_matrix()
            .ok_or_else(|| TensorError::InvalidArgument("softmax_rows requires a matrix".into()))?;
        self.masked_softmax_rows(&vec![vec![true; n]; m])
    }

    /// Mean of all elements as a scalar variable.
    pub fn mean(&self) -> Var {
        let x = self.value();
        let n = x.numel().max(1);
        let value = Tensor::scalar(x.mean());
        let shape = x.shape().clone();
        self.unary(value, move |a, up| {
            let g = up.item() / n as f32;
            a.accumulate_grad(&Tensor::full(shape.clone(), g));
        })
    }

    /// Sum of all elements as a scalar variable.
    pub fn sum(&self) -> Var {
        let x = self.value();
        let value = Tensor::scalar(x.sum());
        let shape = x.shape().clone();
        self.unary(value, move |a, up| {
            a.accumulate_grad(&Tensor::full(shape.clone(), up.item()));
        })
    }

    /// Mean cross-entropy loss between row logits and integer labels,
    /// fused with log-softmax for numerical stability.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix logits or out-of-range labels.
    pub fn cross_entropy(&self, labels: &[usize]) -> Result<Var, TensorError> {
        let x = self.value();
        let loss = ops::cross_entropy(&x, labels)?;
        let probs = ops::softmax_rows(&x)?;
        let labels = labels.to_vec();
        Ok(self.unary(Tensor::scalar(loss), move |a, up| {
            let (m, n) = probs.shape().as_matrix().expect("matrix");
            let mut dx = probs.clone();
            for (r, &l) in labels.iter().enumerate() {
                dx.set2(r, l, dx.get2(r, l) - 1.0);
            }
            let scale = up.item() / m as f32;
            let _ = n;
            a.accumulate_grad(&dx.scale(scale));
        }))
    }

    /// Runs reverse-mode differentiation from this scalar variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable does not hold exactly one element.
    pub fn backward(&self) {
        assert_eq!(
            self.node.borrow().value.numel(),
            1,
            "backward() must start from a scalar"
        );
        // Topological order via iterative post-order DFS.
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<*const RefCell<Node>> = HashSet::new();
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((var, expanded)) = stack.pop() {
            let key = Rc::as_ptr(&var.node);
            if expanded {
                order.push(var);
                continue;
            }
            if !visited.insert(key) {
                continue;
            }
            stack.push((var.clone(), true));
            for p in var.node.borrow().parents.iter() {
                if !visited.contains(&Rc::as_ptr(&p.node)) {
                    stack.push((p.clone(), false));
                }
            }
        }
        // Seed and propagate in reverse topological order.
        {
            let mut n = self.node.borrow_mut();
            let shape = n.value.shape().clone();
            n.grad = Some(Tensor::ones(shape));
        }
        for var in order.into_iter().rev() {
            let grad = {
                let n = var.node.borrow();
                if n.backward.is_none() || n.grad.is_none() {
                    continue;
                }
                n.grad.clone().expect("checked")
            };
            // Call outside the borrow so the closure can mutate parents
            // (which may alias `var` only in degenerate graphs we don't build).
            let node = var.node.borrow();
            if let Some(bw) = node.backward.as_ref() {
                bw(&grad);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Central finite difference of a scalar-valued function of one parameter
    /// entry, used to validate analytic gradients.
    fn check_grad(build: impl Fn(&Var) -> Var, init: Tensor, tol: f32) {
        let p = Var::parameter(init.clone());
        let loss = build(&p);
        loss.backward();
        let grad = p.grad().expect("gradient present");
        let h = 1e-2;
        for i in 0..init.numel() {
            let mut plus = init.clone();
            plus.data_mut()[i] += h;
            let mut minus = init.clone();
            minus.data_mut()[i] -= h;
            let fp = build(&Var::parameter(plus)).value().item();
            let fm = build(&Var::parameter(minus)).value().item();
            let fd = (fp - fm) / (2.0 * h);
            let an = grad.data()[i];
            assert!(
                (fd - an).abs() < tol,
                "grad[{i}]: analytic {an} vs finite-diff {fd}"
            );
        }
    }

    #[test]
    fn grad_of_square_via_mul() {
        check_grad(
            |w| w.mul(w).unwrap().mean(),
            Tensor::from_rows(&[&[1.5, -2.0]]).unwrap(),
            1e-2,
        );
    }

    #[test]
    fn grad_through_matmul_chain() {
        let x = Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.25]]).unwrap();
        check_grad(
            move |w| {
                let xv = Var::constant(x.clone());
                xv.matmul(w).unwrap().relu().mean()
            },
            Tensor::from_rows(&[&[0.3, 0.7], &[-0.2, 0.9]]).unwrap(),
            1e-2,
        );
    }

    #[test]
    fn grad_through_gelu_and_silu() {
        check_grad(
            |w| w.gelu().sum(),
            Tensor::from_rows(&[&[0.4, -0.8, 1.2]]).unwrap(),
            2e-2,
        );
        check_grad(
            |w| w.silu().sum(),
            Tensor::from_rows(&[&[0.4, -0.8, 1.2]]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn grad_through_softmax() {
        check_grad(
            |w| {
                let p = w.softmax_rows().unwrap();
                // weight the first column to create asymmetric gradients
                let mask = Var::constant(Tensor::from_rows(&[&[1.0, 0.0, 0.0]]).unwrap());
                p.mul(&mask).unwrap().sum()
            },
            Tensor::from_rows(&[&[0.2, -0.3, 0.5]]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn grad_through_masked_softmax_ignores_masked() {
        let p = Var::parameter(Tensor::from_rows(&[&[1.0, 5.0, 2.0]]).unwrap());
        let masks = vec![vec![true, false, true]];
        let s = p.masked_softmax_rows(&masks).unwrap();
        assert_eq!(s.value().get2(0, 1), 0.0);
        let loss = s.sum();
        loss.backward();
        // Sum of a (masked) softmax row is constant 1 → zero gradient.
        let g = p.grad().unwrap();
        for &v in g.data() {
            assert!(v.abs() < 1e-5, "expected zero grad, got {v}");
        }
    }

    #[test]
    fn grad_through_cross_entropy() {
        check_grad(
            |w| w.cross_entropy(&[2]).unwrap(),
            Tensor::from_rows(&[&[0.1, -0.4, 0.3]]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn grad_through_add_row_bias() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        check_grad(
            move |b| {
                let xv = Var::constant(x.clone());
                xv.add_row(b)
                    .unwrap()
                    .mul(&xv.add_row(b).unwrap())
                    .unwrap()
                    .mean()
            },
            Tensor::from_rows(&[&[0.5, -0.5]]).unwrap(),
            2e-2,
        );
    }

    #[test]
    fn grad_through_mul_col() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        check_grad(
            move |c| {
                let xv = Var::constant(x.clone());
                xv.mul_col(c).unwrap().sum()
            },
            Tensor::from_rows(&[&[2.0], &[-1.0]]).unwrap(),
            1e-2,
        );
    }

    #[test]
    fn shared_subexpression_accumulates_grads() {
        // loss = mean(w) + mean(w) → dloss/dw = 2/n each.
        let w = Var::parameter(Tensor::from_rows(&[&[1.0, 2.0]]).unwrap());
        let loss = w.mean().add(&w.mean()).unwrap();
        loss.backward();
        let g = w.grad().unwrap();
        assert!(g.allclose(&Tensor::from_rows(&[&[1.0, 1.0]]).unwrap(), 1e-5));
    }

    #[test]
    fn constants_receive_no_grad() {
        let c = Var::constant(Tensor::scalar(2.0));
        let w = Var::parameter(Tensor::scalar(3.0));
        let loss = c.mul(&w).unwrap().mean();
        loss.backward();
        assert!(c.grad().is_none());
        assert!((w.grad().unwrap().item() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_clears() {
        let w = Var::parameter(Tensor::scalar(3.0));
        let loss = w.mul(&w).unwrap().mean();
        loss.backward();
        assert!(w.grad().is_some());
        w.zero_grad();
        assert!(w.grad().is_none());
    }

    #[test]
    fn randomized_two_layer_network_gradcheck() {
        let mut rng = StdRng::seed_from_u64(99);
        let x = Tensor::rand_uniform([3, 4], 1.0, &mut rng);
        let w2 = Tensor::rand_uniform([5, 2], 1.0, &mut rng);
        let labels: Vec<usize> = (0..3).map(|_| rng.gen_range(0..2)).collect();
        let init = Tensor::rand_uniform([4, 5], 0.5, &mut rng);
        check_grad(
            move |w1| {
                let xv = Var::constant(x.clone());
                let w2v = Var::constant(w2.clone());
                xv.matmul(w1)
                    .unwrap()
                    .gelu()
                    .matmul(&w2v)
                    .unwrap()
                    .cross_entropy(&labels)
                    .unwrap()
            },
            init,
            3e-2,
        );
    }
}
