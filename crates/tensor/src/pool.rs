//! Recycled `f32` buffer storage — the zero-allocation substrate of the
//! tensor runtime.
//!
//! Every [`crate::Tensor`] draws its backing `Vec<f32>` from a [`BufferPool`]
//! and returns it on drop, so a steady-state training step performs **no
//! heap allocation** for tensor data after the first (warm-up) steps. The
//! pool keeps shelves of spare buffers keyed by **power-of-two capacity
//! bucket** — a request for `len` elements is served by any shelved buffer
//! whose capacity reaches the next power of two ≥ `len` — and counts fresh
//! allocations, reuses, returns, and discards, which is how the
//! `repro bench_tensor` experiment proves the zero-steady-state-allocation
//! property.
//!
//! Bucketing (rather than exact-capacity keying) is what extends the
//! zero-allocation invariant to *sparse* mixture-of-experts training: under
//! top-k routing the set of active experts — and with it the exact tensor
//! shapes and counts in flight — varies step to step, so exact-capacity
//! shelves keep missing. Same-bucket buffers are fully fungible across
//! shapes, so once warm-up has populated each bucket the shapes can churn
//! freely without a fresh allocation.
//!
//! [`BufferPool`] itself is thread-safe (internally synchronized), so a
//! single instance may be shared across threads. The crate-global pool used
//! by `Tensor`, however, is **one instance per thread**: recycling is
//! thread-local, which keeps the hot path uncontended and makes the
//! allocation counters deterministic for the thread doing the training.
//!
//! Buffers handed out by the pool are always either zeroed
//! ([`BufferPool::take_zeroed`]) or fully overwritten by the caller
//! ([`BufferPool::take`] returns an *empty* vector that the caller extends);
//! stale data from a previous tenant is never observable.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Multiply-xor hasher (the rustc-hash construction) for the shelf maps.
/// Shelf keys are tiny — a `usize` capacity or a short dimension list — and
/// sit on the take/give hot path of every tensor, where the default
/// SipHash's per-call overhead is measurable. Keys are never adversarial
/// (they are tensor shapes), so DoS resistance is not needed.
///
/// Public because other crates reuse the same construction for non-tensor
/// hot-path keys (e.g. the planner service's scenario-hash cache).
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

type FxMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Maximum spare buffers kept per distinct capacity; returns beyond this are
/// dropped (and counted as discards) so the pool cannot grow without bound.
/// Sized for a full training step of the bench-scale MoE models (batch 64,
/// 8 experts), where hundreds of same-shape activation and gradient tensors
/// are live simultaneously and all return to the pool at step end.
const SHELF_CAP: usize = 512;

/// Buffers larger than this many elements are never shelved: one-off giant
/// temporaries should not pin memory for the rest of the thread's life.
const MAX_POOLED_LEN: usize = 1 << 24;

/// Snapshot of a pool's event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffers created with a fresh heap allocation (pool misses).
    pub fresh_allocs: u64,
    /// Buffers served from a shelf without allocating (pool hits).
    pub reuses: u64,
    /// Buffers accepted back onto a shelf.
    pub returns: u64,
    /// Buffers dropped instead of shelved (full shelf, oversized, disabled).
    pub discards: u64,
}

impl PoolStats {
    /// Fresh allocations that happened between `earlier` and `self`.
    pub fn allocs_since(&self, earlier: &PoolStats) -> u64 {
        self.fresh_allocs - earlier.fresh_allocs
    }
}

/// A thread-safe pool of `Vec<T>` storage keyed by power-of-two capacity
/// bucket.
///
/// [`BufferPool`] (= `Pool<f32>`) is the tensor-storage instantiation; the
/// simulator reuses the same mechanism for non-`f32` scratch (e.g. priced
/// kernel-record buffers in the sweep hot path).
///
/// Invariant: a shelved buffer sits in the bucket `B = floor_pow2(cap)`,
/// so its capacity is in `[B, 2B)`; a request for `len` elements looks in
/// bucket `ceil_pow2(len)`, and any buffer found there has `cap ≥ B ≥ len`.
/// Fresh allocations are rounded up to the full bucket
/// (`Vec::with_capacity(ceil_pow2(len))`) so a buffer returns to the same
/// bucket it was taken from; foreign buffers with non-power-of-two
/// capacities shelve into their floor bucket and stay usable.
///
/// When observability is on ([`ftsim_obs::enabled`]), every pool event is
/// mirrored into the global metrics registry under
/// `{label}.{fresh_allocs,reuses,returns,discards}` — the registry-facing
/// view of the same counters [`Pool::stats`] reports. The mirror costs one
/// relaxed atomic load per event while observability is off.
///
/// ```
/// use ftsim_tensor::pool::BufferPool;
/// let pool = BufferPool::new();
/// let mut buf = pool.take_zeroed(128);
/// assert!(buf.iter().all(|&x| x == 0.0));
/// buf[0] = 42.0;
/// pool.give(buf);
/// // The next request of the same size reuses the storage but sees zeros.
/// let again = pool.take_zeroed(128);
/// assert_eq!(again.len(), 128);
/// assert!(again.iter().all(|&x| x == 0.0));
/// assert_eq!(pool.stats().reuses, 1);
/// ```
#[derive(Debug)]
pub struct Pool<T> {
    /// Spare buffers keyed by power-of-two capacity bucket. One `usize` key
    /// per bucket also hashes cheaper than the per-shape `Vec<usize>` keys
    /// the pool used before bucketing, and collapses what used to be two
    /// maps (shape-keyed plus exact-capacity) into one.
    shelves: Mutex<FxMap<usize, Vec<Vec<T>>>>,
    fresh_allocs: AtomicU64,
    reuses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
    /// Metric-name prefix for the obs mirror.
    label: &'static str,
    obs: OnceLock<[ftsim_obs::Counter; 4]>,
}

/// The tensor-storage pool: recycled `Vec<f32>` buffers.
pub type BufferPool = Pool<f32>;

/// Shelf bucket a request for `len` elements draws from: the smallest power
/// of two ≥ `len`. Fresh allocations are sized to this bucket too, so a
/// pool-born buffer always returns to the bucket it was taken from.
#[inline]
fn bucket_for_len(len: usize) -> usize {
    len.next_power_of_two()
}

/// Shelf bucket a buffer of capacity `cap ≥ 1` is stored in: the largest
/// power of two ≤ `cap`. Guarantees every buffer in bucket `B` can serve
/// every request routed to `B` (`cap ≥ B ≥ len`), including foreign buffers
/// whose capacity is not a power of two.
#[inline]
fn bucket_for_cap(cap: usize) -> usize {
    debug_assert!(cap >= 1);
    1 << (usize::BITS - 1 - cap.leading_zeros())
}

/// Indices into the obs counter array.
const FRESH: usize = 0;
const REUSE: usize = 1;
const RETURN: usize = 2;
const DISCARD: usize = 3;

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool::with_label("tensor.pool")
    }
}

impl<T> Pool<T> {
    /// Creates an empty pool reporting under the default `tensor.pool` label.
    pub fn new() -> Self {
        Pool::default()
    }

    /// Creates an empty pool whose obs-mirrored counters are named
    /// `{label}.fresh_allocs` etc.
    pub fn with_label(label: &'static str) -> Self {
        Pool {
            shelves: Mutex::new(FxMap::default()),
            fresh_allocs: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            discards: AtomicU64::new(0),
            label,
            obs: OnceLock::new(),
        }
    }

    #[inline]
    fn bump(&self, counter: &AtomicU64, which: usize) {
        counter.fetch_add(1, Ordering::Relaxed);
        if ftsim_obs::enabled() {
            let handles = self.obs.get_or_init(|| {
                let registry = ftsim_obs::registry();
                [
                    registry.counter(&format!("{}.fresh_allocs", self.label)),
                    registry.counter(&format!("{}.reuses", self.label)),
                    registry.counter(&format!("{}.returns", self.label)),
                    registry.counter(&format!("{}.discards", self.label)),
                ]
            });
            handles[which].add(1);
        }
    }

    /// An **empty** vector with capacity at least `len`, reusing shelved
    /// storage when the matching power-of-two bucket holds a spare buffer.
    /// The caller must fill it (e.g. with `extend`) — length starts at
    /// zero, so stale contents are unreachable.
    pub fn take(&self, len: usize) -> Vec<T> {
        if len == 0 {
            return Vec::new();
        }
        let bucket = bucket_for_len(len);
        let reused = self
            .shelves
            .lock()
            .expect("pool mutex")
            .get_mut(&bucket)
            .and_then(Vec::pop);
        match reused {
            Some(mut v) => {
                debug_assert!(v.capacity() >= len, "bucket invariant violated");
                self.bump(&self.reuses, REUSE);
                v.clear();
                v
            }
            None => {
                self.bump(&self.fresh_allocs, FRESH);
                // Round fresh storage up to the full bucket so the buffer
                // returns to the bucket this request was routed to.
                Vec::with_capacity(bucket)
            }
        }
    }

    /// A vector of exactly `len` copies of `value`.
    pub fn take_filled(&self, len: usize, value: T) -> Vec<T>
    where
        T: Clone,
    {
        let mut v = self.take(len);
        v.resize(len, value);
        v
    }

    /// A vector holding a copy of `src`.
    pub fn take_copy(&self, src: &[T]) -> Vec<T>
    where
        T: Clone,
    {
        let mut v = self.take(src.len());
        v.extend_from_slice(src);
        v
    }

    /// Returns a buffer to its capacity bucket for reuse. Zero-capacity and
    /// oversized buffers, and returns to a full shelf, are dropped instead.
    /// The buffer is cleared first, so element destructors run now, not at
    /// reuse time.
    pub fn give(&self, mut buf: Vec<T>) {
        let cap = buf.capacity();
        if cap == 0 || cap > MAX_POOLED_LEN {
            if cap > 0 {
                self.bump(&self.discards, DISCARD);
            }
            return;
        }
        buf.clear();
        let mut shelves = self.shelves.lock().expect("pool mutex");
        let shelf = shelves.entry(bucket_for_cap(cap)).or_default();
        if shelf.len() >= SHELF_CAP {
            self.bump(&self.discards, DISCARD);
        } else {
            shelf.push(buf);
            self.bump(&self.returns, RETURN);
        }
    }

    /// [`Pool::take`] for a tensor of shape `dims`: an **empty** vector with
    /// capacity for `dims.iter().product()` elements. Shape is irrelevant to
    /// the bucketed shelves — any same-bucket buffer serves any shape — so
    /// this is a convenience wrapper kept for call-site clarity.
    ///
    /// ```
    /// use ftsim_tensor::pool::BufferPool;
    /// let pool = BufferPool::new();
    /// let buf = pool.take_shaped(&[4, 8]);
    /// assert!(buf.is_empty() && buf.capacity() >= 32);
    /// pool.give_shaped(&[4, 8], buf);
    /// // Next step may use a *different* shape with the same bucket:
    /// // served from the shelf, no allocation.
    /// let again = pool.take_shaped(&[7, 4]);
    /// assert_eq!(pool.stats().reuses, 1);
    /// # drop(again);
    /// ```
    pub fn take_shaped(&self, dims: &[usize]) -> Vec<T> {
        self.take(dims.iter().product())
    }

    /// Returns a buffer that backed a tensor of shape `dims`; equivalent to
    /// [`Pool::give`] (the bucketed shelves ignore shape).
    pub fn give_shaped(&self, dims: &[usize], buf: Vec<T>) {
        let _ = dims;
        self.give(buf);
    }

    /// Drops all shelved buffers (counters are preserved).
    pub fn clear(&self) {
        self.shelves.lock().expect("pool mutex").clear();
    }

    /// Removes and returns every shelf, leaving the pool empty. Counters
    /// are untouched: moving warm buffers elsewhere is neither a return
    /// nor a discard.
    fn take_shelves(&self) -> FxMap<usize, Vec<Vec<T>>> {
        std::mem::take(&mut *self.shelves.lock().expect("pool mutex"))
    }

    /// Merges shelves donated by another pool, respecting [`SHELF_CAP`]
    /// per bucket (overflow is dropped). Counters are untouched — adopted
    /// buffers were already accounted for when their original owner gave
    /// them back.
    fn adopt_shelves(&self, incoming: FxMap<usize, Vec<Vec<T>>>) {
        let mut shelves = self.shelves.lock().expect("pool mutex");
        for (bucket, mut bufs) in incoming {
            let shelf = shelves.entry(bucket).or_default();
            let room = SHELF_CAP.saturating_sub(shelf.len());
            bufs.truncate(room);
            shelf.append(&mut bufs);
        }
    }

    /// Number of buffers currently shelved across all buckets.
    pub fn resident(&self) -> usize {
        self.shelves
            .lock()
            .expect("pool mutex")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Snapshot of the event counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh_allocs: self.fresh_allocs.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            discards: self.discards.load(Ordering::Relaxed),
        }
    }
}

impl Pool<f32> {
    /// A vector of exactly `len` zeros.
    pub fn take_zeroed(&self, len: usize) -> Vec<f32> {
        let mut v = self.take(len);
        v.resize(len, 0.0);
        v
    }
}

thread_local! {
    static POOL: BufferPool = BufferPool::new();
    static ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Enables or disables pooling on the current thread. While disabled,
/// [`take`] always allocates fresh storage (still counted as a fresh
/// allocation) and [`give`] drops buffers instead of shelving them — the
/// configuration used as the "serial-naive" baseline in `repro bench_tensor`.
pub fn set_enabled(enabled: bool) {
    ENABLED.with(|e| e.set(enabled));
}

/// Whether pooling is enabled on the current thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// [`BufferPool::take`] on the current thread's pool.
pub fn take(len: usize) -> Vec<f32> {
    if !enabled() {
        bump_fresh();
        return Vec::with_capacity(len);
    }
    POOL.try_with(|p| p.take(len))
        .unwrap_or_else(|_| Vec::with_capacity(len))
}

/// [`BufferPool::take_zeroed`] on the current thread's pool.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut v = take(len);
    v.resize(len, 0.0);
    v
}

/// [`BufferPool::take_filled`] on the current thread's pool.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    let mut v = take(len);
    v.resize(len, value);
    v
}

/// [`BufferPool::take_copy`] on the current thread's pool.
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut v = take(src.len());
    v.extend_from_slice(src);
    v
}

/// [`BufferPool::give`] on the current thread's pool. Safe to call during
/// thread teardown (the buffer is simply dropped once the pool is gone).
pub fn give(buf: Vec<f32>) {
    if !enabled() {
        return;
    }
    let _ = POOL.try_with(|p| p.give(buf));
}

/// [`BufferPool::take_shaped`] on the current thread's pool: an **empty**
/// vector with capacity for a tensor of shape `dims`.
pub fn take_shaped(dims: &[usize]) -> Vec<f32> {
    let len: usize = dims.iter().product();
    if !enabled() {
        bump_fresh();
        return Vec::with_capacity(len);
    }
    POOL.try_with(|p| p.take_shaped(dims))
        .unwrap_or_else(|_| Vec::with_capacity(len))
}

/// A vector of `dims.iter().product()` zeros from the current thread's
/// shape-keyed pool.
pub fn take_shaped_zeroed(dims: &[usize]) -> Vec<f32> {
    let len: usize = dims.iter().product();
    let mut v = take_shaped(dims);
    v.resize(len, 0.0);
    v
}

/// A vector of `dims.iter().product()` copies of `value` from the current
/// thread's shape-keyed pool.
pub fn take_shaped_filled(dims: &[usize], value: f32) -> Vec<f32> {
    let len: usize = dims.iter().product();
    let mut v = take_shaped(dims);
    v.resize(len, value);
    v
}

/// A copy of `src` (which backs a tensor of shape `dims`) drawn from the
/// current thread's shape-keyed pool.
pub fn take_shaped_copy(dims: &[usize], src: &[f32]) -> Vec<f32> {
    let mut v = take_shaped(dims);
    v.extend_from_slice(src);
    v
}

/// [`BufferPool::give_shaped`] on the current thread's pool. Safe to call
/// during thread teardown (the buffer is simply dropped once the pool is
/// gone).
pub fn give_shaped(dims: &[usize], buf: Vec<f32>) {
    if !enabled() {
        return;
    }
    let _ = POOL.try_with(|p| p.give_shaped(dims, buf));
}

/// Counter snapshot for the current thread's pool.
pub fn stats() -> PoolStats {
    POOL.try_with(BufferPool::stats).unwrap_or_default()
}

/// Drops every buffer shelved by the current thread's pool.
pub fn clear() {
    let _ = POOL.try_with(BufferPool::clear);
}

/// Number of buffers currently shelved by the current thread's pool.
pub fn resident() -> usize {
    POOL.try_with(BufferPool::resident).unwrap_or(0)
}

fn bump_fresh() {
    let _ = POOL.try_with(|p| p.fresh_allocs.fetch_add(1, Ordering::Relaxed));
}

/// Most donations the global stash retains; beyond this, an exiting
/// thread's shelves simply drop as they did before stashing existed.
const STASH_CAP: usize = 32;

/// Warm shelves handed back by exiting worker threads, waiting to be
/// adopted by the next worker generation (see [`stash_donate`] /
/// [`stash_adopt`]).
static STASH: Mutex<Vec<FxMap<usize, Vec<Vec<f32>>>>> = Mutex::new(Vec::new());

/// Moves the current thread's shelved buffers into the global stash, so a
/// future worker thread can [`stash_adopt`] them instead of re-allocating.
///
/// Intended for short-lived worker threads (e.g. the scoped workers
/// `ftsim_sim::parallel_map_with` spawns per call): without this, every
/// worker generation's thread-local pool dies with the thread and the next
/// generation pays the fresh-allocation churn all over again. Donating is
/// counter-neutral — the buffers were already accounted as returns when
/// they were given back. No-op when pooling is disabled, when the thread's
/// shelves are empty, or when the stash is full (the shelves then drop
/// exactly as they would have without stashing).
pub fn stash_donate() {
    if !enabled() {
        return;
    }
    let Ok(shelves) = POOL.try_with(Pool::take_shelves) else {
        return;
    };
    if shelves.is_empty() {
        return;
    }
    let mut stash = STASH.lock().expect("stash mutex");
    if stash.len() < STASH_CAP {
        stash.push(shelves);
    }
}

/// Adopts one stashed donation (if any) into the current thread's pool,
/// pre-warming its shelves with buffers a previous worker generation
/// already allocated. Counter-neutral, like [`stash_donate`]; the benefit
/// shows up as reuses-instead-of-fresh-allocs on this thread's next takes.
pub fn stash_adopt() {
    if !enabled() {
        return;
    }
    let donation = STASH.lock().expect("stash mutex").pop();
    if let Some(donation) = donation {
        let _ = POOL.try_with(|p| p.adopt_shelves(donation));
    }
}

/// Number of donations currently waiting in the global stash.
pub fn stash_len() -> usize {
    STASH.lock().expect("stash mutex").len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn take_give_roundtrip_reuses_storage() {
        let pool = BufferPool::new();
        let mut a = pool.take_zeroed(64);
        a.iter_mut().for_each(|x| *x = 7.0);
        let ptr = a.as_ptr();
        pool.give(a);
        let b = pool.take_zeroed(64);
        assert_eq!(b.as_ptr(), ptr, "expected the same storage back");
        assert!(b.iter().all(|&x| x == 0.0), "stale data leaked");
        let s = pool.stats();
        assert_eq!((s.fresh_allocs, s.reuses, s.returns), (1, 1, 1));
    }

    #[test]
    fn mismatched_bucket_allocates_fresh() {
        // 8 and 16 land in different power-of-two buckets: no reuse.
        let pool = BufferPool::new();
        pool.give(pool.take_zeroed(8));
        let v = pool.take_zeroed(16);
        assert_eq!(v.len(), 16);
        assert_eq!(pool.stats().fresh_allocs, 2);
        assert_eq!(pool.stats().reuses, 0);
    }

    #[test]
    fn same_bucket_different_len_reuses_storage() {
        // 33..=64 all share the 64 bucket: a buffer taken for one length
        // serves any other, which is what keeps sparse-routing training
        // (varying shapes step to step) allocation-free after warm-up.
        let pool = BufferPool::new();
        let a = pool.take_zeroed(33);
        assert_eq!(a.capacity(), 64, "fresh allocs are rounded to the bucket");
        let ptr = a.as_ptr();
        pool.give(a);
        let b = pool.take_zeroed(64);
        assert_eq!(b.as_ptr(), ptr, "expected the same storage back");
        pool.give(b);
        let c = pool.take_zeroed(40);
        assert_eq!(c.as_ptr(), ptr, "expected the same storage back");
        let s = pool.stats();
        assert_eq!((s.fresh_allocs, s.reuses), (1, 2));
    }

    /// The stash is process-global, so the stash tests are serialized and
    /// each starts from an empty stash.
    static STASH_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn drain_stash() {
        while stash_len() > 0 {
            stash_adopt();
        }
    }

    #[test]
    fn stash_hands_warm_shelves_across_threads() {
        let _guard = STASH_TEST_LOCK.lock().unwrap();
        drain_stash();
        // A distinctive bucket size no other test uses, so the donation we
        // adopt below is unambiguously ours.
        const LEN: usize = (1 << 21) + 17;
        let warm = take_zeroed(LEN);
        let ptr = warm.as_ptr() as usize;
        give(warm);
        stash_donate();
        assert_eq!(stash_len(), 1);
        // A fresh thread has an empty pool; after adopting, the very first
        // take of the donated bucket is a reuse of the donor's storage.
        std::thread::spawn(move || {
            let before = stats();
            stash_adopt();
            let v = take_zeroed(LEN);
            assert_eq!(v.as_ptr() as usize, ptr, "expected the donated storage");
            let s = stats();
            assert_eq!(s.fresh_allocs, before.fresh_allocs, "no fresh alloc");
            assert_eq!(s.reuses, before.reuses + 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn stash_respects_its_capacity_bound() {
        let _guard = STASH_TEST_LOCK.lock().unwrap();
        drain_stash();
        // Donations beyond STASH_CAP drop silently (the same fate the
        // shelves had before stashing existed). Run in a private thread so
        // only that thread's shelves are donated, never another test's.
        std::thread::spawn(|| {
            for _ in 0..STASH_CAP + 4 {
                give(take_zeroed(32));
                stash_donate();
            }
            assert_eq!(stash_len(), STASH_CAP);
        })
        .join()
        .unwrap();
        drain_stash();
    }

    #[test]
    fn foreign_non_pow2_capacity_shelves_into_floor_bucket() {
        // A buffer the pool did not create (capacity 12) floors into bucket
        // 8 and can serve any request of len ≤ 8 — never one of len > 12.
        let pool: Pool<u8> = Pool::with_label("test.pool.foreign");
        let mut foreign = Vec::with_capacity(12);
        foreign.push(1u8);
        let ptr = foreign.as_ptr();
        pool.give(foreign);
        let v = pool.take(7);
        assert_eq!(v.as_ptr(), ptr, "expected the foreign storage back");
        assert!(v.capacity() >= 7);
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn shelf_cap_discards_excess() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..SHELF_CAP + 3).map(|_| pool.take_zeroed(4)).collect();
        for b in bufs {
            pool.give(b);
        }
        assert_eq!(pool.resident(), SHELF_CAP);
        assert_eq!(pool.stats().discards, 3);
    }

    #[test]
    fn shaped_roundtrip_reuses_storage() {
        let pool = BufferPool::new();
        let mut a = pool.take_shaped(&[2, 6]);
        a.resize(12, 7.0);
        let ptr = a.as_ptr();
        pool.give_shaped(&[2, 6], a);
        let b = pool.take_shaped(&[2, 6]);
        assert_eq!(b.as_ptr(), ptr, "expected the same storage back");
        assert!(b.is_empty(), "recycled buffer must arrive cleared");
        let s = pool.stats();
        assert_eq!((s.fresh_allocs, s.reuses, s.returns), (1, 1, 1));
    }

    #[test]
    fn shaped_take_shares_buckets_with_plain_take() {
        let pool = BufferPool::new();
        pool.give(pool.take_zeroed(12));
        let v = pool.take_shaped(&[3, 4]);
        assert_eq!(v.capacity(), 16, "len 12 rounds up to the 16 bucket");
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn zero_len_never_touches_shelves() {
        let pool = BufferPool::new();
        let v = pool.take(0);
        assert_eq!(v.capacity(), 0);
        pool.give(v);
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats().fresh_allocs, 0);
    }

    #[test]
    fn generic_pool_recycles_non_f32_storage() {
        let pool: Pool<String> = Pool::with_label("test.pool.generic");
        let mut v = pool.take(4);
        v.extend((0..4).map(|i| i.to_string()));
        let ptr = v.as_ptr();
        pool.give(v);
        let again: Vec<String> = pool.take(4);
        assert_eq!(again.as_ptr(), ptr, "expected the same storage back");
        assert!(again.is_empty(), "recycled buffer must arrive cleared");
        let s = pool.stats();
        assert_eq!((s.fresh_allocs, s.reuses, s.returns), (1, 1, 1));
    }

    #[test]
    fn obs_mirror_reports_pool_events_in_registry() {
        let pool: Pool<u32> = Pool::with_label("test.pool.mirror");
        ftsim_obs::enable();
        let v = pool.take(16);
        pool.give(v);
        let v = pool.take(16);
        ftsim_obs::disable();
        drop(v);
        let registry = ftsim_obs::registry();
        assert_eq!(registry.counter("test.pool.mirror.fresh_allocs").get(), 1);
        assert_eq!(registry.counter("test.pool.mirror.reuses").get(), 1);
        assert_eq!(registry.counter("test.pool.mirror.returns").get(), 1);
    }

    #[test]
    fn take_copy_is_exact() {
        let pool = BufferPool::new();
        let src = [1.0, -2.0, 3.5];
        let v = pool.take_copy(&src);
        assert_eq!(v.as_slice(), &src);
    }

    #[test]
    fn disabled_thread_pool_bypasses_shelves() {
        set_enabled(false);
        let before = stats();
        let v = take_zeroed(32);
        give(v);
        let after = stats();
        set_enabled(true);
        assert_eq!(after.fresh_allocs, before.fresh_allocs + 1);
        assert_eq!(after.returns, before.returns);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_exact_len_and_no_stale_data(
            lens in proptest::collection::vec(1usize..200, 1..12),
            garbage in -100.0f32..100.0,
        ) {
            // Pollute the pool with garbage-filled buffers of every length,
            // then verify fresh requests are exact-length and fully zeroed.
            let pool = BufferPool::new();
            for &len in &lens {
                let mut v = pool.take_zeroed(len);
                v.iter_mut().for_each(|x| *x = garbage);
                pool.give(v);
            }
            for &len in &lens {
                let v = pool.take_zeroed(len);
                prop_assert_eq!(v.len(), len);
                prop_assert!(v.iter().all(|&x| x == 0.0));
                pool.give(v);
            }
        }

        #[test]
        fn prop_take_copy_roundtrip_matches_source(
            data in proptest::collection::vec(-1e6f32..1e6, 1..64),
        ) {
            let pool = BufferPool::new();
            // Prior tenant with different contents.
            let mut prior = pool.take_zeroed(data.len());
            prior.iter_mut().for_each(|x| *x = f32::NAN);
            pool.give(prior);
            let v = pool.take_copy(&data);
            prop_assert_eq!(v.len(), data.len());
            for (a, b) in v.iter().zip(&data) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
