//! Thread configuration and the matmul microkernel family.
//!
//! `ftsim-tensor` cannot depend on `ftsim-sim`'s engine (the dependency
//! points the other way), so it reads the same `FTSIM_THREADS` environment
//! variable itself.
//!
//! Three kernels live here, all bound by the same accumulation-order
//! contract (see DESIGN.md "Kernel contracts"):
//!
//! * [`matmul_naive_into`] — the i-p-j oracle. Slow, obviously correct,
//!   and the reference every other kernel must match bit-for-bit.
//! * [`matmul_blocked_into`] — the pre-microkernel cache-blocked kernel,
//!   retained as the perf baseline for `repro bench_tensor`.
//! * [`matmul_microkernel_into`] — the production kernel: cache-blocked
//!   over the inner dimension and tiled into fixed `MR`×`NR` register
//!   accumulators. Its band tiles, the fused epilogue's bias add, and the
//!   backward epilogue's `db`/`dw` sweeps dispatch at runtime to explicit
//!   AVX2 bodies in [`crate::simd`] when the host supports them, with the
//!   scalar tiles as the always-compiled fallback (`FTSIM_NO_SIMD=1`
//!   forces it).
//!
//! The contract: every output element accumulates its products in
//! ascending inner-index (`p`) order, skipping terms whose *lhs* factor is
//! exactly `0.0`. Because each element's addition sequence is fixed,
//! results are bit-identical across all three kernels, across the scalar
//! and SIMD bodies (which round identically — see `crate::simd`), and at
//! every thread count (row partitioning never reorders a single element's
//! sums). `linear_act_backward_into` extends the same contract to the
//! fused backward epilogue.

/// Environment variable overriding the worker-thread count (shared with
/// `ftsim-sim`'s engine).
pub const THREADS_ENV: &str = "FTSIM_THREADS";

/// Inner-dimension panel width: 64 lhs columns × 4 B keeps a panel of the
/// rhs rows resident in L1/L2 while a row block streams over it.
pub(crate) const K_BLOCK: usize = 64;

/// Microkernel lane width: 8 f32 lanes, one AVX2 `ymm` register (or two
/// NEON `q` registers). Output columns are walked in strips of `NR` so the
/// inner loop is a fixed-width FMA the autovectorizer cannot miss.
pub(crate) const NR: usize = 8;

/// Microkernel register-tile height: each inner-kernel invocation carries
/// `MR` rows of accumulators (6×8 f32 = 12 SSE `xmm` or 6 AVX2 `ymm`
/// registers), so one load of an rhs lane strip is reused `MR` times before
/// the next `p` step. 6 beat 4 and 8 on the baseline x86-64 target: 8
/// spills accumulators, 4 under-uses the register file.
pub(crate) const MR: usize = 6;

/// Below this many multiply-adds the thread-spawn overhead outweighs the
/// work; run on the calling thread. The autograd fused backward uses the
/// same threshold to decide between the streaming epilogue and the
/// materialized (threadable) matmul path.
pub(crate) const PARALLEL_FLOP_THRESHOLD: usize = 1 << 20;

/// Worker threads to use: `FTSIM_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    resolve_thread_count(std::env::var(THREADS_ENV).ok().as_deref())
}

fn resolve_thread_count(env_value: Option<&str>) -> usize {
    env_value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// `out[m×n] = lhs[m×k] @ rhs[k×n]` via the naive i-p-j triple loop.
///
/// This is the accumulation-order *oracle*: ascending `p` per output
/// element, with terms skipped when the lhs factor is exactly `0.0`. Every
/// other matmul kernel in the crate is tested bit-identical to this one.
/// `out` must be zero-initialized and of length `m*n`.
pub fn matmul_naive_into(lhs: &[f32], rhs: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(lhs.len(), m * k, "lhs length");
    assert_eq!(rhs.len(), k * n, "rhs length");
    assert_eq!(out.len(), m * n, "out length");
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a = lhs[i * k + p];
            if a == 0.0 {
                continue;
            }
            let rhs_row = &rhs[p * n..(p + 1) * n];
            for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                *o += a * b;
            }
        }
    }
}

/// `out[m×n] = lhs[m×k] @ rhs[k×n]` via the pre-microkernel cache-blocked
/// kernel (serial), retained as the `repro bench_tensor` perf baseline.
///
/// Identical accumulation order to [`matmul_naive_into`]: the `K_BLOCK`
/// panel split keeps ascending-`p` order per element, it only reorders
/// work *between* elements. `out` must be zero-initialized, length `m*n`.
pub fn matmul_blocked_into(
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(lhs.len(), m * k, "lhs length");
    assert_eq!(rhs.len(), k * n, "rhs length");
    assert_eq!(out.len(), m * n, "out length");
    matmul_rows_blocked(lhs, rhs, out, 0, k, n);
}

/// `out[m×n] = lhs[m×k] @ rhs[k×n]` via the register-tile microkernel
/// (serial). This is the kernel the crate-internal `matmul_into` dispatcher drives under threads; it is
/// public so benches can time it against [`matmul_blocked_into`] without
/// thread-count noise. `out` must be zero-initialized, length `m*n`.
pub fn matmul_microkernel_into(
    lhs: &[f32],
    rhs: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(lhs.len(), m * k, "lhs length");
    assert_eq!(rhs.len(), k * n, "rhs length");
    assert_eq!(out.len(), m * n, "out length");
    matmul_rows(lhs, rhs, out, 0, k, n);
}

/// The pre-microkernel inner kernel: for each `K_BLOCK` panel, each output
/// row is re-read and re-written once per `p` step. Kept (a) as the perf
/// baseline and (b) as the remainder path for row counts below [`MR`].
fn matmul_rows_blocked(
    lhs: &[f32],
    rhs: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    let rows = out_rows.len() / n.max(1);
    for p0 in (0..k).step_by(K_BLOCK) {
        let p1 = (p0 + K_BLOCK).min(k);
        for i in 0..rows {
            blocked_row_panel(lhs, rhs, out_rows, row0, i, p0, p1, k, n);
        }
    }
}

/// One row × one `K_BLOCK` panel of the blocked kernel: ascending `p`, lhs
/// zero-skip, full column span. Shared by the blocked kernel and the
/// microkernel's row-remainder path so both stay order-identical.
#[allow(clippy::too_many_arguments)]
fn blocked_row_panel(
    lhs: &[f32],
    rhs: &[f32],
    out_rows: &mut [f32],
    row0: usize,
    i: usize,
    p0: usize,
    p1: usize,
    k: usize,
    n: usize,
) {
    let lhs_row = &lhs[(row0 + i) * k..(row0 + i + 1) * k];
    let out_row = &mut out_rows[i * n..(i + 1) * n];
    for p in p0..p1 {
        let a = lhs_row[p];
        if a == 0.0 {
            continue;
        }
        let rhs_row = &rhs[p * n..(p + 1) * n];
        for (o, &b) in out_row.iter_mut().zip(rhs_row) {
            *o += a * b;
        }
    }
}

/// The inner microkernel: walks one `MR`-row band across all `NR`-wide
/// column strips for one K panel, carrying each `MR`×`NR` tile in a
/// fixed-size accumulator array (registers) and touching `out_rows` only at
/// tile load/store.
///
/// `ZERO_SKIP` monomorphizes the lhs `a == 0.0` skip in or out: the caller
/// scans the band's panels and picks `false` (straight-line FMAs, fully
/// vectorizable) when no exact zero exists — bit-identical because the skip
/// would never fire — and `true` otherwise.
fn band_tiles<const ZERO_SKIP: bool>(
    lhs_panels: &[&[f32]; MR],
    rhs: &[f32],
    out_rows: &mut [f32],
    i: usize,
    p0: usize,
    n_main: usize,
    n: usize,
) {
    let panel_len = lhs_panels[0].len();
    let mut j0 = 0;
    while j0 < n_main {
        // Load the MR×NR accumulator tile from the output.
        let mut acc = [[0.0f32; NR]; MR];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let base = (i + r) * n + j0;
            acc_r.copy_from_slice(&out_rows[base..base + NR]);
        }
        for off in 0..panel_len {
            let p = p0 + off;
            let lane: &[f32; NR] = rhs[p * n + j0..p * n + j0 + NR]
                .try_into()
                .expect("NR-wide rhs strip");
            for (acc_r, lhs_panel) in acc.iter_mut().zip(lhs_panels) {
                let a = lhs_panel[off];
                if ZERO_SKIP && a == 0.0 {
                    continue;
                }
                for (acc_v, &b) in acc_r.iter_mut().zip(lane) {
                    *acc_v += a * b;
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            let base = (i + r) * n + j0;
            out_rows[base..base + NR].copy_from_slice(acc_r);
        }
        j0 += NR;
    }
}

/// `out[m×n] += lhs[m×k] @ rhs[k×n]` for a contiguous block of rows
/// starting at `row0`, via the register-tile microkernel. `out_rows` holds
/// exactly the output rows of the block.
///
/// Geometry: for each `K_BLOCK` inner panel, rows are walked in bands of
/// [`MR`] and columns in strips of [`NR`]; each `MR`×`NR` tile is loaded
/// into a fixed-size accumulator array, updated with ascending-`p` FMAs
/// across the panel, and stored back once. Loading the tile from `out` at
/// panel entry (rather than zeroing it) means each element performs exactly
/// the same addition sequence as the blocked kernel and the naive oracle —
/// ascending `p` with the lhs `0.0` skip — so results stay bit-identical.
/// Column remainders (`n % NR`) and row remainders (`rows % MR`) fall back
/// to the scalar panel loop in the same order.
fn matmul_rows(lhs: &[f32], rhs: &[f32], out_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_rows.len() / n.max(1);
    let n_main = n - n % NR;
    // One dispatch decision per kernel call, hoisted out of the band loops.
    let simd = crate::simd::active();
    for p0 in (0..k).step_by(K_BLOCK) {
        let p1 = (p0 + K_BLOCK).min(k);
        let mut i = 0;
        while i + MR <= rows {
            let band = (row0 + i) * k;
            // Pre-slice each row's K panel so the p loop is bounds-check free.
            let lhs_panels: [&[f32]; MR] =
                std::array::from_fn(|r| &lhs[band + r * k + p0..band + r * k + p1]);
            // The zero-skip contract (`a == 0.0` contributes nothing, not
            // `acc + 0.0*b`) only fires when a panel holds an exact zero.
            // Scan once per band×panel and dispatch: the dense path drops
            // the per-element branch so the FMA tile stays straight-line,
            // and is trivially bit-identical because no element would have
            // been skipped anyway.
            let dense = lhs_panels
                .iter()
                .all(|panel| panel.iter().all(|&a| a != 0.0));
            if simd {
                // SAFETY: `simd::active()` returned true, so the host was
                // runtime-verified to support the AVX2 bodies; the slice
                // geometry is exactly what the scalar `band_tiles` uses.
                unsafe {
                    crate::simd::band_tiles(!dense, &lhs_panels, rhs, out_rows, i, p0, n_main, n);
                }
            } else if dense {
                band_tiles::<false>(&lhs_panels, rhs, out_rows, i, p0, n_main, n);
            } else {
                band_tiles::<true>(&lhs_panels, rhs, out_rows, i, p0, n_main, n);
            }
            // Scalar column tail: same ascending-p order over j >= n_main.
            if n_main < n {
                for (r, lhs_panel) in lhs_panels.iter().enumerate() {
                    let out_row = &mut out_rows[(i + r) * n + n_main..(i + r + 1) * n];
                    for (off, p) in (p0..p1).enumerate() {
                        let a = lhs_panel[off];
                        if a == 0.0 {
                            continue;
                        }
                        let rhs_tail = &rhs[p * n + n_main..(p + 1) * n];
                        for (o, &b) in out_row.iter_mut().zip(rhs_tail) {
                            *o += a * b;
                        }
                    }
                }
            }
            i += MR;
        }
        // Row remainder: the shared scalar panel loop.
        for ii in i..rows {
            blocked_row_panel(lhs, rhs, out_rows, row0, ii, p0, p1, k, n);
        }
    }
}

/// Counts which kernel body the dispatcher selected, so obs profiles (and
/// the obs-diff CI gate) surface silent fallbacks to the scalar path.
fn record_kernel_dispatch() {
    if ftsim_obs::enabled() {
        let name = if crate::simd::active() {
            "tensor.kernel.dispatch.simd"
        } else {
            "tensor.kernel.dispatch.scalar"
        };
        ftsim_obs::registry().counter_add(name, 1);
    }
}

/// Fills `out` (zero-initialized, length `m*n`) with `lhs[m×k] @ rhs[k×n]`,
/// splitting row blocks across up to [`thread_count`] scoped threads when
/// the product is large enough to amortize the spawns.
pub(crate) fn matmul_into(lhs: &[f32], rhs: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let _span = ftsim_obs::span("tensor.kernel", "matmul");
    record_kernel_dispatch();
    let threads = thread_count().min(m).max(1);
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if threads <= 1 || flops < PARALLEL_FLOP_THRESHOLD {
        matmul_rows(lhs, rhs, out, 0, k, n);
        return;
    }
    let rows_per_thread = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (block, out_rows) in out.chunks_mut(rows_per_thread * n).enumerate() {
            scope.spawn(move || {
                matmul_rows(lhs, rhs, out_rows, block * rows_per_thread, k, n);
            });
        }
    });
}

/// `dst[j] += src[j]`, SIMD-dispatched. Lane-parallel adds touch each
/// element independently, so the SIMD body is bit-identical to this scalar
/// loop — no accumulation order exists to preserve.
pub(crate) fn add_assign_slices(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    if crate::simd::active() {
        // SAFETY: runtime-verified AVX2 support; equal lengths asserted.
        unsafe { crate::simd::add_assign(dst, src) }
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[j] += a * src[j]`, SIMD-dispatched with mul-then-add rounding on
/// both paths (never fmadd), so the two bodies are bit-identical.
pub(crate) fn axpy_slices(dst: &mut [f32], a: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    if crate::simd::active() {
        // SAFETY: runtime-verified AVX2 support; equal lengths asserted.
        unsafe { crate::simd::axpy(dst, a, src) }
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += a * s;
    }
}

/// Bias + activation epilogue over a block of freshly-computed matmul output
/// rows, applied while the tile is still cache-hot: each element becomes
/// `act(v + bias[j])`, and the post-bias pre-activation value is optionally
/// saved into `pre_rows` (same layout as `out_rows`) for the backward pass.
///
/// The bias add is the SIMD-dispatched [`add_assign_slices`]; the
/// activation stays scalar on purpose — `Gelu`/`Silu`/`Tanh` go through
/// libm and `Relu` relies on `f32::max` NaN/`-0.0` semantics that
/// `_mm256_max_ps` does not reproduce.
fn epilogue_rows(
    out_rows: &mut [f32],
    mut pre_rows: Option<&mut [f32]>,
    bias: Option<&[f32]>,
    act: crate::ops::Activation,
    n: usize,
) {
    if n == 0 {
        return;
    }
    for (ri, row) in out_rows.chunks_mut(n).enumerate() {
        if let Some(b) = bias {
            // Same per-element `v + bias[j]` add the scalar epilogue did.
            add_assign_slices(row, b);
        }
        if let Some(pre) = pre_rows.as_deref_mut() {
            pre[ri * n..(ri + 1) * n].copy_from_slice(row);
        }
        for o in row.iter_mut() {
            *o = act.apply(*o);
        }
    }
}

/// Fused `out = act(lhs @ rhs + bias)` using the same microkernel matmul as
/// [`matmul_into`], with the bias/activation epilogue running inside each
/// worker's row block. `pre`, when given, receives the pre-activation
/// (post-bias) values — the autograd fused node needs them for `act'`.
///
/// Bit-identical to matmul → row-bias add → elementwise activation at any
/// thread count: the matmul accumulation order is unchanged and the epilogue
/// performs the identical per-element `+ bias[j]` then `act(·)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_bias_act_into(
    lhs: &[f32],
    rhs: &[f32],
    bias: Option<&[f32]>,
    act: crate::ops::Activation,
    out: &mut [f32],
    pre: Option<&mut [f32]>,
    m: usize,
    k: usize,
    n: usize,
) {
    record_kernel_dispatch();
    let threads = thread_count().min(m).max(1);
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if threads <= 1 || flops < PARALLEL_FLOP_THRESHOLD {
        matmul_rows(lhs, rhs, out, 0, k, n);
        epilogue_rows(out, pre, bias, act, n);
        return;
    }
    let rows_per_thread = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut pre_rest = pre;
        for (block, out_rows) in out.chunks_mut(rows_per_thread * n).enumerate() {
            let pre_rows = pre_rest.take().map(|p| {
                let (head, tail) = p.split_at_mut(out_rows.len());
                pre_rest = Some(tail);
                head
            });
            scope.spawn(move || {
                matmul_rows(lhs, rhs, out_rows, block * rows_per_thread, k, n);
                epilogue_rows(out_rows, pre_rows, bias, act, n);
            });
        }
    });
}

/// Streaming fused backward epilogue for `y = act(x @ w + b)`.
///
/// Given the upstream gradient `up[m×n]` and the saved pre-activation
/// `pre[m×n]` (`None` means the activation was `Identity`), accumulates
///
/// * `db[n]    += Σ_r dpre[r]`                (bias gradient)
/// * `dx[m×k]  = dpre @ wᵀ`                   (input gradient)
/// * `dw[k×n]  = xᵀ @ dpre`                   (weight gradient)
///
/// where `dpre[r][j] = up[r][j] · act'(pre[r][j])` — but `dpre` is never
/// materialized as an `m×n` tensor. Instead a single row (`dpre_row`,
/// caller-provided scratch of length `n`) is recomputed per input row and
/// folded straight into the three accumulations. Each output is optional:
/// pass `None` for operands that do not require gradients and the
/// corresponding sweep is skipped entirely.
///
/// Bit-identity with the composed path (`dpre = up ⊙ act'(pre)` followed by
/// `dpre @ wᵀ` / `xᵀ @ dpre` matmuls and the row-sum bias reduction):
///
/// * `db[j]` adds `dpre[r][j]` in ascending `r` — the row-sum order.
/// * `dx[r][c]` accumulates `dpre[r][p] · w[c][p]` in ascending `p`,
///   skipping zero `dpre` factors — the matmul contract with `dpre` as lhs.
/// * `dw[c][j]` accumulates `x[r][c] · dpre[r][j]` in ascending `r`,
///   skipping zero `x` factors — the matmul contract with `xᵀ` as lhs.
///
/// All three outputs must be zero-initialized. Serial by design: this is
/// the small/medium-shape path (the per-step training hot loop); callers
/// fall back to the materialized matmul path — bit-identical by the above —
/// when shapes are large enough for row-partitioned threading to win.
#[allow(clippy::too_many_arguments)]
pub(crate) fn linear_act_backward_into(
    up: &[f32],
    pre: Option<&[f32]>,
    act: crate::ops::Activation,
    x: &[f32],
    w: &[f32],
    mut db: Option<&mut [f32]>,
    mut dx: Option<&mut [f32]>,
    mut dw: Option<&mut [f32]>,
    dpre_row: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(up.len(), m * n, "upstream gradient length");
    assert_eq!(x.len(), m * k, "input length");
    assert_eq!(w.len(), k * n, "weight length");
    assert_eq!(dpre_row.len(), n, "dpre scratch length");
    if let Some(d) = db.as_deref() {
        assert_eq!(d.len(), n, "bias gradient length");
    }
    if let Some(d) = dx.as_deref() {
        assert_eq!(d.len(), m * k, "input gradient length");
    }
    if let Some(d) = dw.as_deref() {
        assert_eq!(d.len(), k * n, "weight gradient length");
    }
    if let Some(p) = pre {
        assert_eq!(p.len(), m * n, "pre-activation length");
    }
    for r in 0..m {
        let up_row = &up[r * n..(r + 1) * n];
        match pre {
            Some(pre_all) => {
                let pre_row = &pre_all[r * n..(r + 1) * n];
                for ((d, &g), &p) in dpre_row.iter_mut().zip(up_row).zip(pre_row) {
                    *d = g * act.grad(p);
                }
            }
            None => dpre_row.copy_from_slice(up_row),
        }
        if let Some(db) = db.as_deref_mut() {
            // Lane-parallel over j: ascending-r order per element preserved.
            add_assign_slices(db, dpre_row);
        }
        if let Some(dx) = dx.as_deref_mut() {
            // Stays scalar on purpose: dx[r][c] reduces along the would-be
            // vector axis (a dot product in ascending p), and any lane-wise
            // horizontal reduction would reorder those sums and break the
            // bit-identity contract.
            let dx_row = &mut dx[r * k..(r + 1) * k];
            for (c, slot) in dx_row.iter_mut().enumerate() {
                let w_row = &w[c * n..(c + 1) * n];
                let mut acc = *slot;
                for (p, &g) in dpre_row.iter().enumerate() {
                    if g == 0.0 {
                        continue;
                    }
                    acc += g * w_row[p];
                }
                *slot = acc;
            }
        }
        if let Some(dw) = dw.as_deref_mut() {
            let x_row = &x[r * k..(r + 1) * k];
            for (c, &a) in x_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                // Lane-parallel axpy over j: ascending-r order per element,
                // with the xᵀ-as-lhs zero-skip handled on the broadcast
                // factor above — identical to the scalar sweep.
                axpy_slices(&mut dw[c * n..(c + 1) * n], a, dpre_row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive(lhs: &[f32], rhs: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        matmul_naive_into(lhs, rhs, &mut out, m, k, n);
        out
    }

    fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
        // Deterministic non-trivial values spanning sign and magnitude.
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 23) as f32) - 0.5
            })
            .collect()
    }

    /// Like `pseudo_data`, but with roughly a quarter of the entries exactly
    /// zero so kernels exercise the lhs zero-skip branch.
    fn sparse_data(len: usize, seed: u64) -> Vec<f32> {
        let mut data = pseudo_data(len, seed);
        let mut state = seed ^ 0x9e3779b97f4a7c15;
        for v in &mut data {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state.is_multiple_of(4) {
                *v = 0.0;
            }
        }
        data
    }

    #[test]
    fn env_parsing_matches_engine_semantics() {
        assert_eq!(resolve_thread_count(Some("3")), 3);
        let default = resolve_thread_count(None);
        assert!(default >= 1);
        assert_eq!(resolve_thread_count(Some("0")), default);
        assert_eq!(resolve_thread_count(Some("no")), default);
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_naive() {
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (17, 130, 9),
            (64, 64, 64),
            (33, 200, 41),
        ] {
            let lhs = sparse_data(m * k, 11);
            let rhs = pseudo_data(k * n, 23);
            let mut blocked = vec![0.0f32; m * n];
            matmul_blocked_into(&lhs, &rhs, &mut blocked, m, k, n);
            let mut micro = vec![0.0f32; m * n];
            matmul_rows(&lhs, &rhs, &mut micro, 0, k, n);
            let expect = naive(&lhs, &rhs, m, k, n);
            assert!(
                blocked
                    .iter()
                    .zip(&expect)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "blocked kernel diverged at ({m},{k},{n})"
            );
            assert!(
                micro
                    .iter()
                    .zip(&expect)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "microkernel diverged at ({m},{k},{n})"
            );
        }
    }

    proptest! {
        /// The accumulation-order contract, machine-enforced: for arbitrary
        /// shapes (remainders included) and sparse data, the microkernel,
        /// the blocked reference, and the naive oracle agree bit-for-bit.
        #[test]
        fn prop_microkernel_matches_naive_and_blocked_bitwise(
            m in 1usize..14,
            k in 1usize..150,
            n in 1usize..28,
            seed in 0u64..512,
            sparse in 0usize..2,
        ) {
            // Sparse lhs drives the zero-skip tile path; dense lhs drives
            // the straight-line dispatch. Both must match the oracle.
            let lhs = if sparse == 1 {
                sparse_data(m * k, seed.wrapping_mul(2).wrapping_add(1))
            } else {
                pseudo_data(m * k, seed.wrapping_mul(2).wrapping_add(1))
            };
            let rhs = pseudo_data(k * n, seed.wrapping_mul(3).wrapping_add(7));
            let expect = naive(&lhs, &rhs, m, k, n);
            let mut blocked = vec![0.0f32; m * n];
            matmul_blocked_into(&lhs, &rhs, &mut blocked, m, k, n);
            let mut micro = vec![0.0f32; m * n];
            matmul_microkernel_into(&lhs, &rhs, &mut micro, m, k, n);
            prop_assert!(
                blocked.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits()),
                "blocked kernel diverged at ({},{},{})", m, k, n
            );
            prop_assert!(
                micro.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits()),
                "microkernel diverged at ({},{},{})", m, k, n
            );
        }
    }

    proptest! {
        /// Scalar vs SIMD dispatch, machine-enforced: for arbitrary shapes —
        /// including non-multiple-of-8 column counts (tail lanes), widths
        /// crossing the 16-wide main tile, and sparse (zero-band) lhs — the
        /// forced-scalar and forced-SIMD kernels both match the oracle
        /// bit-for-bit. On hosts without AVX2 the forced-SIMD run downgrades
        /// to scalar, so the assertion still holds.
        #[test]
        fn prop_simd_dispatch_matches_scalar_bitwise(
            m in 1usize..14,
            k in 1usize..150,
            n in 1usize..40,
            seed in 0u64..256,
            sparse in 0usize..2,
        ) {
            let lhs = if sparse == 1 {
                sparse_data(m * k, seed.wrapping_mul(5).wrapping_add(3))
            } else {
                pseudo_data(m * k, seed.wrapping_mul(5).wrapping_add(3))
            };
            let rhs = pseudo_data(k * n, seed.wrapping_mul(7).wrapping_add(11));
            let expect = naive(&lhs, &rhs, m, k, n);
            // Both forced modes are compared against the oracle (not each
            // other) so concurrent tests racing on the global override can
            // never invalidate the assertion: every body is bit-identical.
            crate::simd::force(Some(false));
            let mut scalar = vec![0.0f32; m * n];
            matmul_microkernel_into(&lhs, &rhs, &mut scalar, m, k, n);
            crate::simd::force(Some(true));
            let mut simd = vec![0.0f32; m * n];
            matmul_microkernel_into(&lhs, &rhs, &mut simd, m, k, n);
            crate::simd::force(None);
            prop_assert!(
                scalar.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits()),
                "forced-scalar kernel diverged at ({},{},{})", m, k, n
            );
            prop_assert!(
                simd.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits()),
                "forced-SIMD kernel diverged at ({},{},{})", m, k, n
            );
        }
    }

    #[test]
    fn simd_helpers_match_scalar_sweeps_bitwise() {
        // add_assign / axpy across lengths covering the vector body and the
        // scalar tail, under both forced dispatch modes.
        for len in [1usize, 7, 8, 9, 16, 31, 64, 100] {
            let src = pseudo_data(len, 71);
            let base = pseudo_data(len, 73);
            let mut expect_add = base.clone();
            for (d, &s) in expect_add.iter_mut().zip(&src) {
                *d += s;
            }
            let a = 0.37f32;
            let mut expect_axpy = base.clone();
            for (d, &s) in expect_axpy.iter_mut().zip(&src) {
                *d += a * s;
            }
            for forced in [Some(false), Some(true)] {
                crate::simd::force(forced);
                let mut add = base.clone();
                add_assign_slices(&mut add, &src);
                let mut axpy = base.clone();
                axpy_slices(&mut axpy, a, &src);
                assert!(
                    add.iter()
                        .zip(&expect_add)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "add_assign diverged at len {len} (forced {forced:?})"
                );
                assert!(
                    axpy.iter()
                        .zip(&expect_axpy)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "axpy diverged at len {len} (forced {forced:?})"
                );
            }
            crate::simd::force(None);
        }
    }

    #[test]
    fn fused_epilogue_matches_composed_passes() {
        use crate::ops::Activation;
        let (m, k, n) = (9, 70, 11);
        let lhs = pseudo_data(m * k, 3);
        let rhs = pseudo_data(k * n, 7);
        let bias = pseudo_data(n, 13);
        for forced in [Some(false), Some(true)] {
            crate::simd::force(forced);
            for act in [
                Activation::Identity,
                Activation::Relu,
                Activation::Gelu,
                Activation::Silu,
                Activation::Tanh,
            ] {
                let mut fused = vec![0.0f32; m * n];
                let mut pre = vec![0.0f32; m * n];
                matmul_bias_act_into(
                    &lhs,
                    &rhs,
                    Some(&bias),
                    act,
                    &mut fused,
                    Some(&mut pre),
                    m,
                    k,
                    n,
                );
                let mut composed = naive(&lhs, &rhs, m, k, n);
                for (i, v) in composed.iter_mut().enumerate() {
                    *v += bias[i % n];
                }
                for i in 0..m * n {
                    assert_eq!(pre[i].to_bits(), composed[i].to_bits(), "pre diverged");
                    assert_eq!(
                        fused[i].to_bits(),
                        act.apply(composed[i]).to_bits(),
                        "fused output diverged for {act:?} (forced {forced:?})"
                    );
                }
            }
        }
        crate::simd::force(None);
    }

    #[test]
    fn fused_row_partitioning_is_bit_identical() {
        use crate::ops::Activation;
        // Simulate the parallel split by running the serial fused kernel on
        // disjoint row chunks, exactly as matmul_bias_act_into's workers do.
        let (m, k, n) = (23, 80, 17);
        let lhs = pseudo_data(m * k, 31);
        let rhs = pseudo_data(k * n, 37);
        let bias = pseudo_data(n, 41);
        let mut reference = vec![0.0f32; m * n];
        let mut ref_pre = vec![0.0f32; m * n];
        matmul_bias_act_into(
            &lhs,
            &rhs,
            Some(&bias),
            Activation::Gelu,
            &mut reference,
            Some(&mut ref_pre),
            m,
            k,
            n,
        );
        for workers in [2, 5] {
            let rows_per = m.div_ceil(workers);
            let mut out = vec![0.0f32; m * n];
            let mut pre = vec![0.0f32; m * n];
            for ((block, chunk), pre_chunk) in out
                .chunks_mut(rows_per * n)
                .enumerate()
                .zip(pre.chunks_mut(rows_per * n))
            {
                matmul_rows(&lhs, &rhs, chunk, block * rows_per, k, n);
                epilogue_rows(chunk, Some(pre_chunk), Some(&bias), Activation::Gelu, n);
            }
            assert!(
                out.iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                    && pre
                        .iter()
                        .zip(&ref_pre)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{workers}-way fused split diverged"
            );
        }
    }

    #[test]
    fn row_partitioning_is_bit_identical() {
        // Simulate the parallel split at several worker counts by calling
        // the row-block kernel directly on disjoint chunks.
        let (m, k, n) = (37, 96, 29);
        let lhs = sparse_data(m * k, 5);
        let rhs = pseudo_data(k * n, 9);
        let mut reference = vec![0.0f32; m * n];
        matmul_rows(&lhs, &rhs, &mut reference, 0, k, n);
        for workers in [2, 3, 8] {
            let rows_per = m.div_ceil(workers);
            let mut out = vec![0.0f32; m * n];
            for (block, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                matmul_rows(&lhs, &rhs, chunk, block * rows_per, k, n);
            }
            assert!(
                out.iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{workers}-way split diverged"
            );
        }
    }

    /// Composed reference for the fused backward epilogue: materialize dpre,
    /// then run the three grad products through the naive oracle exactly as
    /// the pre-fusion autograd closure did.
    #[allow(clippy::too_many_arguments)]
    fn composed_backward(
        up: &[f32],
        pre: Option<&[f32]>,
        act: crate::ops::Activation,
        x: &[f32],
        w: &[f32],
        m: usize,
        k: usize,
        n: usize,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let dpre: Vec<f32> = match pre {
            Some(pre_all) => up
                .iter()
                .zip(pre_all)
                .map(|(&g, &p)| g * act.grad(p))
                .collect(),
            None => up.to_vec(),
        };
        let mut db = vec![0.0f32; n];
        for r in 0..m {
            for (d, &g) in db.iter_mut().zip(&dpre[r * n..(r + 1) * n]) {
                *d += g;
            }
        }
        let mut wt = vec![0.0f32; n * k];
        for c in 0..k {
            for j in 0..n {
                wt[j * k + c] = w[c * n + j];
            }
        }
        let mut dx = vec![0.0f32; m * k];
        matmul_naive_into(&dpre, &wt, &mut dx, m, n, k);
        let mut xt = vec![0.0f32; k * m];
        for r in 0..m {
            for c in 0..k {
                xt[c * m + r] = x[r * k + c];
            }
        }
        let mut dw = vec![0.0f32; k * n];
        matmul_naive_into(&xt, &dpre, &mut dw, k, m, n);
        (db, dx, dw)
    }

    #[test]
    fn streaming_backward_epilogue_matches_composed_path_bitwise() {
        use crate::ops::Activation;
        for (forced, (m, k, n)) in [Some(false), Some(true), None]
            .into_iter()
            .flat_map(|f| {
                [(1, 1, 1), (5, 3, 7), (13, 70, 9), (8, 8, 8), (6, 9, 21)]
                    .into_iter()
                    .map(move |shape| (f, shape))
            })
            .collect::<Vec<_>>()
        {
            crate::simd::force(forced);
            for act in [
                Activation::Identity,
                Activation::Relu,
                Activation::Gelu,
                Activation::Silu,
                Activation::Tanh,
            ] {
                let up = sparse_data(m * n, 51);
                let pre_data = pseudo_data(m * n, 53);
                let pre = (act != Activation::Identity).then_some(pre_data.as_slice());
                let x = sparse_data(m * k, 57);
                let w = pseudo_data(k * n, 59);
                let (db_ref, dx_ref, dw_ref) = composed_backward(&up, pre, act, &x, &w, m, k, n);
                let mut db = vec![0.0f32; n];
                let mut dx = vec![0.0f32; m * k];
                let mut dw = vec![0.0f32; k * n];
                let mut scratch = vec![0.0f32; n];
                linear_act_backward_into(
                    &up,
                    pre,
                    act,
                    &x,
                    &w,
                    Some(&mut db),
                    Some(&mut dx),
                    Some(&mut dw),
                    &mut scratch,
                    m,
                    k,
                    n,
                );
                let same =
                    |a: &[f32], b: &[f32]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same(&db, &db_ref), "db diverged for {act:?} ({m},{k},{n})");
                assert!(same(&dx, &dx_ref), "dx diverged for {act:?} ({m},{k},{n})");
                assert!(same(&dw, &dw_ref), "dw diverged for {act:?} ({m},{k},{n})");
            }
        }
        crate::simd::force(None);
    }
}
