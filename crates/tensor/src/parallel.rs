//! Thread configuration and the blocked matmul kernel.
//!
//! `ftsim-tensor` cannot depend on `ftsim-sim`'s engine (the dependency
//! points the other way), so it reads the same `FTSIM_THREADS` environment
//! variable itself. The matmul kernel here is cache-blocked over the inner
//! dimension and row-partitioned across scoped threads; because each output
//! row accumulates its products in the same ascending-`p` order regardless
//! of partitioning, results are bit-identical at every thread count.

/// Environment variable overriding the worker-thread count (shared with
/// `ftsim-sim`'s engine).
pub const THREADS_ENV: &str = "FTSIM_THREADS";

/// Inner-dimension panel width: 64 lhs columns × 4 B keeps a panel of the
/// rhs rows resident in L1/L2 while a row block streams over it.
const K_BLOCK: usize = 64;

/// Below this many multiply-adds the thread-spawn overhead outweighs the
/// work; run on the calling thread.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 20;

/// Worker threads to use: `FTSIM_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    resolve_thread_count(std::env::var(THREADS_ENV).ok().as_deref())
}

fn resolve_thread_count(env_value: Option<&str>) -> usize {
    env_value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// `out[m×n] += lhs[m×k] @ rhs[k×n]` for a contiguous block of rows
/// starting at `row0`. `out_rows` holds exactly the output rows of the
/// block. Accumulation order per output element is ascending `p`, matching
/// the naive i-k-j kernel bit-for-bit.
fn matmul_rows(lhs: &[f32], rhs: &[f32], out_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = out_rows.len() / n.max(1);
    for p0 in (0..k).step_by(K_BLOCK) {
        let p1 = (p0 + K_BLOCK).min(k);
        for i in 0..rows {
            let lhs_row = &lhs[(row0 + i) * k..(row0 + i + 1) * k];
            let out_row = &mut out_rows[i * n..(i + 1) * n];
            for p in p0..p1 {
                let a = lhs_row[p];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }
}

/// Fills `out` (zero-initialized, length `m*n`) with `lhs[m×k] @ rhs[k×n]`,
/// splitting row blocks across up to [`thread_count`] scoped threads when
/// the product is large enough to amortize the spawns.
pub(crate) fn matmul_into(lhs: &[f32], rhs: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let _span = ftsim_obs::span("tensor.kernel", "matmul");
    let threads = thread_count().min(m).max(1);
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if threads <= 1 || flops < PARALLEL_FLOP_THRESHOLD {
        matmul_rows(lhs, rhs, out, 0, k, n);
        return;
    }
    let rows_per_thread = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (block, out_rows) in out.chunks_mut(rows_per_thread * n).enumerate() {
            scope.spawn(move || {
                matmul_rows(lhs, rhs, out_rows, block * rows_per_thread, k, n);
            });
        }
    });
}

/// Bias + activation epilogue over a block of freshly-computed matmul output
/// rows, applied while the tile is still cache-hot: each element becomes
/// `act(v + bias[j])`, and the post-bias pre-activation value is optionally
/// saved into `pre_rows` (same layout as `out_rows`) for the backward pass.
fn epilogue_rows(
    out_rows: &mut [f32],
    mut pre_rows: Option<&mut [f32]>,
    bias: Option<&[f32]>,
    act: crate::ops::Activation,
    n: usize,
) {
    if n == 0 {
        return;
    }
    for (ri, row) in out_rows.chunks_mut(n).enumerate() {
        for (j, o) in row.iter_mut().enumerate() {
            let mut v = *o;
            if let Some(b) = bias {
                v += b[j];
            }
            if let Some(pre) = pre_rows.as_deref_mut() {
                pre[ri * n + j] = v;
            }
            *o = act.apply(v);
        }
    }
}

/// Fused `out = act(lhs @ rhs + bias)` using the same blocked matmul kernel
/// as [`matmul_into`], with the bias/activation epilogue running inside each
/// worker's row block. `pre`, when given, receives the pre-activation
/// (post-bias) values — the autograd fused node needs them for `act'`.
///
/// Bit-identical to matmul → row-bias add → elementwise activation at any
/// thread count: the matmul accumulation order is unchanged and the epilogue
/// performs the identical per-element `+ bias[j]` then `act(·)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_bias_act_into(
    lhs: &[f32],
    rhs: &[f32],
    bias: Option<&[f32]>,
    act: crate::ops::Activation,
    out: &mut [f32],
    pre: Option<&mut [f32]>,
    m: usize,
    k: usize,
    n: usize,
) {
    let threads = thread_count().min(m).max(1);
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if threads <= 1 || flops < PARALLEL_FLOP_THRESHOLD {
        matmul_rows(lhs, rhs, out, 0, k, n);
        epilogue_rows(out, pre, bias, act, n);
        return;
    }
    let rows_per_thread = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut pre_rest = pre;
        for (block, out_rows) in out.chunks_mut(rows_per_thread * n).enumerate() {
            let pre_rows = pre_rest.take().map(|p| {
                let (head, tail) = p.split_at_mut(out_rows.len());
                pre_rest = Some(tail);
                head
            });
            scope.spawn(move || {
                matmul_rows(lhs, rhs, out_rows, block * rows_per_thread, k, n);
                epilogue_rows(out_rows, pre_rows, bias, act, n);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(lhs: &[f32], rhs: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = lhs[i * k + p];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += a * rhs[p * n + j];
                }
            }
        }
        out
    }

    fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
        // Deterministic non-trivial values spanning sign and magnitude.
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 23) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn env_parsing_matches_engine_semantics() {
        assert_eq!(resolve_thread_count(Some("3")), 3);
        let default = resolve_thread_count(None);
        assert!(default >= 1);
        assert_eq!(resolve_thread_count(Some("0")), default);
        assert_eq!(resolve_thread_count(Some("no")), default);
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_naive() {
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (17, 130, 9),
            (64, 64, 64),
            (33, 200, 41),
        ] {
            let lhs = pseudo_data(m * k, 11);
            let rhs = pseudo_data(k * n, 23);
            let mut out = vec![0.0f32; m * n];
            matmul_rows(&lhs, &rhs, &mut out, 0, k, n);
            let expect = naive(&lhs, &rhs, m, k, n);
            assert!(
                out.iter()
                    .zip(&expect)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "blocked kernel diverged at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn fused_epilogue_matches_composed_passes() {
        use crate::ops::Activation;
        let (m, k, n) = (9, 70, 11);
        let lhs = pseudo_data(m * k, 3);
        let rhs = pseudo_data(k * n, 7);
        let bias = pseudo_data(n, 13);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Gelu,
            Activation::Silu,
            Activation::Tanh,
        ] {
            let mut fused = vec![0.0f32; m * n];
            let mut pre = vec![0.0f32; m * n];
            matmul_bias_act_into(
                &lhs,
                &rhs,
                Some(&bias),
                act,
                &mut fused,
                Some(&mut pre),
                m,
                k,
                n,
            );
            let mut composed = naive(&lhs, &rhs, m, k, n);
            for (i, v) in composed.iter_mut().enumerate() {
                *v += bias[i % n];
            }
            for i in 0..m * n {
                assert_eq!(pre[i].to_bits(), composed[i].to_bits(), "pre diverged");
                assert_eq!(
                    fused[i].to_bits(),
                    act.apply(composed[i]).to_bits(),
                    "fused output diverged for {act:?}"
                );
            }
        }
    }

    #[test]
    fn fused_row_partitioning_is_bit_identical() {
        use crate::ops::Activation;
        // Simulate the parallel split by running the serial fused kernel on
        // disjoint row chunks, exactly as matmul_bias_act_into's workers do.
        let (m, k, n) = (23, 80, 17);
        let lhs = pseudo_data(m * k, 31);
        let rhs = pseudo_data(k * n, 37);
        let bias = pseudo_data(n, 41);
        let mut reference = vec![0.0f32; m * n];
        let mut ref_pre = vec![0.0f32; m * n];
        matmul_bias_act_into(
            &lhs,
            &rhs,
            Some(&bias),
            Activation::Gelu,
            &mut reference,
            Some(&mut ref_pre),
            m,
            k,
            n,
        );
        for workers in [2, 5] {
            let rows_per = m.div_ceil(workers);
            let mut out = vec![0.0f32; m * n];
            let mut pre = vec![0.0f32; m * n];
            for ((block, chunk), pre_chunk) in out
                .chunks_mut(rows_per * n)
                .enumerate()
                .zip(pre.chunks_mut(rows_per * n))
            {
                matmul_rows(&lhs, &rhs, chunk, block * rows_per, k, n);
                epilogue_rows(chunk, Some(pre_chunk), Some(&bias), Activation::Gelu, n);
            }
            assert!(
                out.iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                    && pre
                        .iter()
                        .zip(&ref_pre)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{workers}-way fused split diverged"
            );
        }
    }

    #[test]
    fn row_partitioning_is_bit_identical() {
        // Simulate the parallel split at several worker counts by calling
        // the row-block kernel directly on disjoint chunks.
        let (m, k, n) = (37, 96, 29);
        let lhs = pseudo_data(m * k, 5);
        let rhs = pseudo_data(k * n, 9);
        let mut reference = vec![0.0f32; m * n];
        matmul_rows(&lhs, &rhs, &mut reference, 0, k, n);
        for workers in [2, 3, 8] {
            let rows_per = m.div_ceil(workers);
            let mut out = vec![0.0f32; m * n];
            for (block, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                matmul_rows(&lhs, &rhs, chunk, block * rows_per, k, n);
            }
            assert!(
                out.iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{workers}-way split diverged"
            );
        }
    }
}
