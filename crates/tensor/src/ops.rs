//! Non-differentiable tensor operations: activations, reductions, softmax,
//! top-k, and normalization. These are plain functions over [`Tensor`]s; the
//! differentiable versions live in [`crate::autograd`].

use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};

/// Gaussian Error Linear Unit (tanh approximation), as used by the
/// BlackMamba expert FFN (Fig. 7 of the paper).
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let u = SQRT_2_OVER_PI * (x + 0.044_715 * x.powi(3));
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Sigmoid-weighted Linear Unit (`x * sigmoid(x)`, a.k.a. Swish), used by the
/// Mixtral SwiGLU experts (Fig. 7 of the paper).
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of [`silu`] with respect to its input.
pub fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s + x * s * (1.0 - s)
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Elementwise activation functions, the single source of truth shared by
/// the naive ops, the fused kernels, and the autograd engine — which is what
/// makes the fused and composed paths bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Activation {
    /// No activation (`y = x`).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// GELU (tanh approximation) — BlackMamba expert FFNs.
    Gelu,
    /// SiLU / Swish — Mixtral SwiGLU experts.
    Silu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to one element.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Gelu => gelu(x),
            Activation::Silu => silu(x),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation with respect to its input.
    pub fn grad(self, x: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Gelu => gelu_grad(x),
            Activation::Silu => silu_grad(x),
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }
}

/// Fused `act(x @ w + bias)` in one pass over each output tile: the matmul
/// epilogue applies the row bias and the activation while the tile is still
/// hot, instead of re-streaming the output through separate add/map passes.
///
/// Bit-identical to the composed path
/// `x.matmul(w)` → add `bias` row-wise → `map(act)`, because the epilogue
/// performs the same `+ bias[j]` then `act(·)` per element in the same
/// order; see the property tests.
///
/// # Examples
///
/// ```
/// use ftsim_tensor::{ops, Activation, Tensor};
///
/// let x = Tensor::from_rows(&[&[1.0, 2.0]]).unwrap();
/// let w = Tensor::from_rows(&[&[0.5], &[-1.0]]).unwrap();
/// let b = Tensor::from_rows(&[&[0.25]]).unwrap();
/// let y = ops::matmul_bias_act(&x, &w, Some(&b), Activation::Relu).unwrap();
/// // relu(1.0 * 0.5 + 2.0 * -1.0 + 0.25) = relu(-1.25) = 0.0
/// assert_eq!(y.data(), &[0.0]);
/// ```
///
/// # Errors
///
/// Returns a shape error if the operands are not conforming matrices or the
/// bias does not hold exactly one element per output column.
pub fn matmul_bias_act(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    act: Activation,
) -> Result<Tensor, TensorError> {
    let Some(out_shape) = x.shape().matmul(w.shape()) else {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bias_act",
            lhs: x.shape().clone(),
            rhs: w.shape().clone(),
        });
    };
    let (m, k) = x.shape().as_matrix().expect("checked above");
    let (_, n) = w.shape().as_matrix().expect("checked above");
    if let Some(b) = bias {
        if b.numel() != n {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias_act",
                lhs: x.shape().clone(),
                rhs: b.shape().clone(),
            });
        }
    }
    let _span = ftsim_obs::span("tensor.kernel", "matmul_bias_act");
    let mut out = Tensor::zeros(out_shape);
    crate::parallel::matmul_bias_act_into(
        x.data(),
        w.data(),
        bias.map(Tensor::data),
        act,
        out.data_mut(),
        None,
        m,
        k,
        n,
    );
    Ok(out)
}

/// Row-wise numerically-stable softmax of a matrix, fused: one max sweep,
/// then a single exp sweep writing straight into the output while the
/// denominator accumulates, then an in-place normalize — no per-row scratch
/// buffer. Bit-identical to [`softmax_rows_naive`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `logits` is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor, TensorError> {
    let (rows, cols) = logits.shape().as_matrix().ok_or_else(|| {
        TensorError::InvalidArgument(format!(
            "softmax_rows requires a matrix, got {}",
            logits.shape()
        ))
    })?;
    let _span = ftsim_obs::span("tensor.kernel", "softmax_rows");
    let mut out = Tensor::zeros(Shape::matrix(rows, cols));
    let out_data = out.data_mut();
    for r in 0..rows {
        let row = logits.row(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let out_row = &mut out_data[r * cols..(r + 1) * cols];
        let mut denom = 0.0;
        for (e, &x) in out_row.iter_mut().zip(row) {
            *e = (x - m).exp();
            denom += *e;
        }
        for e in out_row.iter_mut() {
            *e /= denom;
        }
    }
    Ok(out)
}

/// The original softmax implementation, kept as the reference path: it
/// allocates a scratch `exps` buffer per row and writes the result via
/// `set2`. [`softmax_rows`] must stay bit-identical to this.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `logits` is not rank-2.
pub fn softmax_rows_naive(logits: &Tensor) -> Result<Tensor, TensorError> {
    let (rows, cols) = logits.shape().as_matrix().ok_or_else(|| {
        TensorError::InvalidArgument(format!(
            "softmax_rows requires a matrix, got {}",
            logits.shape()
        ))
    })?;
    let mut out = Tensor::zeros(Shape::matrix(rows, cols));
    for r in 0..rows {
        let row = logits.row(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        let mut exps = vec![0.0f32; cols];
        for (e, &x) in exps.iter_mut().zip(row) {
            *e = (x - m).exp();
            denom += *e;
        }
        for (c, e) in exps.into_iter().enumerate() {
            out.set2(r, c, e / denom);
        }
    }
    Ok(out)
}

/// Indices and values of the `k` largest entries of `row`, descending.
///
/// Ties are broken by the lower index (stable against input order).
///
/// # Panics
///
/// Panics if `k == 0` or `k > row.len()`.
pub fn topk(row: &[f32], k: usize) -> Vec<(usize, f32)> {
    assert!(
        k >= 1 && k <= row.len(),
        "topk k={k} out of range for len {}",
        row.len()
    );
    let mut indexed: Vec<(usize, f32)> = row.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    indexed.truncate(k);
    indexed
}

/// Index of the maximum element of `row` (first on ties).
///
/// # Panics
///
/// Panics if `row` is empty.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Root-mean-square layer normalization (as used by Mixtral/BlackMamba),
/// applied row-wise: `x / sqrt(mean(x^2) + eps) * weight`.
///
/// # Errors
///
/// Returns a shape error if `x` is not a matrix or `weight` length differs
/// from the column count.
pub fn rms_norm_rows(x: &Tensor, weight: &[f32], eps: f32) -> Result<Tensor, TensorError> {
    let (rows, cols) = x.shape().as_matrix().ok_or_else(|| {
        TensorError::InvalidArgument(format!(
            "rms_norm_rows requires a matrix, got {}",
            x.shape()
        ))
    })?;
    if weight.len() != cols {
        return Err(TensorError::ShapeMismatch {
            op: "rms_norm_rows",
            lhs: x.shape().clone(),
            rhs: Shape::vector(weight.len()),
        });
    }
    let mut out = Tensor::zeros(Shape::matrix(rows, cols));
    for r in 0..rows {
        let row = x.row(r);
        let ms = row.iter().map(|v| v * v).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for c in 0..cols {
            out.set2(r, c, row[c] * inv * weight[c]);
        }
    }
    Ok(out)
}

/// Mean cross-entropy between row-wise `logits` and integer `labels`.
///
/// # Errors
///
/// Returns an error if shapes disagree or any label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<f32, TensorError> {
    let (rows, cols) = logits.shape().as_matrix().ok_or_else(|| {
        TensorError::InvalidArgument(format!(
            "cross_entropy requires a matrix, got {}",
            logits.shape()
        ))
    })?;
    if labels.len() != rows {
        return Err(TensorError::InvalidArgument(format!(
            "expected {rows} labels, got {}",
            labels.len()
        )));
    }
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        if label >= cols {
            return Err(TensorError::InvalidArgument(format!(
                "label {label} out of range for {cols} classes"
            )));
        }
        let row = logits.row(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        loss += lse - row[label];
    }
    Ok(loss / rows as f32)
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics if `logits` is not a matrix or label count differs from row count.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let (rows, _) = logits
        .shape()
        .as_matrix()
        .expect("accuracy requires a matrix");
    assert_eq!(labels.len(), rows, "label count must equal row count");
    if rows == 0 {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(r, &l)| argmax(logits.row(r)) == l)
        .count();
    correct as f64 / rows as f64
}

/// Population variance of a slice of counts — the load-imbalance metric the
/// paper reports for Fig. 11 (token-assignment variance across experts).
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};

    fn finite_diff(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let fd = finite_diff(gelu, x);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-2,
                "x={x}: {} vs {fd}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn silu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, 0.0, 0.5, 2.0] {
            let fd = finite_diff(silu, x);
            assert!((silu_grad(x) - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order() {
        let logits = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.get2(0, 2) > p.get2(0, 1));
        assert!((p.get2(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let b = a.map(|x| x + 100.0);
        assert!(softmax_rows(&a)
            .unwrap()
            .allclose(&softmax_rows(&b).unwrap(), 1e-5));
    }

    #[test]
    fn topk_returns_descending() {
        let picks = topk(&[0.1, 0.9, 0.5, 0.7], 2);
        assert_eq!(picks[0].0, 1);
        assert_eq!(picks[1].0, 3);
    }

    #[test]
    fn topk_breaks_ties_by_index() {
        let picks = topk(&[0.5, 0.5, 0.5], 2);
        assert_eq!(picks[0].0, 0);
        assert_eq!(picks[1].0, 1);
    }

    #[test]
    fn rms_norm_unit_rows() {
        let x = Tensor::from_rows(&[&[3.0, 4.0]]).unwrap();
        let out = rms_norm_rows(&x, &[1.0, 1.0], 0.0).unwrap();
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((out.get2(0, 0) - 3.0 / rms).abs() < 1e-5);
        assert!((out.get2(0, 1) - 4.0 / rms).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let logits = Tensor::from_rows(&[&[10.0, 0.0], &[0.0, 10.0]]).unwrap();
        let loss = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3);
        assert!(cross_entropy(&logits, &[1, 0]).unwrap() > 5.0);
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = Tensor::from_rows(&[&[0.0, 0.0]]).unwrap();
        assert!(cross_entropy(&logits, &[5]).is_err());
        assert!(cross_entropy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[5.0, 4.0]]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn variance_of_uniform_is_zero() {
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_softmax_rows_are_distributions(rows in 1usize..5, cols in 1usize..8, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let logits = Tensor::rand_uniform([rows, cols], 10.0, &mut rng);
            let p = softmax_rows(&logits).unwrap();
            for r in 0..rows {
                let s: f32 = p.row(r).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
                prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }

        #[test]
        fn prop_topk_values_dominate_rest(n in 2usize..10, k in 1usize..4, seed in 0u64..500) {
            let k = k.min(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let row: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0..5.0f32)).collect();
            let picks = topk(&row, k);
            let min_pick = picks.iter().map(|p| p.1).fold(f32::INFINITY, f32::min);
            let picked: std::collections::HashSet<usize> = picks.iter().map(|p| p.0).collect();
            for (i, &v) in row.iter().enumerate() {
                if !picked.contains(&i) {
                    prop_assert!(v <= min_pick + 1e-6);
                }
            }
        }

        #[test]
        fn prop_cross_entropy_nonnegative(rows in 1usize..6, cols in 2usize..6, seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let logits = Tensor::rand_uniform([rows, cols], 4.0, &mut rng);
            let labels: Vec<usize> = (0..rows).map(|_| rng.gen_range(0..cols)).collect();
            prop_assert!(cross_entropy(&logits, &labels).unwrap() >= 0.0);
        }

        #[test]
        fn prop_fused_matmul_bias_act_bit_identical_to_composed(
            (m, k, n) in (1usize..9, 1usize..80, 1usize..9),
            act_id in 0usize..5,
            bias_flag in 0usize..2,
            seed in 0u64..500,
        ) {
            let with_bias = bias_flag == 1;
            let act = [
                Activation::Identity,
                Activation::Relu,
                Activation::Gelu,
                Activation::Silu,
                Activation::Tanh,
            ][act_id];
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::rand_uniform([m, k], 2.0, &mut rng);
            let w = Tensor::rand_uniform([k, n], 2.0, &mut rng);
            let b = Tensor::rand_uniform([1, n], 2.0, &mut rng);
            let bias = with_bias.then_some(&b);

            let fused = matmul_bias_act(&x, &w, bias, act).unwrap();
            // Composed reference: matmul, then row bias, then activation map.
            let mut composed = x.matmul(&w).unwrap();
            if with_bias {
                for r in 0..m {
                    for c in 0..n {
                        composed.set2(r, c, composed.get2(r, c) + b.get2(0, c));
                    }
                }
            }
            let composed = composed.map(|v| act.apply(v));

            prop_assert_eq!(fused.shape(), composed.shape());
            for (a, e) in fused.data().iter().zip(composed.data()) {
                prop_assert_eq!(a.to_bits(), e.to_bits());
            }
        }

        #[test]
        fn prop_fused_softmax_bit_identical_to_naive(
            rows in 1usize..7, cols in 1usize..10, seed in 0u64..500,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let logits = Tensor::rand_uniform([rows, cols], 12.0, &mut rng);
            let fused = softmax_rows(&logits).unwrap();
            let naive = softmax_rows_naive(&logits).unwrap();
            for (a, e) in fused.data().iter().zip(naive.data()) {
                prop_assert_eq!(a.to_bits(), e.to_bits());
            }
        }

        #[test]
        fn prop_activation_grad_matches_finite_difference(
            act_id in 0usize..5, x in -2.5f32..2.5,
        ) {
            let act = [
                Activation::Identity,
                Activation::Relu,
                Activation::Gelu,
                Activation::Silu,
                Activation::Tanh,
            ][act_id];
            // Keep ReLU away from its kink, where the finite difference lies.
            let x = if act == Activation::Relu && x.abs() <= 1e-2 {
                x + 0.5
            } else {
                x
            };
            let fd = finite_diff(|v| act.apply(v), x);
            prop_assert!((act.grad(x) - fd).abs() < 2e-2, "{act:?}({x}): {} vs {fd}", act.grad(x));
        }
    }
}
