//! Neural-network building blocks on top of the autograd engine: linear
//! layers, mixture-of-experts layers with top-k gating, and optimizers
//! (SGD / AdamW).
//!
//! These power the *real* (CPU-scale) MoE fine-tuning experiments in
//! `ftsim-sim::moetrain` — the sparse-vs-dense trainability study (paper
//! Fig. 3) and the expert load-imbalance study (paper Fig. 11).

use crate::autograd::Var;
use crate::ops;
use crate::ops::Activation;
use crate::tensor::{Tensor, TensorError};
use rand::Rng;

/// A fully-connected layer `y = x @ W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Var,
    bias: Var,
}

impl Linear {
    /// Creates a layer with Kaiming-style uniform initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let scale = (1.0 / in_dim as f32).sqrt();
        Linear {
            weight: Var::parameter(Tensor::rand_uniform([in_dim, out_dim], scale, rng)),
            bias: Var::parameter(Tensor::zeros([1, out_dim])),
        }
    }

    /// Applies the layer to a `[tokens, in_dim]` batch via the fused
    /// matmul+bias kernel (bit-identical to the composed
    /// matmul-then-add_row path).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` has the wrong inner dimension.
    pub fn forward(&self, x: &Var) -> Result<Var, TensorError> {
        self.forward_act(x, Activation::Identity)
    }

    /// Fused `act(x @ W + b)` as a single graph node.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` has the wrong inner dimension.
    pub fn forward_act(&self, x: &Var, act: Activation) -> Result<Var, TensorError> {
        x.linear_act(&self.weight, &self.bias, act)
    }

    /// Reference composed path — matmul, row-bias, and activation as
    /// separate graph nodes. Retained so equivalence tests can prove the
    /// fused path bit-identical.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` has the wrong inner dimension.
    pub fn forward_naive(&self, x: &Var, act: Activation) -> Result<Var, TensorError> {
        let pre = x.matmul(&self.weight)?.add_row(&self.bias)?;
        Ok(match act {
            Activation::Identity => pre,
            act => pre.activate(act),
        })
    }

    /// Rebuilds a layer from snapshot tensors, in the order
    /// [`Linear::parameters`] reports them (weight, then bias).
    ///
    /// This is how the data-parallel trainer constructs per-thread model
    /// replicas: `Var` graphs are thread-local (`Rc`-based), so workers
    /// rebuild the model from a `Send` parameter snapshot instead of
    /// sharing variables.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not a matrix or `bias` does not hold one
    /// element per output column.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        let (_, out_dim) = weight
            .shape()
            .as_matrix()
            .expect("linear weight must be a matrix");
        assert_eq!(bias.numel(), out_dim, "bias length must match out_dim");
        Linear {
            weight: Var::parameter(weight),
            bias: Var::parameter(bias),
        }
    }

    /// The trainable parameters of this layer.
    pub fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    /// The weight matrix variable.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.weight.with_value(Tensor::numel) + self.bias.with_value(Tensor::numel)
    }
}

/// Expert feed-forward architecture, mirroring the paper's Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ExpertKind {
    /// `W2( gelu(W1 x) )` — BlackMamba-style expert.
    GeluFfn,
    /// `W2( silu(W1 x) ⊙ (W3 x) )` — Mixtral-style SwiGLU expert.
    SwiGlu,
}

/// One expert network of an MoE layer.
#[derive(Debug, Clone)]
pub struct Expert {
    kind: ExpertKind,
    w1: Linear,
    w2: Linear,
    w3: Option<Linear>,
}

impl Expert {
    /// Creates an expert with hidden width `hidden` and inner width `inner`.
    pub fn new(kind: ExpertKind, hidden: usize, inner: usize, rng: &mut impl Rng) -> Self {
        Expert {
            kind,
            w1: Linear::new(hidden, inner, rng),
            w2: Linear::new(inner, hidden, rng),
            w3: match kind {
                ExpertKind::SwiGlu => Some(Linear::new(hidden, inner, rng)),
                ExpertKind::GeluFfn => None,
            },
        }
    }

    /// Applies the expert to a `[tokens, hidden]` batch via the fused
    /// linear+activation kernels.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying linear layers.
    pub fn forward(&self, x: &Var) -> Result<Var, TensorError> {
        self.forward_with(x, true)
    }

    /// Applies the expert using either the fused kernels (`fused = true`,
    /// the production path) or the composed naive ops (`fused = false`, the
    /// retained reference path); the two are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying linear layers.
    pub fn forward_with(&self, x: &Var, fused: bool) -> Result<Var, TensorError> {
        let layer = |l: &Linear, x: &Var, act: Activation| {
            if fused {
                l.forward_act(x, act)
            } else {
                l.forward_naive(x, act)
            }
        };
        match self.kind {
            ExpertKind::GeluFfn => {
                let h = layer(&self.w1, x, Activation::Gelu)?;
                layer(&self.w2, &h, Activation::Identity)
            }
            ExpertKind::SwiGlu => {
                let gate = layer(&self.w1, x, Activation::Silu)?;
                let up = layer(
                    self.w3.as_ref().expect("SwiGlu expert always has W3"),
                    x,
                    Activation::Identity,
                )?;
                layer(&self.w2, &gate.mul(&up)?, Activation::Identity)
            }
        }
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.w1.parameters();
        p.extend(self.w2.parameters());
        if let Some(w3) = &self.w3 {
            p.extend(w3.parameters());
        }
        p
    }

    /// Rebuilds an expert from snapshot tensors drawn off `params`, in the
    /// order [`Expert::parameters`] reports them (w1, w2, then w3 for
    /// SwiGLU experts; weight before bias within each layer).
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields too few tensors or tensors of
    /// inconsistent shapes.
    pub fn from_parameters(kind: ExpertKind, params: &mut impl Iterator<Item = Tensor>) -> Self {
        let mut linear = |which: &str| {
            let weight = params
                .next()
                .unwrap_or_else(|| panic!("missing {which} weight"));
            let bias = params
                .next()
                .unwrap_or_else(|| panic!("missing {which} bias"));
            Linear::from_parts(weight, bias)
        };
        let w1 = linear("w1");
        let w2 = linear("w2");
        let w3 = match kind {
            ExpertKind::SwiGlu => Some(linear("w3")),
            ExpertKind::GeluFfn => None,
        };
        Expert { kind, w1, w2, w3 }
    }
}

/// Routing decision for one forward pass of an [`MoeLayer`].
#[derive(Debug, Clone, Default)]
pub struct RoutingStats {
    /// `tokens_per_expert[e]` = number of (token, expert) assignments sent to
    /// expert `e` during the pass.
    pub tokens_per_expert: Vec<usize>,
}

impl RoutingStats {
    /// Population variance of the per-expert token counts — the imbalance
    /// metric of the paper's Fig. 11.
    pub fn imbalance_variance(&self) -> f64 {
        let counts: Vec<f64> = self.tokens_per_expert.iter().map(|&c| c as f64).collect();
        ops::variance(&counts)
    }

    /// Counts normalized to percentages of all assignments.
    pub fn distribution_pct(&self) -> Vec<f64> {
        let total: usize = self.tokens_per_expert.iter().sum();
        if total == 0 {
            return vec![0.0; self.tokens_per_expert.len()];
        }
        self.tokens_per_expert
            .iter()
            .map(|&c| 100.0 * c as f64 / total as f64)
            .collect()
    }
}

/// A mixture-of-experts layer with top-k softmax gating, implementing the
/// pseudo-code of the paper's Fig. 12.
///
/// With `top_k == num_experts` this is the *dense* configuration; the paper's
/// *sparse* configuration uses `top_k = 2` of 8 experts.
#[derive(Debug, Clone)]
pub struct MoeLayer {
    gate: Linear,
    experts: Vec<Expert>,
    top_k: usize,
}

impl MoeLayer {
    /// Creates an MoE layer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `top_k` is zero or exceeds
    /// `num_experts`, or if `num_experts` is zero.
    pub fn new(
        kind: ExpertKind,
        hidden: usize,
        inner: usize,
        num_experts: usize,
        top_k: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, TensorError> {
        if num_experts == 0 {
            return Err(TensorError::InvalidArgument(
                "num_experts must be > 0".into(),
            ));
        }
        if top_k == 0 || top_k > num_experts {
            return Err(TensorError::InvalidArgument(format!(
                "top_k {top_k} out of range 1..={num_experts}"
            )));
        }
        Ok(MoeLayer {
            gate: Linear::new(hidden, num_experts, rng),
            experts: (0..num_experts)
                .map(|_| Expert::new(kind, hidden, inner, rng))
                .collect(),
            top_k,
        })
    }

    /// Rebuilds an MoE layer from snapshot tensors drawn off `params`, in
    /// the order [`MoeLayer::parameters`] reports them (gate first, then
    /// experts in order).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for the same `top_k` /
    /// `num_experts` violations as [`MoeLayer::new`].
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields too few tensors or tensors of
    /// inconsistent shapes.
    pub fn from_parameters(
        kind: ExpertKind,
        num_experts: usize,
        top_k: usize,
        params: &mut impl Iterator<Item = Tensor>,
    ) -> Result<Self, TensorError> {
        if num_experts == 0 {
            return Err(TensorError::InvalidArgument(
                "num_experts must be > 0".into(),
            ));
        }
        if top_k == 0 || top_k > num_experts {
            return Err(TensorError::InvalidArgument(format!(
                "top_k {top_k} out of range 1..={num_experts}"
            )));
        }
        let gate = Linear::from_parts(
            params.next().expect("missing gate weight"),
            params.next().expect("missing gate bias"),
        );
        let experts = (0..num_experts)
            .map(|_| Expert::from_parameters(kind, params))
            .collect();
        Ok(MoeLayer {
            gate,
            experts,
            top_k,
        })
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.experts.len()
    }

    /// Experts activated per token.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Sets the number of experts activated per token (sparse ↔ dense).
    ///
    /// # Errors
    ///
    /// Returns an error if `top_k` is out of range.
    pub fn set_top_k(&mut self, top_k: usize) -> Result<(), TensorError> {
        if top_k == 0 || top_k > self.experts.len() {
            return Err(TensorError::InvalidArgument(format!(
                "top_k {top_k} out of range 1..={}",
                self.experts.len()
            )));
        }
        self.top_k = top_k;
        Ok(())
    }

    /// Routes `x` (`[tokens, hidden]`) through the gated experts, returning
    /// the combined output and the routing statistics of this pass.
    ///
    /// Gradients flow into the gate through the selected softmax weights and
    /// into each expert through its weighted contribution.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the gate or experts.
    pub fn forward(&self, x: &Var) -> Result<(Var, RoutingStats), TensorError> {
        self.forward_with(x, true)
    }

    /// [`MoeLayer::forward`] with an explicit kernel choice: `fused = true`
    /// routes every linear layer through the fused matmul+bias+activation
    /// kernel, `fused = false` uses the composed naive ops. Both paths are
    /// bit-identical in values and gradients.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the gate or experts.
    pub fn forward_with(&self, x: &Var, fused: bool) -> Result<(Var, RoutingStats), TensorError> {
        let logits = if fused {
            self.gate.forward_act(x, Activation::Identity)?
        } else {
            self.gate.forward_naive(x, Activation::Identity)?
        };
        let logits_val = logits.value();
        let (tokens, e) = logits_val
            .shape()
            .as_matrix()
            .expect("gate output is a matrix");
        // Top-k selection (non-differentiable index choice, like torch.topk).
        let mut masks = vec![vec![false; e]; tokens];
        let mut stats = RoutingStats {
            tokens_per_expert: vec![0; e],
        };
        for (t, mask) in masks.iter_mut().enumerate() {
            for (idx, _) in ops::topk(logits_val.row(t), self.top_k) {
                mask[idx] = true;
                stats.tokens_per_expert[idx] += 1;
            }
        }
        // softmax over the selected experts only (paper Fig. 12, lines 2-3).
        let weights = logits.masked_softmax_rows(&masks)?;
        let weights_val = weights.value();

        // Combine expert outputs: out = Σ_e  w[:, e] ⊙ expert_e(x).
        // Experts that received no token are skipped entirely (their gate
        // weight column is identically zero), matching the sparse compute
        // path of Fig. 12's expert loop.
        let mut out: Option<Var> = None;
        for (ei, expert) in self.experts.iter().enumerate() {
            if stats.tokens_per_expert[ei] == 0 {
                continue;
            }
            let col = extract_column(&weights, &weights_val, ei)?;
            let contribution = expert.forward_with(x, fused)?.mul_col(&col)?;
            out = Some(match out {
                Some(acc) => acc.add(&contribution)?,
                None => contribution,
            });
        }
        let out = out.expect("top_k >= 1 guarantees at least one active expert");
        Ok((out, stats))
    }

    /// All trainable parameters (gate first, then experts in order).
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.gate.parameters();
        for e in &self.experts {
            p.extend(e.parameters());
        }
        p
    }

    /// Parameters of the gate (router) only — useful for router-only studies.
    pub fn gate_parameters(&self) -> Vec<Var> {
        self.gate.parameters()
    }

    /// Routing statistics for `x` without building a gradient graph.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the gate.
    pub fn route_only(&self, x: &Tensor) -> Result<RoutingStats, TensorError> {
        let logits = self.gate.weight().with_value(|w| x.matmul(w))?;
        let (tokens, e) = logits.shape().as_matrix().expect("matrix");
        let mut stats = RoutingStats {
            tokens_per_expert: vec![0; e],
        };
        for t in 0..tokens {
            for (idx, _) in ops::topk(logits.row(t), self.top_k) {
                stats.tokens_per_expert[idx] += 1;
            }
        }
        Ok(stats)
    }
}

/// Differentiable extraction of column `col` of `weights` as an `[m, 1]` Var.
fn extract_column(weights: &Var, value: &Tensor, col: usize) -> Result<Var, TensorError> {
    let (m, n) = value
        .shape()
        .as_matrix()
        .ok_or_else(|| TensorError::InvalidArgument("extract_column requires a matrix".into()))?;
    if col >= n {
        return Err(TensorError::InvalidArgument(format!(
            "column {col} out of range for {n} columns"
        )));
    }
    // weights [m, n] @ selector [n, 1] keeps gradients flowing to `weights`.
    let mut selector = Tensor::zeros([n, 1]);
    selector.set2(col, 0, 1.0);
    let _ = m;
    weights.matmul(&Var::constant(selector))
}

/// Stochastic gradient descent with optional weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Applies one update step to every parameter with a gradient, then
    /// clears the gradients.
    pub fn step(&self, params: &[Var]) {
        let (lr, wd) = (self.lr, self.weight_decay);
        for p in params {
            p.update_with_grad(|v, g| {
                for (vi, gi) in v.data_mut().iter_mut().zip(g.data()) {
                    *vi -= lr * (gi + wd * *vi);
                }
            });
        }
    }
}

/// AdamW optimizer (decoupled weight decay), the optimizer used for the
/// paper's fine-tuning runs.
#[derive(Debug)]
pub struct AdamW {
    /// Learning rate (the paper uses 5e-5 for LLM fine-tuning).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    step_count: u64,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl AdamW {
    /// Creates an AdamW optimizer with standard betas for `params_len`
    /// parameter tensors.
    pub fn new(lr: f32, params_len: usize) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            step_count: 0,
            moments: vec![(Vec::new(), Vec::new()); params_len],
        }
    }

    /// Applies one AdamW step to `params` (order must stay stable across
    /// calls), then clears gradients.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the length given to [`AdamW::new`].
    pub fn step(&mut self, params: &[Var]) {
        assert_eq!(
            params.len(),
            self.moments.len(),
            "parameter list length must match optimizer state"
        );
        self.step_count += 1;
        let t = self.step_count as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        for (p, (m, v)) in params.iter().zip(self.moments.iter_mut()) {
            p.update_with_grad(|val, g| {
                if m.is_empty() {
                    m.resize(g.numel(), 0.0);
                    v.resize(g.numel(), 0.0);
                }
                for i in 0..val.numel() {
                    let gi = g.data()[i];
                    m[i] = b1 * m[i] + (1.0 - b1) * gi;
                    v[i] = b2 * v[i] + (1.0 - b2) * gi * gi;
                    let mhat = m[i] / bc1;
                    let vhat = v[i] / bc2;
                    let w = &mut val.data_mut()[i];
                    *w -= lr * (mhat / (vhat.sqrt() + eps) + wd * *w);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(4, 3, &mut rng);
        let x = Var::constant(Tensor::zeros([2, 4]));
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(l.param_count(), 4 * 3 + 3);
    }

    #[test]
    fn expert_swiglu_has_three_matrices() {
        let mut rng = StdRng::seed_from_u64(2);
        let swiglu = Expert::new(ExpertKind::SwiGlu, 4, 8, &mut rng);
        let gelu = Expert::new(ExpertKind::GeluFfn, 4, 8, &mut rng);
        assert_eq!(swiglu.parameters().len(), 6); // 3 weights + 3 biases
        assert_eq!(gelu.parameters().len(), 4);
        let x = Var::constant(Tensor::zeros([3, 4]));
        assert_eq!(swiglu.forward(&x).unwrap().shape().dims(), &[3, 4]);
        assert_eq!(gelu.forward(&x).unwrap().shape().dims(), &[3, 4]);
    }

    #[test]
    fn moe_rejects_bad_top_k() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(MoeLayer::new(ExpertKind::GeluFfn, 4, 8, 4, 0, &mut rng).is_err());
        assert!(MoeLayer::new(ExpertKind::GeluFfn, 4, 8, 4, 5, &mut rng).is_err());
        assert!(MoeLayer::new(ExpertKind::GeluFfn, 4, 8, 0, 1, &mut rng).is_err());
    }

    #[test]
    fn moe_routing_counts_match_top_k() {
        let mut rng = StdRng::seed_from_u64(4);
        let moe = MoeLayer::new(ExpertKind::GeluFfn, 6, 12, 8, 2, &mut rng).unwrap();
        let x = Var::constant(Tensor::rand_uniform([10, 6], 1.0, &mut rng));
        let (out, stats) = moe.forward(&x).unwrap();
        assert_eq!(out.shape().dims(), &[10, 6]);
        assert_eq!(stats.tokens_per_expert.iter().sum::<usize>(), 10 * 2);
    }

    #[test]
    fn dense_moe_assigns_every_expert_every_token() {
        let mut rng = StdRng::seed_from_u64(5);
        let moe = MoeLayer::new(ExpertKind::SwiGlu, 4, 8, 4, 4, &mut rng).unwrap();
        let x = Var::constant(Tensor::rand_uniform([7, 4], 1.0, &mut rng));
        let (_, stats) = moe.forward(&x).unwrap();
        assert!(stats.tokens_per_expert.iter().all(|&c| c == 7));
        assert_eq!(stats.imbalance_variance(), 0.0);
    }

    #[test]
    fn moe_gradients_reach_gate_and_experts() {
        let mut rng = StdRng::seed_from_u64(6);
        let moe = MoeLayer::new(ExpertKind::GeluFfn, 4, 8, 4, 2, &mut rng).unwrap();
        let x = Var::constant(Tensor::rand_uniform([6, 4], 1.0, &mut rng));
        let (out, stats) = moe.forward(&x).unwrap();
        out.mean().backward();
        let with_grad = moe
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        // Gate always gets gradients; active experts do too.
        assert!(with_grad >= 2, "only {with_grad} parameters got gradients");
        let active = stats.tokens_per_expert.iter().filter(|&&c| c > 0).count();
        assert!(active >= 2);
    }

    #[test]
    fn route_only_matches_forward_routing() {
        let mut rng = StdRng::seed_from_u64(7);
        let moe = MoeLayer::new(ExpertKind::GeluFfn, 4, 8, 4, 2, &mut rng).unwrap();
        let x = Tensor::rand_uniform([12, 4], 1.0, &mut rng);
        let quick = moe.route_only(&x).unwrap();
        let (_, full) = moe.forward(&Var::constant(x)).unwrap();
        assert_eq!(quick.tokens_per_expert, full.tokens_per_expert);
    }

    #[test]
    fn sgd_descends_quadratic() {
        let w = Var::parameter(Tensor::scalar(5.0));
        let opt = Sgd::new(0.1);
        for _ in 0..100 {
            let loss = w.mul(&w).unwrap().mean();
            loss.backward();
            opt.step(std::slice::from_ref(&w));
        }
        assert!(w.value().item().abs() < 1e-3);
    }

    #[test]
    fn adamw_descends_quadratic() {
        let w = Var::parameter(Tensor::scalar(5.0));
        let mut opt = AdamW::new(0.3, 1);
        opt.weight_decay = 0.0;
        for _ in 0..200 {
            let loss = w.mul(&w).unwrap().mean();
            loss.backward();
            opt.step(std::slice::from_ref(&w));
        }
        assert!(w.value().item().abs() < 1e-2, "w = {}", w.value().item());
    }

    /// Trains a small MoE classifier for `steps` steps on fixed data and
    /// returns (per-step losses, final parameter tensors).
    fn train_moe(kind: ExpertKind, fused: bool, steps: usize) -> (Vec<f32>, Vec<Tensor>) {
        let mut rng = StdRng::seed_from_u64(40);
        let moe = MoeLayer::new(kind, 4, 8, 4, 2, &mut rng).unwrap();
        let head = Linear::new(4, 3, &mut rng);
        let x = Tensor::rand_uniform([20, 4], 1.0, &mut rng);
        let labels: Vec<usize> = (0..20).map(|i| i % 3).collect();
        let mut params = moe.parameters();
        params.extend(head.parameters());
        let mut opt = AdamW::new(0.02, params.len());
        let mut losses = Vec::new();
        for _ in 0..steps {
            let xv = Var::constant(x.clone());
            let (h, _) = moe.forward_with(&xv, fused).unwrap();
            let logits = if fused {
                head.forward_act(&h, Activation::Identity).unwrap()
            } else {
                head.forward_naive(&h, Activation::Identity).unwrap()
            };
            let loss = logits.cross_entropy(&labels).unwrap();
            losses.push(loss.value().item());
            loss.backward();
            opt.step(&params);
        }
        (losses, params.iter().map(|p| p.value()).collect())
    }

    #[test]
    fn fused_training_bit_identical_to_naive_over_steps() {
        // The tentpole equivalence guarantee: fused kernels + reusable tape
        // produce bit-identical losses AND parameter trajectories to the
        // composed naive ops over multiple optimizer steps.
        for kind in [ExpertKind::GeluFfn, ExpertKind::SwiGlu] {
            let (fused_losses, fused_params) = train_moe(kind, true, 4);
            let (naive_losses, naive_params) = train_moe(kind, false, 4);
            for (s, (a, b)) in fused_losses.iter().zip(&naive_losses).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{kind:?} loss diverged at step {s}: {a} vs {b}"
                );
            }
            for (i, (a, b)) in fused_params.iter().zip(&naive_params).enumerate() {
                assert_eq!(a, b, "{kind:?} parameter {i} diverged after training");
            }
        }
    }

    #[test]
    fn steady_state_training_steps_allocate_nothing() {
        // After the warm-up step, every tensor a step needs comes back out
        // of the buffer pool — the zero-allocation property bench_tensor
        // reports. Thread-local pools make this counter deterministic.
        let mut rng = StdRng::seed_from_u64(41);
        // Dense routing (top_k == num_experts) keeps the per-step op
        // structure exactly identical, making the counter airtight.
        let moe = MoeLayer::new(ExpertKind::SwiGlu, 4, 8, 4, 4, &mut rng).unwrap();
        let head = Linear::new(4, 3, &mut rng);
        let x = Tensor::rand_uniform([16, 4], 1.0, &mut rng);
        let labels: Vec<usize> = (0..16).map(|i| i % 3).collect();
        let mut params = moe.parameters();
        params.extend(head.parameters());
        let mut opt = AdamW::new(0.02, params.len());
        let mut step = |expect_zero: bool, tag: &str| {
            let before = crate::pool::stats();
            let nodes_before = crate::autograd::arena_stats();
            let xv = Var::constant(x.clone());
            let (h, _) = moe.forward(&xv).unwrap();
            let loss = head.forward(&h).unwrap().cross_entropy(&labels).unwrap();
            loss.backward();
            opt.step(&params);
            drop(loss);
            drop(h);
            drop(xv);
            let fresh = crate::pool::stats().allocs_since(&before);
            let fresh_nodes = crate::autograd::arena_stats().allocs_since(&nodes_before);
            if expect_zero {
                assert_eq!(fresh, 0, "{tag}: {fresh} fresh allocations in steady state");
                assert_eq!(
                    fresh_nodes, 0,
                    "{tag}: {fresh_nodes} fresh graph nodes in steady state"
                );
            }
        };
        // Two warm-up steps: the first populates the pool shelves, the
        // second settles the arena's one-step-deferred value release
        // (a reclaimed node keeps its value tensor until it is reused).
        step(false, "warmup");
        step(false, "warmup 2");
        for i in 0..3 {
            step(true, &format!("steady step {i}"));
        }
    }

    #[test]
    fn steady_state_sparse_training_steps_allocate_nothing() {
        // The sparse analogue of the dense steady-state test above, enabled
        // by the pool's power-of-two capacity buckets: with top-2 routing
        // the set of active experts varies step to step, and the batch size
        // alternates between 15 and 16 rows so tensor lengths change too.
        // Exact-capacity shelving missed on every size flip; same-bucket
        // buffers are fungible, so after warm-up covers both batch shapes
        // and the peak expert count, steps stay allocation-free.
        let mut rng = StdRng::seed_from_u64(43);
        let moe = MoeLayer::new(ExpertKind::SwiGlu, 4, 8, 4, 2, &mut rng).unwrap();
        let head = Linear::new(4, 3, &mut rng);
        let batches: Vec<(Tensor, Vec<usize>)> = [15usize, 16]
            .iter()
            .map(|&rows| {
                (
                    Tensor::rand_uniform([rows, 4], 1.0, &mut rng),
                    (0..rows).map(|i| i % 3).collect(),
                )
            })
            .collect();
        let mut params = moe.parameters();
        params.extend(head.parameters());
        let mut opt = AdamW::new(0.02, params.len());
        let mut step = |batch: &(Tensor, Vec<usize>), expect_zero: bool, tag: &str| {
            let before = crate::pool::stats();
            let nodes_before = crate::autograd::arena_stats();
            let xv = Var::constant(batch.0.clone());
            let (h, stats) = moe.forward(&xv).unwrap();
            assert_eq!(
                stats.tokens_per_expert.iter().sum::<usize>(),
                batch.1.len() * 2,
                "top-2 routing must stay sparse"
            );
            let loss = head.forward(&h).unwrap().cross_entropy(&batch.1).unwrap();
            loss.backward();
            opt.step(&params);
            drop(loss);
            drop(h);
            drop(xv);
            let fresh = crate::pool::stats().allocs_since(&before);
            let fresh_nodes = crate::autograd::arena_stats().allocs_since(&nodes_before);
            if expect_zero {
                assert_eq!(fresh, 0, "{tag}: {fresh} fresh allocations in steady state");
                assert_eq!(
                    fresh_nodes, 0,
                    "{tag}: {fresh_nodes} fresh graph nodes in steady state"
                );
            }
        };
        // Warm-up must cycle through every batch shape (and settle the
        // arena's one-step-deferred value release) before the counters are
        // armed; two full cycles cover both.
        for cycle in 0..2 {
            for batch in &batches {
                step(batch, false, &format!("warmup cycle {cycle}"));
            }
        }
        for i in 0..4 {
            let batch = &batches[i % batches.len()];
            step(batch, true, &format!("sparse steady step {i}"));
        }
    }

    #[test]
    fn replica_from_parameters_trains_bit_identically() {
        // The data-parallel trainer rebuilds models from parameter
        // snapshots; a rebuilt replica must be indistinguishable from the
        // original — same forward values, same gradients.
        let mut rng = StdRng::seed_from_u64(44);
        let moe = MoeLayer::new(ExpertKind::SwiGlu, 4, 8, 4, 2, &mut rng).unwrap();
        let x = Tensor::rand_uniform([9, 4], 1.0, &mut rng);
        let labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
        let snapshot: Vec<Tensor> = moe.parameters().iter().map(Var::value).collect();
        let replica =
            MoeLayer::from_parameters(ExpertKind::SwiGlu, 4, 2, &mut snapshot.into_iter()).unwrap();
        let run = |m: &MoeLayer| -> (f32, Vec<Option<Tensor>>) {
            let (h, _) = m.forward(&Var::constant(x.clone())).unwrap();
            let loss = h.cross_entropy(&labels).unwrap();
            let out = loss.value().item();
            loss.backward();
            (out, m.parameters().iter().map(Var::take_grad).collect())
        };
        let (loss_a, grads_a) = run(&moe);
        let (loss_b, grads_b) = run(&replica);
        assert_eq!(loss_a.to_bits(), loss_b.to_bits(), "loss diverged");
        for (i, (a, b)) in grads_a.iter().zip(&grads_b).enumerate() {
            assert_eq!(a, b, "gradient {i} diverged between original and replica");
        }
    }

    #[test]
    fn adamw_trains_moe_to_fit_labels() {
        // A real end-to-end training smoke test: the MoE must fit a small
        // synthetic classification problem.
        let mut rng = StdRng::seed_from_u64(8);
        let moe = MoeLayer::new(ExpertKind::GeluFfn, 4, 16, 4, 2, &mut rng).unwrap();
        let head = Linear::new(4, 3, &mut rng);
        let x = Tensor::rand_uniform([30, 4], 1.0, &mut rng);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let mut params = moe.parameters();
        params.extend(head.parameters());
        let mut opt = AdamW::new(0.02, params.len());
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let xv = Var::constant(x.clone());
            let (h, _) = moe.forward(&xv).unwrap();
            let logits = head.forward(&h).unwrap();
            let loss = logits.cross_entropy(&labels).unwrap();
            last = loss.value().item();
            first.get_or_insert(last);
            loss.backward();
            opt.step(&params);
        }
        let first = first.unwrap();
        assert!(last < first * 0.5, "loss did not halve: {first} -> {last}");
    }
}
