//! 4-bit block quantization in the style of QLoRA's NF4 data type.
//!
//! The paper fine-tunes Mixtral-8x7B with QLoRA: base weights are stored as
//! 4-bit NormalFloat (NF4) blocks and de-quantized on the fly, which is why
//! the de-quantization kernel shows up prominently in the MoE kernel
//! breakdown (paper Fig. 6). This module provides a faithful CPU
//! implementation used for (a) the Table I memory accounting and (b) tests
//! that quantization error is small for normally-distributed weights.

use std::error::Error;
use std::fmt;

/// The 16 NF4 quantile levels from the QLoRA paper (Dettmers et al., 2023):
/// quantiles of a standard normal, normalized to `[-1, 1]`.
pub const NF4_LEVELS: [f32; 16] = [
    -1.0,
    -0.696_192_9,
    -0.525_073_05,
    -0.394_917_5,
    -0.284_441_38,
    -0.184_773_43,
    -0.091_050_036,
    0.0,
    0.079_580_3,
    0.160_930_2,
    0.246_112_3,
    0.337_915_25,
    0.440_709_83,
    0.562_617,
    0.722_956_3,
    1.0,
];

/// Errors from quantization routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// Block size must be a positive even number (codes are packed 2/byte).
    InvalidBlockSize(usize),
    /// Input slice was empty.
    EmptyInput,
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidBlockSize(b) => {
                write!(f, "block size {b} must be a positive even number")
            }
            QuantError::EmptyInput => write!(f, "cannot quantize an empty slice"),
        }
    }
}

impl Error for QuantError {}

/// A 4-bit block-quantized buffer: packed NF4 codes plus one `f32` absmax
/// scale per block.
///
/// ```
/// use ftsim_tensor::Quantized4Bit;
/// let weights: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.37).sin() * 0.02).collect();
/// let q = Quantized4Bit::quantize(&weights, 64)?;
/// let restored = q.dequantize();
/// let rmse = Quantized4Bit::rmse(&weights, &restored);
/// assert!(rmse < 0.01);
/// # Ok::<(), ftsim_tensor::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized4Bit {
    codes: Vec<u8>,
    scales: Vec<f32>,
    len: usize,
    block: usize,
}

impl Quantized4Bit {
    /// Quantizes `values` with absmax scaling per `block` elements.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBlockSize`] for zero or odd block sizes
    /// and [`QuantError::EmptyInput`] for an empty slice.
    pub fn quantize(values: &[f32], block: usize) -> Result<Self, QuantError> {
        if block == 0 || !block.is_multiple_of(2) {
            return Err(QuantError::InvalidBlockSize(block));
        }
        if values.is_empty() {
            return Err(QuantError::EmptyInput);
        }
        let n_blocks = values.len().div_ceil(block);
        let mut scales = Vec::with_capacity(n_blocks);
        let mut codes = Vec::with_capacity(values.len().div_ceil(2));
        let mut pending: Option<u8> = None;
        for chunk in values.chunks(block) {
            let absmax = chunk.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if absmax == 0.0 { 1.0 } else { absmax };
            scales.push(scale);
            for &v in chunk {
                let code = nearest_level(v / scale);
                match pending.take() {
                    Some(lo) => codes.push(lo | (code << 4)),
                    None => pending = Some(code),
                }
            }
        }
        if let Some(lo) = pending {
            codes.push(lo);
        }
        Ok(Quantized4Bit {
            codes,
            scales,
            len: values.len(),
            block,
        })
    }

    /// Restores the full-precision approximation, drawing the output buffer
    /// from the thread-local [`crate::pool`] so repeated on-the-fly
    /// de-quantization (the QLoRA steady state) allocates nothing after
    /// warm-up — hand the buffer back with [`crate::pool::give`] when done.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = crate::pool::take(self.len);
        self.dequantize_into(&mut out);
        out
    }

    /// Appends the full-precision approximation to `out` (cleared first),
    /// reusing whatever capacity `out` already has.
    pub fn dequantize_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.len);
        for i in 0..self.len {
            let byte = self.codes[i / 2];
            let code = if i % 2 == 0 { byte & 0x0F } else { byte >> 4 };
            let scale = self.scales[i / self.block];
            out.push(NF4_LEVELS[code as usize] * scale);
        }
    }

    /// Number of quantized elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block size used for scaling.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Storage footprint in bytes (packed codes + scales).
    ///
    /// For large buffers this approaches `0.5 + 4/block` bytes per element —
    /// the “memory consumption” figures of the paper's Table I use exactly
    /// this accounting for the QLoRA-quantized Mixtral weights.
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Effective bytes per element for a given block size, without
    /// materializing any data. Useful for memory modeling.
    pub fn bytes_per_element(block: usize) -> f64 {
        0.5 + 4.0 / block as f64
    }

    /// Root-mean-square error between two equally-long slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
        assert_eq!(a.len(), b.len(), "rmse requires equal lengths");
        if a.is_empty() {
            return 0.0;
        }
        let sum: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum();
        (sum / a.len() as f64).sqrt()
    }
}

/// Index of the NF4 level closest to `x` (which should be in `[-1, 1]`).
fn nearest_level(x: f32) -> u8 {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, &l) in NF4_LEVELS.iter().enumerate() {
        let d = (x - l).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn levels_are_sorted_and_symmetric_endpoints() {
        for w in NF4_LEVELS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(NF4_LEVELS[0], -1.0);
        assert_eq!(NF4_LEVELS[15], 1.0);
        assert_eq!(NF4_LEVELS[7], 0.0);
    }

    #[test]
    fn rejects_bad_block_sizes_and_empty() {
        assert_eq!(
            Quantized4Bit::quantize(&[1.0], 0).unwrap_err(),
            QuantError::InvalidBlockSize(0)
        );
        assert_eq!(
            Quantized4Bit::quantize(&[1.0], 3).unwrap_err(),
            QuantError::InvalidBlockSize(3)
        );
        assert_eq!(
            Quantized4Bit::quantize(&[], 64).unwrap_err(),
            QuantError::EmptyInput
        );
    }

    #[test]
    fn roundtrip_exact_for_level_values() {
        let block = 16;
        let scale = 0.37;
        let values: Vec<f32> = NF4_LEVELS.iter().map(|&l| l * scale).collect();
        let q = Quantized4Bit::quantize(&values, block).unwrap();
        let d = q.dequantize();
        for (a, b) in values.iter().zip(&d) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn normal_weights_quantize_with_small_error() {
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<f32> = (0..4096)
            .map(|_| {
                let s: f32 = (0..12).map(|_| rng.gen_range(0.0..1.0f32)).sum();
                (s - 6.0) * 0.02
            })
            .collect();
        let q = Quantized4Bit::quantize(&values, 64).unwrap();
        let d = q.dequantize();
        let rmse = Quantized4Bit::rmse(&values, &d);
        let std = 0.02;
        assert!(rmse < std * 0.2, "rmse {rmse} too high for std {std}");
    }

    #[test]
    fn storage_is_roughly_half_byte_per_element() {
        let values = vec![0.5f32; 1024];
        let q = Quantized4Bit::quantize(&values, 64).unwrap();
        let per_elem = q.storage_bytes() as f64 / values.len() as f64;
        assert!((per_elem - Quantized4Bit::bytes_per_element(64)).abs() < 1e-9);
        assert!(per_elem < 0.6);
    }

    #[test]
    fn odd_length_input_roundtrips() {
        let values = vec![0.1f32, -0.2, 0.3];
        let q = Quantized4Bit::quantize(&values, 4).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequantize().len(), 3);
    }

    #[test]
    fn zero_block_quantizes_to_zero() {
        let values = vec![0.0f32; 8];
        let q = Quantized4Bit::quantize(&values, 8).unwrap();
        assert!(q.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dequantize_into_reuses_buffer_and_matches() {
        let values = vec![0.1f32, -0.5, 0.9, 0.3, -0.8];
        let q = Quantized4Bit::quantize(&values, 4).unwrap();
        let direct = q.dequantize();
        let mut buf = vec![7.0f32; 64];
        let cap = buf.capacity();
        q.dequantize_into(&mut buf);
        assert_eq!(buf, direct);
        assert_eq!(buf.capacity(), cap, "existing capacity should be reused");
        // Steady-state dequantize through the pool: no fresh allocation.
        crate::pool::give(direct);
        let before = crate::pool::stats();
        let again = q.dequantize();
        assert_eq!(crate::pool::stats().allocs_since(&before), 0);
        crate::pool::give(again);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_error_bounded_by_scale(seed in 0u64..500, block_pow in 2u32..7) {
            let block = 2usize.pow(block_pow);
            let mut rng = StdRng::seed_from_u64(seed);
            let values: Vec<f32> = (0..block * 3).map(|_| rng.gen_range(-2.0..2.0f32)).collect();
            let q = Quantized4Bit::quantize(&values, block).unwrap();
            let d = q.dequantize();
            for (chunk_v, chunk_d) in values.chunks(block).zip(d.chunks(block)) {
                let absmax = chunk_v.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                // Max error is bounded by half the widest inter-level gap × scale.
                let max_gap = NF4_LEVELS.windows(2).map(|w| w[1] - w[0]).fold(0.0f32, f32::max);
                for (a, b) in chunk_v.iter().zip(chunk_d) {
                    prop_assert!((a - b).abs() <= absmax * max_gap / 2.0 + 1e-5);
                }
            }
        }

        #[test]
        fn prop_dequantize_len_matches(seed in 0u64..200, len in 1usize..300) {
            let mut rng = StdRng::seed_from_u64(seed);
            let values: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let q = Quantized4Bit::quantize(&values, 16).unwrap();
            prop_assert_eq!(q.dequantize().len(), len);
        }
    }
}
