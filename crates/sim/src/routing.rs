//! Expert token-distribution modeling (paper Fig. 11).
//!
//! The paper measures how fine-tuning shifts the token distribution across
//! the 8 experts, quantified as the variance of the per-expert assignment
//! percentages: Mixtral grows more imbalanced (CS 55 → 112, GS 21 → 79,
//! with expert 3 becoming dominant), while BlackMamba's imbalance shrinks on
//! CS (150 → 93) and barely moves on GS.
//!
//! Two complementary views are provided:
//!
//! * this module's **calibrated router population model** — a softmax router
//!   whose concentration is bisected to reproduce the paper's published
//!   variances exactly;
//! * the **emergent measurement** from genuinely training a small MoE
//!   ([`crate::moetrain`]), whose routing statistics are measured, not set.

use ftsim_tensor::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A percentage distribution of token assignments over experts
/// (sums to 100).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenDistribution {
    /// Percent of (token, expert) assignments routed to each expert.
    pub pct: Vec<f64>,
}

impl TokenDistribution {
    /// Builds a distribution from raw per-expert counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or all zero.
    pub fn from_counts(counts: &[usize]) -> Self {
        assert!(!counts.is_empty(), "need at least one expert");
        let total: usize = counts.iter().sum();
        assert!(total > 0, "need at least one routed token");
        TokenDistribution {
            pct: counts
                .iter()
                .map(|&c| 100.0 * c as f64 / total as f64)
                .collect(),
        }
    }

    /// Variance of the percentage values — the paper's imbalance metric.
    pub fn variance(&self) -> f64 {
        ops::variance(&self.pct)
    }

    /// Index of the most-used expert.
    pub fn dominant_expert(&self) -> usize {
        self.pct
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("percentages are finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

/// A softmax router population: each expert has a fixed affinity, and the
/// share of tokens it attracts is `softmax(concentration × affinity)`.
/// Concentration 0 is perfectly balanced; larger values are more imbalanced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterDrift {
    affinity: Vec<f64>,
}

impl RouterDrift {
    /// Random expert affinities for `num_experts` experts.
    ///
    /// # Panics
    ///
    /// Panics if `num_experts` is zero.
    pub fn new(num_experts: usize, seed: u64) -> Self {
        assert!(num_experts >= 1, "need at least one expert");
        let mut rng = StdRng::seed_from_u64(seed);
        RouterDrift {
            affinity: (0..num_experts).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// Moves the highest affinity to `idx`, making it the dominant expert
    /// (the paper observes expert 3 dominating post-tuning Mixtral).
    pub fn with_dominant(mut self, idx: usize) -> Self {
        assert!(idx < self.affinity.len(), "expert index out of range");
        let max_idx = self
            .affinity
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        self.affinity.swap(max_idx, idx);
        self
    }

    /// Token distribution at a given concentration.
    pub fn distribution(&self, concentration: f64) -> TokenDistribution {
        let m = self
            .affinity
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self
            .affinity
            .iter()
            .map(|&a| ((a - m) * concentration).exp())
            .collect();
        let denom: f64 = exps.iter().sum();
        TokenDistribution {
            pct: exps.into_iter().map(|e| 100.0 * e / denom).collect(),
        }
    }

    /// Bisects the concentration so the distribution's variance matches
    /// `target` (within 1e-6), returning the concentration and distribution.
    ///
    /// # Panics
    ///
    /// Panics if `target` is negative or beyond the all-to-one-expert
    /// maximum.
    pub fn calibrate(&self, target: f64) -> (f64, TokenDistribution) {
        assert!(target >= 0.0, "variance target must be non-negative");
        let n = self.affinity.len() as f64;
        let max_var = {
            // All tokens on one expert.
            let mean = 100.0 / n;
            ((100.0 - mean).powi(2) + (n - 1.0) * mean * mean) / n
        };
        assert!(
            target < max_var,
            "target {target} exceeds maximum {max_var:.1}"
        );
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        while self.distribution(hi).variance() < target {
            hi *= 2.0;
            assert!(hi < 1e9, "calibration failed to bracket target");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.distribution(mid).variance() < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let c = 0.5 * (lo + hi);
        (c, self.distribution(c))
    }
}

/// A before/after fine-tuning pair for one (model, dataset) combination of
/// the paper's Fig. 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Case {
    /// Model name.
    pub model: String,
    /// Dataset code (CS / GS).
    pub dataset: String,
    /// Token distribution of the pre-trained router.
    pub before: TokenDistribution,
    /// Token distribution after 10 epochs of fine-tuning.
    pub after: TokenDistribution,
}

impl Fig11Case {
    /// Change in imbalance variance caused by fine-tuning.
    pub fn variance_delta(&self) -> f64 {
        self.after.variance() - self.before.variance()
    }
}

/// The four cases of the paper's Fig. 11, calibrated to its published
/// variances.
pub fn paper_cases() -> Vec<Fig11Case> {
    let case = |model: &str, dataset: &str, seed, v_before, v_after, dominant| {
        let drift_before = RouterDrift::new(8, seed);
        let drift_after = match dominant {
            Some(idx) => RouterDrift::new(8, seed ^ 0xf17e).with_dominant(idx),
            None => RouterDrift::new(8, seed ^ 0xf17e),
        };
        Fig11Case {
            model: model.into(),
            dataset: dataset.into(),
            before: drift_before.calibrate(v_before).1,
            after: drift_after.calibrate(v_after).1,
        }
    };
    vec![
        // Paper: "variance increased from 55 to 112 for CS and from 21 to 79
        // for GS. Expert 3 became the most frequently used."
        case("Mixtral", "CS", 31, 55.0, 112.0, Some(3)),
        case("Mixtral", "GS", 32, 21.0, 79.0, Some(3)),
        // Paper: "a decrease ... for BlackMamba on CS, from 150 to 93;
        // for GS ... almost unchanged."
        case("BlackMamba", "CS", 33, 150.0, 93.0, None),
        case("BlackMamba", "GS", 34, 118.0, 120.0, None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_counts_normalizes() {
        let d = TokenDistribution::from_counts(&[1, 1, 2]);
        assert!((d.pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(d.dominant_expert(), 2);
    }

    #[test]
    fn uniform_distribution_has_zero_variance() {
        let d = TokenDistribution::from_counts(&[5, 5, 5, 5]);
        assert!(d.variance() < 1e-9);
    }

    #[test]
    fn concentration_zero_is_uniform() {
        let d = RouterDrift::new(8, 1).distribution(0.0);
        for &p in &d.pct {
            assert!((p - 12.5).abs() < 1e-9);
        }
    }

    #[test]
    fn variance_monotone_in_concentration() {
        let r = RouterDrift::new(8, 2);
        let mut prev = -1.0;
        for c in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let v = r.distribution(c).variance();
            assert!(v >= prev, "variance not monotone at c={c}");
            prev = v;
        }
    }

    #[test]
    fn calibrate_hits_target() {
        let r = RouterDrift::new(8, 3);
        for target in [10.0, 55.0, 112.0, 150.0] {
            let (_, d) = r.calibrate(target);
            assert!(
                (d.variance() - target).abs() < 0.01,
                "target {target}, got {}",
                d.variance()
            );
        }
    }

    #[test]
    fn paper_cases_reproduce_published_variances() {
        let cases = paper_cases();
        let v: Vec<(f64, f64)> = cases
            .iter()
            .map(|c| (c.before.variance(), c.after.variance()))
            .collect();
        assert!((v[0].0 - 55.0).abs() < 0.1 && (v[0].1 - 112.0).abs() < 0.1);
        assert!((v[1].0 - 21.0).abs() < 0.1 && (v[1].1 - 79.0).abs() < 0.1);
        assert!((v[2].0 - 150.0).abs() < 0.1 && (v[2].1 - 93.0).abs() < 0.1);
    }

    #[test]
    fn mixtral_gains_imbalance_blackmamba_cs_loses_it() {
        let cases = paper_cases();
        assert!(cases[0].variance_delta() > 0.0, "Mixtral CS should grow");
        assert!(cases[1].variance_delta() > 0.0, "Mixtral GS should grow");
        assert!(
            cases[2].variance_delta() < 0.0,
            "BlackMamba CS should shrink"
        );
        assert!(
            cases[3].variance_delta().abs() < 10.0,
            "BlackMamba GS ~unchanged"
        );
    }

    #[test]
    fn tuned_mixtral_dominant_expert_is_three() {
        let cases = paper_cases();
        assert_eq!(cases[0].after.dominant_expert(), 3);
        assert_eq!(cases[1].after.dominant_expert(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds maximum")]
    fn calibrate_rejects_impossible_target() {
        RouterDrift::new(8, 1).calibrate(2000.0);
    }

    proptest! {
        #[test]
        fn prop_distributions_sum_to_100(seed in 0u64..100, c in 0.0f64..10.0) {
            let d = RouterDrift::new(8, seed).distribution(c);
            prop_assert!((d.pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
            prop_assert!(d.pct.iter().all(|&p| p >= 0.0));
        }

        #[test]
        fn prop_with_dominant_places_max(seed in 0u64..100, idx in 0usize..8) {
            let r = RouterDrift::new(8, seed).with_dominant(idx);
            let d = r.distribution(3.0);
            prop_assert_eq!(d.dominant_expert(), idx);
        }
    }
}
