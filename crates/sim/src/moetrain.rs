//! Genuinely-trained CPU-scale MoE models (the emergent counterpart of the
//! paper's Fig. 3 trainability study and Fig. 11 load-imbalance study).
//!
//! A small classifier — input projection, one mixture-of-experts layer with
//! top-k softmax gating, classification head — is trained with real AdamW
//! on the synthetic tasks of [`ftsim_workload::task`]. Nothing about the
//! outcome is scripted: learning curves, sparse-vs-dense parity, and
//! routing-distribution drift all emerge from optimization, at a scale a
//! laptop CPU handles in milliseconds.

use crate::routing::TokenDistribution;
use ftsim_tensor::nn::{AdamW, ExpertKind, Linear, MoeLayer};
use ftsim_tensor::{ops, Activation, Tensor, Var};
use ftsim_workload::task::{SyntheticTask, TaskSample};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoeTrainConfig {
    /// Width of the residual stream.
    pub hidden: usize,
    /// Expert inner width.
    pub ffn: usize,
    /// Number of experts.
    pub num_experts: usize,
    /// Experts activated per token (`num_experts` = dense).
    pub top_k: usize,
    /// Expert architecture.
    pub expert_kind: ExpertKind,
    /// Fine-tuning epochs (the paper uses 10).
    pub epochs: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Microbatch size for the data-parallel training step: each batch is
    /// split into a fixed grid of `microbatch`-sized slices whose gradients
    /// are computed by up to `FTSIM_THREADS` workers and combined by a
    /// deterministic tree reduction. `0` (the serde default, for configs
    /// written before this field existed) means one microbatch per batch —
    /// bit-identical to the historical single-threaded full-batch step.
    /// The grid depends only on this value, never on the worker count, so
    /// results are bit-identical at any thread count.
    #[serde(default)]
    pub microbatch: usize,
    /// Training examples drawn from the task.
    pub train_examples: usize,
    /// Held-out evaluation examples.
    pub eval_examples: usize,
    /// RNG seed (initialization + batching).
    pub seed: u64,
}

impl MoeTrainConfig {
    /// A Mixtral-like small model: SwiGLU experts, 8 experts.
    pub fn mixtral_like(top_k: usize) -> Self {
        MoeTrainConfig {
            hidden: 32,
            ffn: 64,
            num_experts: 8,
            top_k,
            expert_kind: ExpertKind::SwiGlu,
            epochs: 10,
            lr: 8e-3,
            batch: 64,
            microbatch: 16,
            train_examples: 512,
            eval_examples: 256,
            seed: 1234,
        }
    }

    /// A BlackMamba-like smaller model: GELU-FFN experts, less capacity —
    /// mirrors "the smaller model takes relatively more epochs".
    pub fn blackmamba_like(top_k: usize) -> Self {
        MoeTrainConfig {
            hidden: 16,
            ffn: 32,
            expert_kind: ExpertKind::GeluFfn,
            lr: 6e-3,
            ..Self::mixtral_like(top_k)
        }
    }
}

/// Metrics after one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochMetric {
    /// Epoch index (1-based; epoch 0 is the untrained model).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Held-out accuracy after the epoch.
    pub eval_accuracy: f64,
}

/// The outcome of one genuine training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeTrainOutcome {
    /// Run label.
    pub label: String,
    /// Accuracy of the untrained model (epoch 0).
    pub initial_accuracy: f64,
    /// Per-epoch metrics.
    pub curve: Vec<EpochMetric>,
    /// Expert token distribution on the eval set before training.
    pub routing_before: TokenDistribution,
    /// Expert token distribution on the eval set after training.
    pub routing_after: TokenDistribution,
}

impl MoeTrainOutcome {
    /// Final held-out accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.curve.last().map(|m| m.eval_accuracy).unwrap_or(0.0)
    }

    /// Best held-out accuracy over all epochs.
    pub fn peak_accuracy(&self) -> f64 {
        self.curve
            .iter()
            .map(|m| m.eval_accuracy)
            .fold(self.initial_accuracy, f64::max)
    }

    /// Change in routing-imbalance variance caused by fine-tuning
    /// (the Fig. 11 metric, measured rather than calibrated).
    pub fn imbalance_delta(&self) -> f64 {
        self.routing_after.variance() - self.routing_before.variance()
    }
}

/// The small MoE classifier.
struct Classifier {
    input: Linear,
    moe: MoeLayer,
    head: Linear,
}

impl Classifier {
    fn new(task_dim: usize, classes: usize, cfg: &MoeTrainConfig, rng: &mut StdRng) -> Self {
        Classifier {
            input: Linear::new(task_dim, cfg.hidden, rng),
            moe: MoeLayer::new(
                cfg.expert_kind,
                cfg.hidden,
                cfg.ffn,
                cfg.num_experts,
                cfg.top_k,
                rng,
            )
            .expect("valid MoE configuration"),
            head: Linear::new(cfg.hidden, classes, rng),
        }
    }

    /// Rebuilds the classifier from a parameter snapshot, in the order
    /// [`Classifier::parameters`] reports it. `Var` graphs are thread-local
    /// (`Rc`-based), so each data-parallel worker reconstructs its own
    /// replica from the `Send` tensor snapshot instead of sharing variables.
    fn from_parameters(cfg: &MoeTrainConfig, params: &mut impl Iterator<Item = Tensor>) -> Self {
        let input = Linear::from_parts(
            params.next().expect("input weight"),
            params.next().expect("input bias"),
        );
        let moe = MoeLayer::from_parameters(cfg.expert_kind, cfg.num_experts, cfg.top_k, params)
            .expect("valid MoE configuration");
        let head = Linear::from_parts(
            params.next().expect("head weight"),
            params.next().expect("head bias"),
        );
        Classifier { input, moe, head }
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.input.parameters();
        p.extend(self.moe.parameters());
        p.extend(self.head.parameters());
        p
    }

    fn forward(&self, x: &Var) -> Var {
        self.forward_with(x, true)
    }

    /// Forward pass with an explicit kernel choice: `fused = true` runs
    /// every linear layer through `Var::linear_act` — the fused
    /// matmul+bias+activation forward on the register-tiled microkernel,
    /// with the streaming backward epilogue that never materializes the
    /// pre-activation gradient (the production path) — while
    /// `fused = false` composes the naive ops. The two are bit-identical
    /// in values and gradients.
    fn forward_with(&self, x: &Var, fused: bool) -> Var {
        let hidden = if fused {
            self.input.forward_act(x, Activation::Relu)
        } else {
            self.input.forward_naive(x, Activation::Relu)
        }
        .expect("input projection");
        let (mixed, _) = self.moe.forward_with(&hidden, fused).expect("moe forward");
        // Residual connection around the MoE block.
        let res = mixed.add(&hidden).expect("same shape");
        if fused {
            self.head.forward_act(&res, Activation::Identity)
        } else {
            self.head.forward_naive(&res, Activation::Identity)
        }
        .expect("head projection")
    }

    fn logits(&self, features: &Tensor) -> Tensor {
        self.forward(&Var::constant(features.clone())).value()
    }

    /// Routing distribution of the (post-input-projection) eval tokens.
    fn routing(&self, features: &Tensor) -> TokenDistribution {
        let hidden = self
            .input
            .forward_act(&Var::constant(features.clone()), Activation::Relu)
            .expect("input projection")
            .value();
        let stats = self.moe.route_only(&hidden).expect("routing");
        TokenDistribution::from_counts(&stats.tokens_per_expert)
    }
}

/// Trains the classifier on `task` and measures everything the paper's
/// Fig. 3 / Fig. 11 report. Uses the fused kernel path, which is
/// zero-allocation in steady state: tensor storage recycles through the
/// capacity-bucketed buffer pool and autograd graph nodes through the node
/// arena.
pub fn train(
    task: &SyntheticTask,
    cfg: &MoeTrainConfig,
    label: impl Into<String>,
) -> MoeTrainOutcome {
    train_with_kernels(task, cfg, label, true)
}

/// Bucket bounds (token share per expert, percent) for the
/// `sim.train.expert_token_pct` histogram. With 8 experts a balanced router
/// puts 12.5% on each; the buckets resolve both starved and dominant experts.
pub const EXPERT_PCT_BOUNDS: [f64; 7] = [2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 50.0];

/// Publishes the routing distribution into the metrics registry: one
/// histogram sample per expert (token share in percent) plus the imbalance
/// coefficient (variance of the shares — the Fig. 11 metric) as a gauge.
fn publish_routing(dist: &TokenDistribution) {
    if !ftsim_obs::enabled() {
        return;
    }
    let registry = ftsim_obs::registry();
    let hist = registry.histogram("sim.train.expert_token_pct", &EXPERT_PCT_BOUNDS);
    for &pct in &dist.pct {
        hist.record(pct);
    }
    registry.gauge_set("sim.train.imbalance", dist.variance());
}

/// [`train`] with an explicit kernel choice. `fused = false` composes the
/// naive per-op path retained as the reference; results are bit-identical
/// to the fused path (`MoeTrainOutcome` derives `PartialEq`, so this is
/// testable directly) — only the wall-clock and allocation behavior differ.
///
/// When observability is on, the run is instrumented observation-only (the
/// outcome stays bit-identical): per-epoch, per-step, and per-microbatch
/// spans under the `sim.train` category, a `sim.train.loss` gauge updated
/// every optimizer step, `sim.train.threads` / `sim.train.simd_active`
/// gauges recording the execution configuration, a
/// `sim.train.tokens_per_sec` gauge updated every epoch, and the
/// expert-token histogram + imbalance gauge of `publish_routing`.
pub fn train_with_kernels(
    task: &SyntheticTask,
    cfg: &MoeTrainConfig,
    label: impl Into<String>,
    fused: bool,
) -> MoeTrainOutcome {
    train_with_options(task, cfg, label, fused, crate::engine::thread_count())
}

/// [`train_with_kernels`] with an explicit worker-thread count for the
/// data-parallel step (instead of `FTSIM_THREADS`). The outcome is
/// bit-identical at every `threads` value: the microbatch grid is fixed by
/// `cfg.microbatch`, per-microbatch gradients are computed on thread-local
/// model replicas, and the combine is a fixed-order pairwise tree over the
/// microbatch index — the reduction shape never depends on `threads`.
pub fn train_with_options(
    task: &SyntheticTask,
    cfg: &MoeTrainConfig,
    label: impl Into<String>,
    fused: bool,
    threads: usize,
) -> MoeTrainOutcome {
    let _run = ftsim_obs::span("sim.train", "train");
    ftsim_obs::registry().gauge_set("sim.train.threads", threads.max(1) as f64);
    ftsim_obs::registry().gauge_set(
        "sim.train.simd_active",
        f64::from(u8::from(ftsim_tensor::simd::active())),
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = Classifier::new(task.dim(), task.classes(), cfg, &mut rng);
    let params = model.parameters();
    let mut opt = AdamW::new(cfg.lr, params.len());

    let train_set = task.sample(cfg.train_examples, &mut rng);
    let eval_set = task.eval_split(cfg.eval_examples);

    let initial_accuracy = eval_accuracy(&model, &eval_set);
    let routing_before = model.routing(&eval_set.features);
    publish_routing(&routing_before);

    let mut curve = Vec::with_capacity(cfg.epochs);
    let mut order: Vec<usize> = (0..train_set.len()).collect();
    for epoch in 1..=cfg.epochs {
        let _epoch_span = ftsim_obs::span_lazy("sim.train", || format!("epoch:{epoch}"));
        let epoch_start = ftsim_obs::enabled().then(std::time::Instant::now);
        order.shuffle(&mut rng);
        let mut losses = Vec::new();
        for chunk in order.chunks(cfg.batch) {
            let _step_span = ftsim_obs::span("sim.train", "step");
            let loss_value = train_step(cfg, &params, &mut opt, &train_set, chunk, fused, threads);
            losses.push(loss_value);
            ftsim_obs::registry().gauge_set("sim.train.loss", loss_value);
            ftsim_obs::registry().counter_add("sim.train.steps", 1);
        }
        ftsim_obs::registry().gauge_set("sim.train.epoch", epoch as f64);
        if let Some(start) = epoch_start {
            let secs = start.elapsed().as_secs_f64();
            if secs > 0.0 {
                ftsim_obs::registry()
                    .gauge_set("sim.train.tokens_per_sec", train_set.len() as f64 / secs);
            }
        }
        curve.push(EpochMetric {
            epoch,
            train_loss: losses.iter().sum::<f64>() / losses.len().max(1) as f64,
            eval_accuracy: eval_accuracy(&model, &eval_set),
        });
    }

    let routing_after = model.routing(&eval_set.features);
    publish_routing(&routing_after);
    MoeTrainOutcome {
        label: label.into(),
        initial_accuracy,
        curve,
        routing_before,
        routing_after,
    }
}

/// One data-parallel optimizer step over `chunk` (indices into the
/// training set); returns the chunk loss.
///
/// Deterministic-reduction contract (DESIGN.md "Kernel contracts"):
///
/// 1. The microbatch grid is `chunk.chunks(cfg.microbatch)` — fixed by the
///    config, independent of `threads`.
/// 2. Each microbatch's loss is scaled by its token share
///    (`mb_len / chunk_len`), so the chunk gradient is the same weighted
///    mean the full-batch step computes, and a single-microbatch grid
///    (`microbatch == 0`) reproduces the historical full-batch step
///    bitwise (`scale(1.0)` is exact).
/// 3. Workers compute gradients on thread-local model replicas rebuilt
///    from a parameter snapshot; [`crate::engine::parallel_map_with`]
///    returns results in input order regardless of scheduling.
/// 4. Per-parameter gradients and the loss are combined by a fixed-order
///    pairwise tree over the microbatch index — adjacent pairs (0,1),
///    (2,3), … reduced repeatedly — so the floating-point addition
///    sequence is a function of the grid alone, never the thread count.
fn train_step(
    cfg: &MoeTrainConfig,
    params: &[Var],
    opt: &mut AdamW,
    train_set: &TaskSample,
    chunk: &[usize],
    fused: bool,
    threads: usize,
) -> f64 {
    let mb_len = if cfg.microbatch == 0 {
        chunk.len()
    } else {
        cfg.microbatch.min(chunk.len())
    };
    let micro: Vec<(usize, &[usize])> = chunk.chunks(mb_len).enumerate().collect();
    let chunk_len = chunk.len() as f32;
    // Snapshot the parameter tensors once: `Tensor` is `Send`, `Var` is not.
    let snapshot: Vec<Tensor> = params.iter().map(Var::value).collect();
    let results = crate::engine::parallel_map_with(threads.min(micro.len()), &micro, |(w, idx)| {
        let _mb_span = ftsim_obs::span_lazy("sim.train", || format!("microbatch:{w}"));
        let (bx, by) = gather(train_set, idx);
        let replica = Classifier::from_parameters(cfg, &mut snapshot.iter().cloned());
        let rparams = replica.parameters();
        let logits = replica.forward_with(&Var::constant(bx), fused);
        let loss = logits
            .cross_entropy(&by)
            .expect("labels in range")
            .scale(idx.len() as f32 / chunk_len);
        let loss_value = loss.value().item();
        loss.backward();
        // Hand the accumulated grads back as Send tensors; parameters the
        // microbatch never touched (inactive experts) stay `None`.
        let grads: Vec<Option<Tensor>> = rparams.iter().map(Var::take_grad).collect();
        (loss_value, grads)
    });
    let (loss, grads) = tree_reduce(results);
    for (p, g) in params.iter().zip(grads) {
        if let Some(g) = g {
            p.seed_grad(g);
        }
    }
    opt.step(params);
    f64::from(loss)
}

/// Fixed-order pairwise tree reduction over per-microbatch results: reduces
/// adjacent pairs (0,1), (2,3), … repeatedly until one remains. The
/// addition order per parameter element depends only on the number of
/// microbatches, which is what makes the step thread-count invariant.
fn tree_reduce(mut layer: Vec<(f32, Vec<Option<Tensor>>)>) -> (f32, Vec<Option<Tensor>>) {
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut pairs = layer.into_iter();
        while let Some((loss_a, grads_a)) = pairs.next() {
            match pairs.next() {
                Some((loss_b, grads_b)) => {
                    let grads = grads_a
                        .into_iter()
                        .zip(grads_b)
                        .map(|(a, b)| match (a, b) {
                            (Some(mut a), Some(b)) => {
                                a.add_assign(&b).expect("gradient shapes match");
                                Some(a)
                            }
                            (Some(a), None) => Some(a),
                            (None, b) => b,
                        })
                        .collect();
                    next.push((loss_a + loss_b, grads));
                }
                None => next.push((loss_a, grads_a)),
            }
        }
        layer = next;
    }
    layer.pop().expect("at least one microbatch")
}

fn gather(sample: &TaskSample, idx: &[usize]) -> (Tensor, Vec<usize>) {
    let dim = sample.features.shape().dims()[1];
    let mut data = Vec::with_capacity(idx.len() * dim);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(sample.features.row(i));
        labels.push(sample.labels[i]);
    }
    (
        Tensor::new([idx.len(), dim], data).expect("consistent dims"),
        labels,
    )
}

fn eval_accuracy(model: &Classifier, eval: &TaskSample) -> f64 {
    ops::accuracy(&model.logits(&eval.features), &eval.labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: MoeTrainConfig, task: &SyntheticTask) -> MoeTrainOutcome {
        train(task, &cfg, "test")
    }

    fn small(mut cfg: MoeTrainConfig) -> MoeTrainConfig {
        // Keep unit tests fast.
        cfg.train_examples = 256;
        cfg.eval_examples = 128;
        cfg.epochs = 6;
        cfg
    }

    #[test]
    fn sparse_moe_learns_the_easy_task() {
        let task = SyntheticTask::commonsense(16, 4, 42);
        let out = quick(small(MoeTrainConfig::mixtral_like(2)), &task);
        assert!(
            out.peak_accuracy() > 0.80,
            "sparse accuracy only {:.3}",
            out.peak_accuracy()
        );
        assert!(
            out.initial_accuracy < 0.5,
            "untrained should be near chance"
        );
    }

    #[test]
    fn sparse_matches_dense_within_margin() {
        // Paper Takeaway 1, measured: top-2 of 8 learns about as well as
        // dense.
        let task = SyntheticTask::commonsense(16, 4, 42);
        let sparse = quick(small(MoeTrainConfig::mixtral_like(2)), &task);
        let dense = quick(small(MoeTrainConfig::mixtral_like(8)), &task);
        assert!(
            sparse.peak_accuracy() > dense.peak_accuracy() - 0.08,
            "sparse {:.3} vs dense {:.3}",
            sparse.peak_accuracy(),
            dense.peak_accuracy()
        );
    }

    #[test]
    fn math_like_task_is_harder() {
        // Paper observation: math is harder — lower accuracy at equal
        // budget.
        let cs = quick(
            small(MoeTrainConfig::mixtral_like(2)),
            &SyntheticTask::commonsense(16, 4, 7),
        );
        let math = quick(
            small(MoeTrainConfig::mixtral_like(2)),
            &SyntheticTask::math(16, 4, 7),
        );
        assert!(
            math.peak_accuracy() < cs.peak_accuracy(),
            "math {:.3} should trail commonsense {:.3}",
            math.peak_accuracy(),
            cs.peak_accuracy()
        );
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let task = SyntheticTask::commonsense(16, 4, 13);
        let out = quick(small(MoeTrainConfig::mixtral_like(2)), &task);
        let first = out.curve.first().unwrap().train_loss;
        let last = out.curve.last().unwrap().train_loss;
        assert!(last < first * 0.7, "loss {first:.3} -> {last:.3}");
    }

    #[test]
    fn routing_distributions_are_valid() {
        let task = SyntheticTask::commonsense(16, 4, 99);
        let out = quick(small(MoeTrainConfig::mixtral_like(2)), &task);
        for d in [&out.routing_before, &out.routing_after] {
            assert_eq!(d.pct.len(), 8);
            assert!((d.pct.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn finetuning_changes_routing() {
        // Fig. 11's core finding, measured: fine-tuning moves the expert
        // token distribution.
        let task = SyntheticTask::commonsense(16, 4, 5);
        let out = quick(small(MoeTrainConfig::mixtral_like(2)), &task);
        let moved: f64 = out
            .routing_before
            .pct
            .iter()
            .zip(&out.routing_after.pct)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(moved > 1.0, "routing barely moved: {moved:.2}%");
    }

    #[test]
    fn deterministic_given_seed() {
        let task = SyntheticTask::commonsense(16, 4, 21);
        let a = quick(small(MoeTrainConfig::mixtral_like(2)), &task);
        let b = quick(small(MoeTrainConfig::mixtral_like(2)), &task);
        assert_eq!(a, b);
    }

    #[test]
    fn training_metrics_flow_into_registry_without_changing_the_outcome() {
        let task = SyntheticTask::commonsense(16, 4, 64);
        let mut cfg = MoeTrainConfig::mixtral_like(2);
        cfg.train_examples = 96;
        cfg.eval_examples = 64;
        cfg.epochs = 2;
        // Reference run with observability off.
        let plain = train(&task, &cfg, "obs-test");
        let registry = ftsim_obs::registry();
        let hist_before = registry
            .histogram("sim.train.expert_token_pct", &EXPERT_PCT_BOUNDS)
            .snapshot();
        ftsim_obs::enable();
        let observed = train(&task, &cfg, "obs-test");
        ftsim_obs::disable();
        // Instrumentation is observation-only: bit-identical outcome.
        assert_eq!(plain, observed);
        let hist_after = registry
            .histogram("sim.train.expert_token_pct", &EXPERT_PCT_BOUNDS)
            .snapshot();
        // Our run sampled 8 experts twice (before + after training); other
        // tests may add concurrently, so assert a lower bound on the delta.
        assert!(
            hist_after.count >= hist_before.count + 16,
            "{} -> {}",
            hist_before.count,
            hist_after.count
        );
        assert!(registry.gauge("sim.train.imbalance").get() >= 0.0);
        assert!(registry.gauge("sim.train.loss").get().is_finite());
        assert!(registry.gauge("sim.train.tokens_per_sec").get() >= 0.0);
    }

    #[test]
    fn fused_and_naive_kernel_paths_train_identically() {
        // End-to-end version of the tensor-level equivalence guarantee:
        // a full multi-epoch run (many optimizer steps) is bit-identical
        // whichever kernel path executes it.
        let task = SyntheticTask::commonsense(16, 4, 33);
        let mut cfg = MoeTrainConfig::mixtral_like(2);
        cfg.train_examples = 96;
        cfg.eval_examples = 64;
        cfg.epochs = 3;
        let fused = train_with_kernels(&task, &cfg, "fused", true);
        let naive = train_with_kernels(&task, &cfg, "naive", false);
        assert_eq!(fused.initial_accuracy, naive.initial_accuracy);
        assert_eq!(fused.curve, naive.curve);
        assert_eq!(fused.routing_after, naive.routing_after);
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        // The deterministic-reduction contract, end to end: the microbatch
        // grid and tree reduction fix the floating-point addition order, so
        // worker count changes scheduling but never a single bit of the
        // outcome — for both kernel paths.
        let task = SyntheticTask::commonsense(16, 4, 55);
        let mut cfg = small(MoeTrainConfig::mixtral_like(2));
        cfg.train_examples = 96;
        cfg.eval_examples = 64;
        cfg.epochs = 2;
        cfg.microbatch = 8;
        for fused in [true, false] {
            let reference = train_with_options(&task, &cfg, "threads", fused, 1);
            for threads in [2, 4, 8] {
                let run = train_with_options(&task, &cfg, "threads", fused, threads);
                assert_eq!(
                    run, reference,
                    "outcome diverged at {threads} threads (fused={fused})"
                );
            }
        }
    }

    #[test]
    fn training_is_bit_identical_across_simd_dispatch() {
        // Scalar and AVX2 kernel bodies round identically (mul+add, never
        // fmadd), so a full training run must not differ by a single bit.
        // On hosts without AVX2 the forced-SIMD run downgrades to scalar
        // and the assertion holds trivially.
        let task = SyntheticTask::commonsense(16, 4, 56);
        let mut cfg = small(MoeTrainConfig::mixtral_like(2));
        cfg.train_examples = 96;
        cfg.eval_examples = 64;
        cfg.epochs = 2;
        ftsim_tensor::simd::force(Some(false));
        let scalar = train(&task, &cfg, "simd");
        ftsim_tensor::simd::force(Some(true));
        let simd = train(&task, &cfg, "simd");
        ftsim_tensor::simd::force(None);
        assert_eq!(scalar, simd, "scalar and SIMD training outcomes diverged");
    }

    #[test]
    fn single_microbatch_grid_matches_full_batch_step() {
        // microbatch == batch produces a one-slice grid; microbatch == 0 is
        // the explicit full-batch escape. Both must be bitwise the same run
        // (scale(1.0) and the replica indirection are exact).
        let task = SyntheticTask::commonsense(16, 4, 57);
        let mut cfg = small(MoeTrainConfig::mixtral_like(2));
        cfg.train_examples = 96;
        cfg.eval_examples = 64;
        cfg.epochs = 2;
        cfg.microbatch = 0;
        let full = train(&task, &cfg, "mb");
        cfg.microbatch = cfg.batch;
        let one_slice = train(&task, &cfg, "mb");
        assert_eq!(full, one_slice);
    }

    #[test]
    fn smaller_model_learns_slower() {
        // Paper observation 2: BlackMamba (smaller) takes more epochs.
        let task = SyntheticTask::commonsense(16, 4, 17);
        let big = quick(small(MoeTrainConfig::mixtral_like(2)), &task);
        let small_model = quick(small(MoeTrainConfig::blackmamba_like(2)), &task);
        // Compare accuracy after the FIRST epoch: the bigger model should be
        // ahead early (or at minimum not behind by much at the end).
        let big_e1 = big.curve[0].eval_accuracy;
        let small_e1 = small_model.curve[0].eval_accuracy;
        assert!(
            big_e1 + 0.02 >= small_e1,
            "bigger model should not trail early: {big_e1:.3} vs {small_e1:.3}"
        );
    }
}
