//! Fine-tuning throughput sweeps (paper Fig. 8 and the ground truth behind
//! the Eq. 2 throughput model of Figs. 14–15).

use crate::engine;
use crate::error::{validate_batches, SimError, SimErrorKind};
use crate::step::StepSimulator;
use serde::{Deserialize, Serialize};

/// Throughput at one batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Batch size.
    pub batch: usize,
    /// Wall-clock seconds per training step.
    pub step_seconds: f64,
    /// Queries processed per second (`batch / step_seconds`) — the paper's
    /// throughput metric.
    pub queries_per_second: f64,
    /// Time-weighted SM utilization of the MoE section.
    pub moe_sm_util: f64,
    /// Time-weighted DRAM utilization of the MoE section.
    pub moe_dram_util: f64,
}

/// A throughput-vs-batch-size curve for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSweep {
    /// Configuration label (e.g. `"Mixtral-S/CS"`).
    pub label: String,
    /// Sequence length used.
    pub seq_len: usize,
    /// Sparsity ratio (`active experts / total experts`).
    pub sparsity_ratio: f64,
    /// Measured points, in ascending batch order.
    pub points: Vec<ThroughputPoint>,
}

impl ThroughputSweep {
    /// Runs the simulator at every batch size in `batches`, fanning the
    /// points across the [`engine`]'s worker threads. Points come back in
    /// input order, so results are identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if `batches` is empty, contains zero, or is not
    /// strictly ascending.
    pub fn run(
        sim: &StepSimulator,
        label: impl Into<String>,
        seq_len: usize,
        batches: &[usize],
    ) -> Result<Self, SimError> {
        Self::run_with_threads(sim, label, seq_len, batches, engine::thread_count())
    }

    /// [`ThroughputSweep::run`] with an explicit worker count (`1` forces
    /// the serial path; used by the determinism tests and perf benches).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on an invalid batch list, with the sweep's
    /// label, GPU spec name, sequence length, and (where one exists) the
    /// offending batch size attached as context.
    pub fn run_with_threads(
        sim: &StepSimulator,
        label: impl Into<String>,
        seq_len: usize,
        batches: &[usize],
        threads: usize,
    ) -> Result<Self, SimError> {
        let label = label.into();
        if let Err(kind) = validate_batches(batches) {
            let mut err = SimError::new(kind)
                .with_label(label)
                .with_gpu(sim.cost_model().spec().name.clone())
                .with_seq_len(seq_len);
            err.context.batch = match kind {
                SimErrorKind::ZeroBatch => Some(0),
                SimErrorKind::UnsortedBatches { next, .. } => Some(next),
                _ => None,
            };
            return Err(err);
        }
        let _sweep = ftsim_obs::span_lazy("sim.sweep", || format!("throughput:{label}"));
        ftsim_obs::registry().gauge_set("sim.sweep.points_total", batches.len() as f64);
        let points = engine::parallel_map_with(threads, batches, |&batch| {
            let _point = ftsim_obs::span_lazy("sim.sweep", || format!("batch:{batch}"));
            let trace = sim.simulate_step(batch, seq_len);
            let secs = trace.total_seconds();
            let util = trace.moe_overall_utilization();
            // Progress ticks for the live follower: done-count plus the
            // most recent point's coordinates.
            if ftsim_obs::enabled() {
                let registry = ftsim_obs::registry();
                registry.counter_add("sim.sweep.points_done", 1);
                registry.gauge_set("sim.sweep.last_batch", batch as f64);
                registry.gauge_set("sim.sweep.last_qps", batch as f64 / secs);
            }
            ThroughputPoint {
                batch,
                step_seconds: secs,
                queries_per_second: batch as f64 / secs,
                moe_sm_util: util.sm_util,
                moe_dram_util: util.dram_util,
            }
        });
        Ok(ThroughputSweep {
            label,
            seq_len,
            sparsity_ratio: sim.finetune().sparsity.ratio(sim.model().moe.num_experts),
            points,
        })
    }

    /// Throughput at the largest batch size.
    pub fn peak_qps(&self) -> f64 {
        self.points
            .last()
            .map(|p| p.queries_per_second)
            .unwrap_or(0.0)
    }

    /// Throughput at batch size 1 (if measured).
    pub fn qps_at(&self, batch: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.batch == batch)
            .map(|p| p.queries_per_second)
    }

    /// `(batch, qps)` pairs for fitting the Eq. 2 throughput model.
    pub fn samples(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.batch as f64, p.queries_per_second))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsim_gpu::{CostModel, GpuSpec};
    use ftsim_model::{presets, FineTuneConfig};

    fn sweep(ft: FineTuneConfig, batches: &[usize]) -> ThroughputSweep {
        let sim = StepSimulator::new(presets::mixtral_8x7b(), ft, CostModel::new(GpuSpec::a40()));
        ThroughputSweep::run(&sim, "test", 79, batches).expect("valid batches")
    }

    #[test]
    fn qps_grows_with_batch_but_saturates() {
        // Paper Fig. 8: throughput rises with batch size, sub-linearly.
        let s = sweep(FineTuneConfig::qlora_sparse(), &[1, 2, 4, 8]);
        let q: Vec<f64> = s.points.iter().map(|p| p.queries_per_second).collect();
        assert!(q.windows(2).all(|w| w[1] > w[0]), "{q:?}");
        let gain_1_2 = q[1] / q[0];
        let gain_4_8 = q[3] / q[2];
        assert!(
            gain_4_8 < gain_1_2,
            "marginal gain should shrink: {gain_1_2:.2} vs {gain_4_8:.2}"
        );
        // Paper: batch 1→2 gives ~1.9×; ours should be near-linear too.
        assert!((1.5..2.0).contains(&gain_1_2), "1→2 gain {gain_1_2:.2}");
    }

    #[test]
    fn sparse_beats_dense_at_equal_batch() {
        // Paper: dense 0.5 qps vs sparse 0.7 qps at batch 2 (Mixtral-CS).
        let sparse = sweep(FineTuneConfig::qlora_sparse(), &[2]);
        let dense = sweep(FineTuneConfig::qlora_dense(), &[2]);
        assert!(sparse.peak_qps() > dense.peak_qps());
    }

    #[test]
    fn sparse_peak_throughput_wins_via_bigger_batch() {
        // Paper Takeaway 4: the sparse model's larger max batch size gives
        // it the higher end-to-end throughput.
        let sparse = sweep(FineTuneConfig::qlora_sparse(), &[1, 2, 4, 8]); // max bs 8
        let dense = sweep(FineTuneConfig::qlora_dense(), &[1, 2]); // max bs 2
        assert!(sparse.peak_qps() > 1.5 * dense.peak_qps());
    }

    #[test]
    fn absolute_a40_throughput_in_paper_ballpark() {
        // Paper Fig. 8, Mixtral-CS sparse: ~0.37 qps at batch 1 and
        // ~1.8 qps at batch 8. The simulator should land within ~2× of
        // those absolute numbers (shape matters more than magnitude).
        let s = sweep(FineTuneConfig::qlora_sparse(), &[1, 8]);
        let q1 = s.qps_at(1).unwrap();
        let q8 = s.qps_at(8).unwrap();
        assert!((0.18..0.80).contains(&q1), "qps@1 = {q1:.3}");
        assert!((0.9..3.8).contains(&q8), "qps@8 = {q8:.3}");
    }

    #[test]
    fn sm_util_rises_and_dram_util_falls() {
        let s = sweep(FineTuneConfig::qlora_sparse(), &[1, 8]);
        assert!(s.points[1].moe_sm_util > s.points[0].moe_sm_util);
        assert!(s.points[1].moe_dram_util < s.points[0].moe_dram_util);
    }

    #[test]
    fn samples_expose_fit_inputs() {
        let s = sweep(FineTuneConfig::qlora_sparse(), &[1, 2]);
        let pts = s.samples();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, 1.0);
        assert!(pts[1].1 > 0.0);
    }

    #[test]
    fn invalid_batch_lists_are_errors_not_panics() {
        let sim = StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            CostModel::new(GpuSpec::a40()),
        );
        let err = ThroughputSweep::run(&sim, "t", 79, &[4, 2]).unwrap_err();
        assert_eq!(err.kind, SimErrorKind::UnsortedBatches { prev: 4, next: 2 });
        assert_eq!(err.context.batch, Some(2));
        assert_eq!(
            ThroughputSweep::run(&sim, "t", 79, &[]).unwrap_err().kind,
            SimErrorKind::EmptyBatches
        );
        assert_eq!(
            ThroughputSweep::run(&sim, "t", 79, &[0, 1])
                .unwrap_err()
                .kind,
            SimErrorKind::ZeroBatch
        );
    }

    #[test]
    fn sweep_errors_carry_gpu_and_shape_context() {
        let sim = StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            CostModel::new(GpuSpec::a40()),
        );
        let err = ThroughputSweep::run(&sim, "Mixtral-S/CS", 79, &[0]).unwrap_err();
        assert_eq!(err.context.label.as_deref(), Some("Mixtral-S/CS"));
        assert_eq!(
            err.context.gpu.as_deref(),
            Some(sim.cost_model().spec().name.as_str())
        );
        assert_eq!(err.context.seq_len, Some(79));
        assert_eq!(err.context.batch, Some(0));
        let msg = err.to_string();
        assert!(msg.contains("Mixtral-S/CS"), "{msg}");
        assert!(msg.contains("seq_len 79"), "{msg}");
    }

    #[test]
    fn parallel_sweep_emits_ordered_spans_from_worker_threads() {
        let sim = StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            CostModel::new(GpuSpec::a40()),
        );
        let batches: Vec<usize> = (1..=16).collect();
        ftsim_obs::enable();
        ThroughputSweep::run_with_threads(&sim, "span-test", 64, &batches, 4).expect("valid");
        ftsim_obs::disable();
        let events: Vec<ftsim_obs::Event> = ftsim_obs::drain_events()
            .into_iter()
            .filter(|e| e.cat == "sim.sweep" && e.name.starts_with("batch:"))
            .collect();
        assert!(events.len() >= batches.len(), "{} spans", events.len());
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert!(
            tids.len() >= 2,
            "expected multiple worker threads: {tids:?}"
        );
        // One shared monotonic timeline across workers.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let sim = StepSimulator::new(
            presets::mixtral_8x7b(),
            FineTuneConfig::qlora_sparse(),
            CostModel::new(GpuSpec::a40()),
        );
        let batches: Vec<usize> = (1..=10).collect();
        let serial = ThroughputSweep::run_with_threads(&sim, "t", 79, &batches, 1).expect("valid");
        let parallel =
            ThroughputSweep::run_with_threads(&sim, "t", 79, &batches, 8).expect("valid");
        assert_eq!(serial, parallel);
    }
}
